"""A delta-based version store for hierarchical snapshots.

The paper's data-warehousing motivation (§1): a legacy source produces
periodic dumps, and the warehouse wants compact deltas rather than full
copies. :class:`VersionStore` realizes that pattern on top of the library:

* ``commit(tree)`` diffs the new snapshot against the head, stores the edit
  script (plus its inverse for backward travel), and keeps only the newest
  snapshot materialized;
* ``checkout(version)`` reconstructs any historical version by replaying
  inverse deltas back from the head (memoized in a small LRU so repeated
  historical reads don't re-replay the chain);
* ``delta(a, b)`` returns the composed operation sequence between two
  versions;
* ``save(path)`` / ``load(path)`` persist the whole history as JSON.

Storage cost is one materialized tree plus one edit script per version —
exactly the "sequence of snapshots, stored as deltas" layout the paper's
scenario calls for.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .service.engine import DiffEngine

from .core.arena import ArenaOverlay, TreeArena
from .core.errors import ReproError
from .core.isomorphism import trees_isomorphic
from .core.serialization import tree_from_dict, tree_to_dict
from .core.tree import Tree
from .editscript.invert import invert_script
from .editscript.script import EditScript
from .matching.criteria import MatchConfig
from .pipeline import DiffConfig, DiffPipeline


class VersionStoreError(ReproError):
    """Raised on invalid version operations (unknown version, empty store)."""


@dataclass
class CommitInfo:
    """Metadata for one committed version."""

    version: int
    message: str = ""
    operations: int = 0
    cost: float = 0.0
    metadata: Dict[str, Any] = field(default_factory=dict)


class VersionStore:
    """Linear version history stored as head snapshot + delta chain."""

    def __init__(
        self,
        config: Optional[MatchConfig] = None,
        engine: Optional["DiffEngine"] = None,
        checkout_cache_size: int = 8,
    ) -> None:
        """Create an empty store.

        Parameters
        ----------
        config:
            Matching configuration used by every commit's diff.
        engine:
            Optional :class:`repro.service.DiffEngine`. When given, commits
            take the digest path: the incoming snapshot is fingerprinted
            and a commit whose root digest equals the head's is skipped
            entirely (no matching, no new version), with the short-circuit
            recorded in the engine's metrics.
        checkout_cache_size:
            Bound of the materialized-version LRU used by
            :meth:`checkout`; ``0`` disables the memo.
        """
        if checkout_cache_size < 0:
            raise ValueError("checkout_cache_size must be >= 0")
        self._config = config
        self._pipeline = DiffPipeline(DiffConfig(match=config))
        self._engine = engine
        self._head_digest: Optional[str] = None
        #: memoized historical versions as immutable arena snapshots —
        #: handing one out is a zero-copy ``Tree.from_arena`` view
        self._checkout_cache: "OrderedDict[int, TreeArena]" = OrderedDict()
        self._checkout_cache_size = checkout_cache_size
        #: cache accounting for tests and capacity tuning
        self.checkout_hits = 0
        self.checkout_misses = 0
        self._head: Optional[Tree] = None
        #: forward[i] transforms version i into version i+1
        self._forward: List[EditScript] = []
        #: backward[i] transforms version i+1 into version i
        self._backward: List[EditScript] = []
        #: whether leg i was generated with dummy-root wrapping, and the
        #: dummy identifier used (None otherwise)
        self._wrapped: List[bool] = []
        self._wrapped_ids: List[Any] = []
        self._info: List[CommitInfo] = []

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def commit(self, tree: Tree, message: str = "", **metadata: Any) -> CommitInfo:
        """Record *tree* as the next version; return its commit info.

        The input tree is copied, so later caller-side mutation cannot
        corrupt the history.

        When the store was built with a :class:`~repro.service.DiffEngine`,
        a snapshot whose Merkle root digest equals the head's is recognized
        as unchanged *before* any matching runs: no version is appended and
        the returned info is the head's, with ``metadata["unchanged"]``
        set. The short-circuit is counted in the engine's metrics.
        """
        snapshot = tree.copy()
        if self._head is None:
            info = CommitInfo(version=0, message=message, metadata=metadata)
            self._head = snapshot
            self._info.append(info)
            if self._engine is not None:
                self._head_digest = self._engine.fingerprint(self._head)
            return info
        if self._engine is not None:
            incoming_digest = self._engine.fingerprint(snapshot)
            if self._head_digest is None:
                self._head_digest = self._engine.fingerprint(self._head)
            if incoming_digest == self._head_digest:
                self._engine.metrics.incr("digest_short_circuits")
                head_info = self._info[-1]
                return CommitInfo(
                    version=head_info.version,
                    message=message,
                    operations=0,
                    cost=0.0,
                    metadata={**metadata, "unchanged": True},
                )
        result = self._pipeline.run(self._head, snapshot)
        forward = result.script

        # Rebase the script onto the head's identifier space: the generator
        # replays on a working copy, and `replay` encapsulates dummy-root
        # bookkeeping. Verify before accepting the commit.
        if not result.verify(self._head, snapshot):  # pragma: no cover - guard
            raise VersionStoreError("generated delta failed verification")

        backward_base = self._wrapped_head(result.edit)
        backward = invert_script(backward_base, forward)
        info = CommitInfo(
            version=len(self._info),
            message=message,
            operations=len(forward),
            cost=forward.cost(),
            metadata=metadata,
        )
        self._forward.append(forward)
        self._backward.append(backward)
        self._wrapped.append(result.edit.wrapped)
        self._wrapped_ids.append(result.edit.dummy_t1_id)
        self._head = result.edit.replay(self._head)
        self._info.append(info)
        if self._engine is not None:
            self._head_digest = self._engine.fingerprint(self._head)
        return info

    def _wrapped_head(self, edit_result) -> Tree:
        from .editscript.generator import _wrap_with_dummy_root

        base = self._head.copy()
        if edit_result.wrapped:
            base = _wrap_with_dummy_root(base, edit_result.dummy_t1_id)
        return base

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def head_version(self) -> int:
        if not self._info:
            raise VersionStoreError("the store is empty")
        return self._info[-1].version

    def __len__(self) -> int:
        return len(self._info)

    def log(self) -> List[CommitInfo]:
        """Commit metadata, oldest first."""
        return list(self._info)

    def head(self) -> Tree:
        """The newest snapshot (copy)."""
        if self._head is None:
            raise VersionStoreError("the store is empty")
        return self._head.copy()

    def checkout(self, version: int) -> Tree:
        """Reconstruct a historical version by replaying inverse deltas.

        Materialized versions are memoized in a bounded LRU as immutable
        :class:`~repro.core.arena.TreeArena` snapshots (committed versions
        never change, so entries never go stale and need no defensive
        copies — a hit is one zero-copy ``Tree.from_arena`` view). A miss
        replays from the nearest *newer* materialization — the head, or a
        cached version — arena to arena through copy-on-write overlays,
        building no intermediate node objects.
        """
        if not self._info:
            raise VersionStoreError("the store is empty")
        if not 0 <= version <= self.head_version:
            raise VersionStoreError(
                f"unknown version {version}; store has 0..{self.head_version}"
            )
        if version == self.head_version:
            return self._head.copy()
        if self._checkout_cache_size:
            cached = self._checkout_cache.get(version)
            if cached is not None:
                self._checkout_cache.move_to_end(version)
                self.checkout_hits += 1
                return Tree.from_arena(cached)
            self.checkout_misses += 1
        start = self.head_version
        arena: Optional[TreeArena] = None
        for candidate in self._checkout_cache:
            if version < candidate < start:
                start = candidate
                arena = self._checkout_cache[candidate]
        if arena is None:
            arena = self._head.to_arena()
        for index in range(start - 1, version - 1, -1):
            arena = self._apply_leg_arena(arena, index, backward=True)
        if self._checkout_cache_size:
            self._checkout_cache[version] = arena
            self._checkout_cache.move_to_end(version)
            while len(self._checkout_cache) > self._checkout_cache_size:
                self._checkout_cache.popitem(last=False)
        return Tree.from_arena(arena)

    def forward_delta(self, version: int) -> EditScript:
        """The stored script transforming *version* into *version + 1*."""
        if not 0 <= version < len(self._forward):
            raise VersionStoreError(f"no forward delta from version {version}")
        return self._forward[version]

    def delta(self, old: int, new: int) -> List[EditScript]:
        """The delta legs to travel from *old* to *new* (either direction)."""
        if not self._info:
            raise VersionStoreError("the store is empty")
        for v in (old, new):
            if not 0 <= v <= self.head_version:
                raise VersionStoreError(f"unknown version {v}")
        if old <= new:
            return [self._forward[i] for i in range(old, new)]
        return [self._backward[i] for i in range(old - 1, new - 1, -1)]

    def _apply_leg(self, tree: Tree, index: int, backward: bool) -> Tree:
        from .editscript.generator import _strip_dummy_root, _wrap_with_dummy_root

        wrapped = self._wrapped[index]
        script = self._backward[index] if backward else self._forward[index]
        if wrapped:
            tree = _wrap_with_dummy_root(tree, self._wrapped_ids[index])
        tree = script.apply_to(tree, in_place=True)
        if wrapped:
            tree = _strip_dummy_root(tree)
        return tree

    def _apply_leg_arena(self, arena: TreeArena, index: int, backward: bool) -> TreeArena:
        """Arena-to-arena replay of one leg (checkout's hot path)."""
        from .editscript.generator import DUMMY_ROOT_LABEL

        wrapped = self._wrapped[index]
        script = self._backward[index] if backward else self._forward[index]
        overlay = ArenaOverlay(arena)
        if wrapped:
            overlay.wrap_root(self._wrapped_ids[index], DUMMY_ROOT_LABEL)
        script.replay_on_overlay(overlay)
        if wrapped:
            overlay.strip_root()
        return overlay.flatten()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Serialize the whole store to a JSON-friendly dictionary."""
        return {
            "head": tree_to_dict(self._head) if self._head is not None else None,
            "forward": [s.to_dicts() for s in self._forward],
            "backward": [s.to_dicts() for s in self._backward],
            "wrapped": list(self._wrapped),
            "wrapped_ids": list(self._wrapped_ids),
            "info": [
                {
                    "version": i.version,
                    "message": i.message,
                    "operations": i.operations,
                    "cost": i.cost,
                    "metadata": i.metadata,
                }
                for i in self._info
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "VersionStore":
        store = cls()
        head = data.get("head")
        store._head = tree_from_dict(head) if head is not None else None
        store._forward = [EditScript.from_dicts(s) for s in data.get("forward", [])]
        store._backward = [EditScript.from_dicts(s) for s in data.get("backward", [])]
        store._wrapped = list(data.get("wrapped", []))
        store._wrapped_ids = list(data.get("wrapped_ids", []))
        store._info = [
            CommitInfo(
                version=i["version"],
                message=i.get("message", ""),
                operations=i.get("operations", 0),
                cost=i.get("cost", 0.0),
                metadata=i.get("metadata", {}),
            )
            for i in data.get("info", [])
        ]
        return store

    def save(self, path: str) -> None:
        """Persist to a JSON file."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle)

    @classmethod
    def load(cls, path: str) -> "VersionStore":
        """Load a store persisted by :meth:`save`."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    # ------------------------------------------------------------------
    def verify_history(self) -> bool:
        """Replay every leg both ways and confirm the chain is consistent."""
        if self._head is None:
            return True
        current = self._head.copy()
        # travel back to version 0...
        for index in range(len(self._backward) - 1, -1, -1):
            current = self._apply_leg(current, index, backward=True)
        # ...and forward to the head again
        for index in range(len(self._forward)):
            current = self._apply_leg(current, index, backward=False)
        return trees_isomorphic(current, self._head)
