"""Upper bound on mismatched internal nodes (paper Table 1).

Section 8: FastMatch is optimal only under Matching Criterion 3; when the
criterion fails, nodes may be *mismatched*. Exhaustively deciding which
nodes actually mismatch is expensive, so the paper instead measures "a
necessary (but not sufficient) condition for propagation": "in order to be
mismatched, a node must have more than a certain number of children that
violate Matching Criterion 3, where the exact number depends on the match
threshold t."

The condition implemented here: let ``x`` be an internal node with ``|x|``
leaf descendants, of which ``v`` are *ambiguous* (they violate Criterion 3,
i.e. have two or more close counterparts). For ``x`` to miss or mis-take a
partner, the misdirected common mass must exceed the ``t``-margin, which
requires::

    v > (1 - t) * |x|

Higher ``t`` lowers the bar, so the flagged percentage grows with ``t`` —
the monotone shape of Table 1 (at ``t = 1`` any node with a single ambiguous
leaf is flagged; at ``t = 1/2`` more than half its leaves must be).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.node import Node
from ..core.tree import Tree
from ..matching.criteria import MatchConfig


@dataclass
class MismatchEstimate:
    """Flagged-node statistics for one threshold ``t``."""

    t: float
    flagged: int
    total: int

    @property
    def percent(self) -> float:
        if self.total == 0:
            return 0.0
        return 100.0 * self.flagged / self.total


def ambiguous_leaves(
    t1: Tree,
    t2: Tree,
    config: Optional[MatchConfig] = None,
) -> Set:
    """Ids of T1 leaves violating Criterion 3 (>= 2 close counterparts)."""
    config = config if config is not None else MatchConfig()
    by_label: Dict[str, List[Node]] = {}
    for leaf in t2.leaves():
        by_label.setdefault(leaf.label, []).append(leaf)
    ambiguous: Set = set()
    for x in t1.leaves():
        close = 0
        for y in by_label.get(x.label, ()):
            if config.compare_nodes(x, y) <= 1.0:
                close += 1
                if close > 1:
                    ambiguous.add(x.id)
                    break
    return ambiguous


def mismatch_upper_bound(
    t1: Tree,
    t2: Tree,
    thresholds: Sequence[float] = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    label: str = "P",
    config: Optional[MatchConfig] = None,
) -> List[MismatchEstimate]:
    """Table 1: % of *label* nodes flagged by the necessary condition.

    For each threshold ``t``, a node is flagged when its count of ambiguous
    leaf descendants ``v`` satisfies ``v > (1 - t) * |x|``. Because the
    condition is weak, the true mismatch rate is "expected to be much lower
    than suggested by these numbers" — it is an upper bound.
    """
    ambiguous = ambiguous_leaves(t1, t2, config)
    nodes: List[Tuple[int, int]] = []  # (leaf count, ambiguous count)
    for node in t1.preorder():
        if node.label != label or node.is_leaf:
            continue
        leaf_total = 0
        leaf_ambiguous = 0
        for leaf in node.leaves():
            leaf_total += 1
            if leaf.id in ambiguous:
                leaf_ambiguous += 1
        nodes.append((leaf_total, leaf_ambiguous))
    estimates: List[MismatchEstimate] = []
    for t in thresholds:
        flagged = sum(
            1
            for leaf_total, leaf_ambiguous in nodes
            if leaf_total > 0 and leaf_ambiguous > (1.0 - t) * leaf_total
        )
        estimates.append(MismatchEstimate(t=t, flagged=flagged, total=len(nodes)))
    return estimates
