"""Analysis utilities: distances, analytical bounds, mismatch estimation."""

from .bounds import (
    TreePairSizes,
    editscript_bound,
    fastmatch_bound,
    match_bound,
    tree_pair_sizes,
)
from .metrics import EditDistances, result_distances, script_distances
from .mismatch import MismatchEstimate, ambiguous_leaves, mismatch_upper_bound
from .quality import MatchQuality, matching_quality, pair_sets

__all__ = [
    "EditDistances",
    "MismatchEstimate",
    "TreePairSizes",
    "MatchQuality",
    "ambiguous_leaves",
    "editscript_bound",
    "fastmatch_bound",
    "match_bound",
    "matching_quality",
    "mismatch_upper_bound",
    "pair_sets",
    "result_distances",
    "script_distances",
    "tree_pair_sizes",
]
