"""Analytical running-time bounds from the paper (Appendix B).

* Algorithm Match:     ``n^2 c + m n``                (Formula 1, §5.2)
* Algorithm FastMatch: ``(n e + e^2) c + 2 l n e``    (Formula 2, §5.3)

where ``n`` is the total number of leaves in both trees, ``m`` the total
number of internal nodes, ``l`` the number of internal-node labels, ``e``
the weighted edit distance, and ``c`` the average cost of one leaf
``compare``. The Figure 13(b) benchmark evaluates these bounds against
measured comparison counts — the paper observes the FastMatch bound is
"loose" by roughly 20x.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.tree import Tree


@dataclass(frozen=True)
class TreePairSizes:
    """Size parameters of a tree pair used by the bound formulas."""

    leaves: int  # n: total leaves in T1 and T2
    internals: int  # m: total internal nodes in T1 and T2
    internal_labels: int  # l: number of distinct internal-node labels


def tree_pair_sizes(t1: Tree, t2: Tree) -> TreePairSizes:
    """Measure (n, m, l) for a pair of trees."""
    leaves = sum(1 for _ in t1.leaves()) + sum(1 for _ in t2.leaves())
    internals = (len(t1) + len(t2)) - leaves
    labels = set(t1.internal_labels()) | set(t2.internal_labels())
    return TreePairSizes(
        leaves=leaves, internals=internals, internal_labels=len(labels)
    )


def match_bound(sizes: TreePairSizes, c: float = 1.0) -> float:
    """Formula 1: the Algorithm Match comparison bound ``n^2 c + m n``."""
    n, m = sizes.leaves, sizes.internals
    return n * n * c + m * n


def fastmatch_bound(sizes: TreePairSizes, e: float, c: float = 1.0) -> float:
    """Formula 2: the FastMatch comparison bound ``(ne + e^2) c + 2 l n e``."""
    n, l = sizes.leaves, sizes.internal_labels
    return (n * e + e * e) * c + 2 * l * n * e


def editscript_bound(total_nodes: int, misaligned: int) -> float:
    """Algorithm EditScript's ``O(N D)`` work bound (Section 4.3).

    ``total_nodes`` is ``N`` (nodes in both trees) and ``misaligned`` is
    ``D`` (intra-parent moves). The ``+ total_nodes`` term accounts for the
    constant per-node traversal work so the bound is non-zero for identical
    trees.
    """
    return float(total_nodes * max(misaligned, 0) + total_nodes)
