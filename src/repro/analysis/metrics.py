"""Edit-distance metrics: unweighted ``d`` and weighted ``e`` (Section 5.3).

Given an edit script ``E = e_1 ... e_n``:

* the **unweighted edit distance** ``d`` is simply ``n`` — "the number of
  edit operations in an optimal edit script" (Section 8);
* the **weighted edit distance** is ``e = sum(w_i)`` with ``w_i = 1`` for
  inserts and deletes, ``w_i = |x|`` (leaf count of the moved subtree) for
  moves, and ``w_i = 0`` for updates.

Because a move's weight depends on the subtree size *at the moment of the
move*, ``e`` is computed by replaying the script against the old tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.errors import EditScriptError
from ..core.tree import Tree
from ..editscript.generator import EditScriptResult, _wrap_with_dummy_root
from ..editscript.operations import Delete, Insert, Move, Update
from ..editscript.script import EditScript


@dataclass(frozen=True)
class EditDistances:
    """The (d, e) pair for one script, plus per-kind contributions."""

    unweighted: int  # d
    weighted: float  # e
    insert_weight: float
    delete_weight: float
    move_weight: float

    @property
    def ratio(self) -> float:
        """``e / d`` (0 when the script is empty)."""
        if self.unweighted == 0:
            return 0.0
        return self.weighted / self.unweighted


def script_distances(
    t1: Tree,
    script: EditScript,
    wrapped_dummy_id: Optional[object] = None,
) -> EditDistances:
    """Compute (d, e) by replaying *script* on a copy of *t1*.

    ``wrapped_dummy_id`` must be supplied when the script was generated with
    dummy-root wrapping (see :func:`result_distances` for the convenient
    path that handles this automatically).
    """
    work = t1.copy()
    if wrapped_dummy_id is not None:
        work = _wrap_with_dummy_root(work, wrapped_dummy_id)
    insert_weight = delete_weight = move_weight = 0.0
    for op in script:
        if isinstance(op, Insert):
            insert_weight += 1.0
        elif isinstance(op, Delete):
            delete_weight += 1.0
        elif isinstance(op, Move):
            move_weight += float(work.get(op.node_id).leaf_count())
        elif isinstance(op, Update):
            pass  # updates weigh 0
        else:  # pragma: no cover - defensive
            raise EditScriptError(f"unknown operation {op!r}")
        op.apply(work)
    weighted = insert_weight + delete_weight + move_weight
    return EditDistances(
        unweighted=len(script),
        weighted=weighted,
        insert_weight=insert_weight,
        delete_weight=delete_weight,
        move_weight=move_weight,
    )


def result_distances(t1: Tree, result: EditScriptResult) -> EditDistances:
    """(d, e) for a generator result, handling dummy-root wrapping."""
    return script_distances(
        t1,
        result.script,
        wrapped_dummy_id=result.dummy_t1_id if result.wrapped else None,
    )
