"""Matching-quality evaluation against ground truth.

The workload generators mutate a *copy* of the base tree, and copies
preserve node identifiers — so for any (base, mutated) pair from
:mod:`repro.workload`, the true correspondence is simply "same id on both
sides" (restricted to nodes that survived). That makes precision/recall of
any matcher measurable, which the paper could not do on its corpus (it
bounded mismatches indirectly — Table 1). The ablation benches use this to
quantify what the thresholds and A(k) actually trade away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set, Tuple

from ..core.tree import Tree
from ..matching.matching import Matching


@dataclass(frozen=True)
class MatchQuality:
    """Precision/recall of a proposed matching against the id ground truth.

    ``true_pairs`` is the number of nodes present in both versions (same
    id); a proposed pair is *correct* when it joins a surviving node to its
    own other-version self.
    """

    true_pairs: int
    proposed_pairs: int
    correct_pairs: int

    @property
    def precision(self) -> float:
        if self.proposed_pairs == 0:
            return 1.0
        return self.correct_pairs / self.proposed_pairs

    @property
    def recall(self) -> float:
        if self.true_pairs == 0:
            return 1.0
        return self.correct_pairs / self.true_pairs

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        if p + r == 0:
            return 0.0
        return 2 * p * r / (p + r)


def matching_quality(
    base: Tree,
    mutated: Tree,
    matching: Matching,
) -> MatchQuality:
    """Score *matching* against the shared-id ground truth.

    Only meaningful when *mutated* was derived from *base* by an
    id-preserving process (``Tree.copy`` + mutations — everything in
    :mod:`repro.workload` qualifies). Nodes inserted by the mutation get
    fresh ids and therefore cannot create false "true pairs".
    """
    ids1: Set = set(base.node_ids())
    ids2: Set = set(mutated.node_ids())
    survivors = ids1 & ids2
    correct = sum(
        1 for x, y in matching.pairs() if x == y and x in survivors
    )
    return MatchQuality(
        true_pairs=len(survivors),
        proposed_pairs=len(matching),
        correct_pairs=correct,
    )


def pair_sets(
    base: Tree, mutated: Tree, matching: Matching
) -> Tuple[Set, Set]:
    """(true pair ids, proposed-correct pair ids) for detailed analysis."""
    survivors = set(base.node_ids()) & set(mutated.node_ids())
    correct = {
        x for x, y in matching.pairs() if x == y and x in survivors
    }
    return survivors, correct
