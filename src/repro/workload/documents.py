"""Synthetic structured documents (the paper's evaluation substrate).

The paper's §8 experiments use "three sets of files ... different versions
of a document (a conference paper)". Those files are not available, so this
module generates statistically similar stand-ins: documents with sections,
optional subsections and lists, paragraphs, and sentences whose word
distribution is Zipf-like (drawn from a realistic vocabulary with a heavy
head). Sentence texts are almost surely unique — which is exactly the
Matching Criterion 3 regime the paper argues holds for real documents — and
duplicates can be injected deliberately to study the criterion's failure
modes (Table 1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Union

from ..core.tree import Tree

#: A compact English-like vocabulary; the head words get Zipf-weighted mass.
VOCABULARY = (
    "the of and to a in that is for it as was with be by on not he this are "
    "or his from at which but have an they you were her all she there would "
    "their we him been has when who will no more if out so up said what its "
    "about than into them can only other time new some could these two may "
    "first then do any like my now over such our man me even most made after "
    "also did many off before must well back through years where much your "
    "way down should because each just those people how too little state "
    "good very make world still see own men work long here get both between "
    "life being under never day same another know while last might us great "
    "old year come since against go came right used take three states "
    "algorithm data tree node structure system query database document "
    "change version edit script match update delete insert move cost result "
    "section paragraph sentence analysis performance experiment measure"
).split()

_CONTENT_PREFIXES = (
    "data tree node query index log disk page view key hash sort scan join "
    "lock cache type path rule plan"
).split()
_CONTENT_SUFFIXES = (
    "base set map list graph table store block frame line word form mark "
    "point code name size cost time rate"
).split()
#: 400 distinctive compound terms playing the role of content words /
#: named entities; they keep independently generated sentences apart so
#: Matching Criterion 3 holds for almost all leaves, as in real documents.
CONTENT_WORDS = [a + b for a in _CONTENT_PREFIXES for b in _CONTENT_SUFFIXES]


@dataclass
class DocumentSpec:
    """Shape parameters of a synthetic document."""

    sections: int = 6
    paragraphs_per_section: int = 6
    sentences_per_paragraph: int = 5
    words_per_sentence: int = 12
    subsection_probability: float = 0.0
    list_probability: float = 0.0
    items_per_list: int = 3
    #: Fraction of sentences that are exact copies of an earlier sentence —
    #: deliberate Criterion 3 violations (0.0 keeps the criterion intact).
    duplicate_sentence_rate: float = 0.0
    #: Fraction of word positions filled with distinctive content terms
    #: instead of Zipf-weighted function words. Higher values make
    #: sentences more unique (stronger Criterion 3).
    content_word_rate: float = 0.35


class DocumentGenerator:
    """Seeded generator of document trees (labels D/Sec/SubSec/P/list/item/S)."""

    def __init__(self, rng_or_seed: Union[random.Random, int] = 0) -> None:
        self.rng = (
            rng_or_seed
            if isinstance(rng_or_seed, random.Random)
            else random.Random(rng_or_seed)
        )
        # Zipf-ish weights: weight(i) ~ 1 / (i + 10).
        self._weights = [1.0 / (i + 10) for i in range(len(VOCABULARY))]
        self._emitted_sentences: List[str] = []

    # ------------------------------------------------------------------
    def sentence(self, spec: DocumentSpec) -> str:
        """One sentence; occasionally an exact duplicate when configured."""
        if (
            spec.duplicate_sentence_rate > 0
            and self._emitted_sentences
            and self.rng.random() < spec.duplicate_sentence_rate
        ):
            text = self.rng.choice(self._emitted_sentences)
        else:
            length = max(
                3, int(self.rng.gauss(spec.words_per_sentence, spec.words_per_sentence / 4))
            )
            words = self.rng.choices(VOCABULARY, weights=self._weights, k=length)
            for index in range(length):
                if self.rng.random() < spec.content_word_rate:
                    words[index] = self.rng.choice(CONTENT_WORDS)
            words[0] = words[0].capitalize()
            text = " ".join(words) + "."
        self._emitted_sentences.append(text)
        return text

    def heading(self) -> str:
        words = self.rng.choices(VOCABULARY, weights=self._weights, k=3)
        return " ".join(word.capitalize() for word in words)

    # ------------------------------------------------------------------
    def document(self, spec: Optional[DocumentSpec] = None) -> Tree:
        """Generate one document tree."""
        spec = spec if spec is not None else DocumentSpec()
        self._emitted_sentences = []
        tree = Tree()
        root = tree.create_node("D", None)
        for _ in range(self._jitter(spec.sections)):
            section = tree.create_node("Sec", self.heading(), parent=root)
            self._fill_section(tree, section, spec, allow_subsections=True)
        return tree

    def _fill_section(self, tree, parent, spec: DocumentSpec, allow_subsections: bool) -> None:
        for _ in range(self._jitter(spec.paragraphs_per_section)):
            roll = self.rng.random()
            if allow_subsections and roll < spec.subsection_probability:
                subsection = tree.create_node("SubSec", self.heading(), parent=parent)
                self._fill_section(tree, subsection, spec, allow_subsections=False)
            elif roll < spec.subsection_probability + spec.list_probability:
                lst = tree.create_node("list", None, parent=parent)
                for _ in range(self._jitter(spec.items_per_list)):
                    item = tree.create_node("item", None, parent=lst)
                    for _ in range(self._jitter(2)):
                        tree.create_node("S", self.sentence(spec), parent=item)
            else:
                paragraph = tree.create_node("P", None, parent=parent)
                for _ in range(self._jitter(spec.sentences_per_paragraph)):
                    tree.create_node("S", self.sentence(spec), parent=paragraph)

    def _jitter(self, mean: int) -> int:
        """A count near *mean* (at least 1)."""
        if mean <= 1:
            return 1
        return max(1, mean + self.rng.randint(-mean // 3, mean // 3))


def generate_document(
    seed: int = 0, spec: Optional[DocumentSpec] = None
) -> Tree:
    """Convenience wrapper: one seeded synthetic document."""
    return DocumentGenerator(seed).document(spec)
