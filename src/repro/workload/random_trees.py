"""Seeded random ordered trees for tests and micro-benchmarks.

These are *shape* workloads (arbitrary labeled trees), as opposed to the
document-structured workloads of :mod:`repro.workload.documents`. All
generation is driven by a caller-supplied :class:`random.Random` or seed, so
every test and benchmark is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..core.tree import Tree

DEFAULT_WORDS = (
    "alpha bravo charlie delta echo foxtrot golf hotel india juliet kilo "
    "lima mike november oscar papa quebec romeo sierra tango uniform victor "
    "whiskey xray yankee zulu"
).split()


@dataclass
class RandomTreeSpec:
    """Parameters for random tree generation.

    ``leaf_labels`` / ``internal_labels`` are drawn uniformly; values are
    random word sequences for leaves and ``None`` for internal nodes.
    """

    max_depth: int = 4
    max_children: int = 5
    min_children: int = 1
    leaf_probability: float = 0.4
    leaf_labels: Sequence[str] = ("S",)
    internal_labels: Sequence[str] = ("P",)
    root_label: str = "D"
    words_per_leaf: int = 4
    vocabulary: Sequence[str] = field(default_factory=lambda: list(DEFAULT_WORDS))


def random_tree(
    rng_or_seed: Union[random.Random, int],
    spec: Optional[RandomTreeSpec] = None,
) -> Tree:
    """Generate a random ordered tree according to *spec*."""
    rng = _as_rng(rng_or_seed)
    spec = spec if spec is not None else RandomTreeSpec()
    tree = Tree()
    root = tree.create_node(spec.root_label, None)
    # Materialize the label/word pools once, not per node.
    leaf_labels = list(spec.leaf_labels)
    internal_labels = list(spec.internal_labels)
    vocabulary = list(spec.vocabulary)

    def grow(parent, depth: int) -> None:
        children = rng.randint(spec.min_children, spec.max_children)
        for _ in range(children):
            make_leaf = depth >= spec.max_depth or rng.random() < spec.leaf_probability
            if make_leaf:
                tree.create_node(
                    rng.choice(leaf_labels),
                    random_sentence(rng, spec.words_per_leaf, vocabulary),
                    parent=parent,
                )
            else:
                node = tree.create_node(
                    rng.choice(internal_labels), None, parent=parent
                )
                grow(node, depth + 1)

    grow(root, 1)
    return tree


def random_sentence(
    rng: random.Random,
    mean_words: int = 4,
    vocabulary: Sequence[str] = DEFAULT_WORDS,
) -> str:
    """A random word sequence of roughly *mean_words* words."""
    count = max(1, int(rng.gauss(mean_words, mean_words / 3)))
    words = list(vocabulary)
    return " ".join(rng.choice(words) for _ in range(count))


def random_flat_tree(
    rng_or_seed: Union[random.Random, int],
    leaves: int,
    leaf_label: str = "S",
    root_label: str = "D",
    vocabulary: Sequence[str] = DEFAULT_WORDS,
) -> Tree:
    """A depth-1 tree with *leaves* random leaves (sequence-like workloads)."""
    rng = _as_rng(rng_or_seed)
    tree = Tree()
    root = tree.create_node(root_label, None)
    for _ in range(leaves):
        tree.create_node(
            leaf_label, random_sentence(rng, 4, vocabulary), parent=root
        )
    return tree


def perfect_tree(
    fanout: int,
    depth: int,
    leaf_label: str = "S",
    internal_label: str = "P",
    root_label: str = "D",
) -> Tree:
    """A deterministic perfect *fanout*-ary tree of the given depth.

    Leaves get distinct numeric string values so the tree has no duplicate
    content (Criterion 3 holds trivially).
    """
    tree = Tree()
    root = tree.create_node(root_label, None)
    counter = [0]

    def grow(parent, level: int) -> None:
        for _ in range(fanout):
            if level >= depth:
                counter[0] += 1
                tree.create_node(leaf_label, f"leaf {counter[0]}", parent=parent)
            else:
                node = tree.create_node(internal_label, None, parent=parent)
                grow(node, level + 1)

    if depth == 0:
        pass
    else:
        grow(root, 1)
    return tree


def _as_rng(rng_or_seed: Union[random.Random, int]) -> random.Random:
    if isinstance(rng_or_seed, random.Random):
        return rng_or_seed
    return random.Random(rng_or_seed)
