"""Version-set corpora mirroring the paper's experimental data (§8).

The paper evaluates on "three sets of files[, each representing] different
versions of a document (a conference paper)" and runs FastMatch "on pairs of
files within each of these three sets". A :class:`DocumentSet` is one such
set: a base synthetic document plus versions derived by increasing numbers
of random edits, with the ground-truth mutation records retained.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from ..core.tree import Tree
from .documents import DocumentGenerator, DocumentSpec
from .mutations import MutatedTree, MutationEngine, MutationMix


@dataclass
class DocumentVersion:
    """One version in a set: the tree and how it differs from the base."""

    tree: Tree
    edits_from_base: int
    record_true_d: int
    record_true_e: float


@dataclass
class DocumentSet:
    """A base document and derived versions (versions[0] is the base)."""

    name: str
    versions: List[DocumentVersion] = field(default_factory=list)

    def pairs(self) -> Iterator[Tuple[DocumentVersion, DocumentVersion]]:
        """All ordered (older, newer) version pairs, as the paper compares."""
        for i in range(len(self.versions)):
            for j in range(i + 1, len(self.versions)):
                yield self.versions[i], self.versions[j]

    def consecutive_pairs(
        self,
    ) -> Iterator[Tuple[DocumentVersion, DocumentVersion]]:
        for older, newer in zip(self.versions, self.versions[1:]):
            yield older, newer


def make_document_set(
    name: str,
    seed: int,
    spec: Optional[DocumentSpec] = None,
    edit_counts: Tuple[int, ...] = (0, 5, 10, 20, 40),
    mix: Optional[MutationMix] = None,
) -> DocumentSet:
    """Build one version set.

    Each version is derived from the *base* with the given number of edits
    (the paper's versions also share a common ancestor), so edit size grows
    across the set while content stays correlated.
    """
    generator = DocumentGenerator(seed)
    base = generator.document(spec)
    versions: List[DocumentVersion] = []
    for round_index, edits in enumerate(edit_counts):
        if edits == 0:
            versions.append(
                DocumentVersion(
                    tree=base, edits_from_base=0, record_true_d=0, record_true_e=0.0
                )
            )
            continue
        engine = MutationEngine(
            random.Random(seed * 1000 + round_index), mix=mix
        )
        mutated: MutatedTree = engine.mutate(base, edits)
        versions.append(
            DocumentVersion(
                tree=mutated.tree,
                edits_from_base=edits,
                record_true_d=mutated.record.true_d,
                record_true_e=mutated.record.true_e,
            )
        )
    return DocumentSet(name=name, versions=versions)


def paper_document_sets(
    edit_counts: Tuple[int, ...] = (0, 4, 8, 16, 32),
) -> List[DocumentSet]:
    """The three version sets used by the Figure 13 / Table 1 benchmarks.

    Three differently sized "conference papers" (small / medium / large), as
    the paper's sets were; sizes differ so the n-sensitivity of e/d can be
    observed (the paper notes it is low).
    """
    return [
        make_document_set(
            "set-A (small)",
            seed=11,
            spec=DocumentSpec(sections=4, paragraphs_per_section=5,
                              sentences_per_paragraph=4),
            edit_counts=edit_counts,
        ),
        make_document_set(
            "set-B (medium)",
            seed=23,
            spec=DocumentSpec(sections=6, paragraphs_per_section=6,
                              sentences_per_paragraph=5),
            edit_counts=edit_counts,
        ),
        make_document_set(
            "set-C (large)",
            seed=47,
            spec=DocumentSpec(sections=8, paragraphs_per_section=8,
                              sentences_per_paragraph=6),
            edit_counts=edit_counts,
        ),
    ]
