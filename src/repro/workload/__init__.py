"""Workload generation: random trees, synthetic documents, mutations."""

from .corpus import (
    DocumentSet,
    DocumentVersion,
    make_document_set,
    paper_document_sets,
)
from .documents import VOCABULARY, DocumentGenerator, DocumentSpec, generate_document
from .mutations import MutatedTree, MutationEngine, MutationMix, MutationRecord
from .random_trees import (
    RandomTreeSpec,
    perfect_tree,
    random_flat_tree,
    random_sentence,
    random_tree,
)

__all__ = [
    "DocumentGenerator",
    "DocumentSet",
    "DocumentSpec",
    "DocumentVersion",
    "MutatedTree",
    "MutationEngine",
    "MutationMix",
    "MutationRecord",
    "RandomTreeSpec",
    "VOCABULARY",
    "generate_document",
    "make_document_set",
    "paper_document_sets",
    "perfect_tree",
    "random_flat_tree",
    "random_sentence",
    "random_tree",
]
