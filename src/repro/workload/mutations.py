"""Seeded mutation engine: derive "new versions" from a base tree.

The §8 evaluation needs pairs of versions whose true edit structure is
known. :class:`MutationEngine` applies a configurable mix of the paper's
edit operations to a copy of a tree and records what it did, including the
ground-truth unweighted (``d``) and weighted (``e``) edit sizes of the
applied script (moves weigh their subtree's leaf count, updates weigh 0 —
Section 5.3's definition).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..core.node import Node
from ..core.tree import Tree
from .documents import CONTENT_WORDS, VOCABULARY


@dataclass
class MutationMix:
    """Relative frequencies of the edit kinds the engine applies."""

    insert_leaf: float = 1.0
    delete_leaf: float = 1.0
    update_leaf: float = 1.0
    move_leaf: float = 1.0
    move_subtree: float = 0.5
    insert_subtree: float = 0.3
    delete_subtree: float = 0.3

    def normalized(self) -> Dict[str, float]:
        weights = {
            "insert_leaf": self.insert_leaf,
            "delete_leaf": self.delete_leaf,
            "update_leaf": self.update_leaf,
            "move_leaf": self.move_leaf,
            "move_subtree": self.move_subtree,
            "insert_subtree": self.insert_subtree,
            "delete_subtree": self.delete_subtree,
        }
        total = sum(weights.values())
        if total <= 0:
            raise ValueError("mutation mix has no positive weights")
        return {kind: weight / total for kind, weight in weights.items()}


@dataclass
class MutationRecord:
    """What one engine run actually did."""

    applied: List[str] = field(default_factory=list)
    #: ground-truth unweighted edit distance (one per applied operation;
    #: subtree inserts/deletes count one per node touched).
    true_d: int = 0
    #: ground-truth weighted edit distance (Section 5.3 weights).
    true_e: float = 0.0

    def count(self, kind: str) -> int:
        return sum(1 for applied in self.applied if applied == kind)


class MutationEngine:
    """Applies random document edits while tracking ground truth."""

    def __init__(
        self,
        rng_or_seed: Union[random.Random, int] = 0,
        mix: Optional[MutationMix] = None,
        leaf_label: str = "S",
    ) -> None:
        self.rng = (
            rng_or_seed
            if isinstance(rng_or_seed, random.Random)
            else random.Random(rng_or_seed)
        )
        self.mix = mix if mix is not None else MutationMix()
        self.leaf_label = leaf_label

    # ------------------------------------------------------------------
    def mutate(self, tree: Tree, operations: int) -> "MutatedTree":
        """Return a mutated copy of *tree* after *operations* random edits."""
        work = tree.copy()
        record = MutationRecord()
        weights = self.mix.normalized()
        kinds = list(weights)
        probabilities = [weights[kind] for kind in kinds]
        applied = 0
        attempts = 0
        while applied < operations and attempts < operations * 20:
            attempts += 1
            kind = self.rng.choices(kinds, weights=probabilities, k=1)[0]
            if getattr(self, "_" + kind)(work, record):
                applied += 1
        return MutatedTree(tree=work, record=record)

    # ------------------------------------------------------------------
    # Individual mutations. Each returns True when it applied.
    # ------------------------------------------------------------------
    def _insert_leaf(self, tree: Tree, record: MutationRecord) -> bool:
        parents = [n for n in tree.preorder() if not n.is_leaf or n.parent is None]
        parents = [n for n in parents if self._accepts_leaves(n)]
        if not parents:
            return False
        parent = self.rng.choice(parents)
        position = self.rng.randint(1, len(parent.children) + 1)
        tree.create_node(
            self.leaf_label, self._fresh_sentence(), parent=parent, position=position
        )
        record.applied.append("insert_leaf")
        record.true_d += 1
        record.true_e += 1.0
        return True

    def _delete_leaf(self, tree: Tree, record: MutationRecord) -> bool:
        leaves = [n for n in tree.leaves() if n.parent is not None]
        if not leaves:
            return False
        tree.delete(self.rng.choice(leaves).id)
        record.applied.append("delete_leaf")
        record.true_d += 1
        record.true_e += 1.0
        return True

    def _update_leaf(self, tree: Tree, record: MutationRecord) -> bool:
        leaves = [n for n in tree.leaves() if isinstance(n.value, str)]
        if not leaves:
            return False
        leaf = self.rng.choice(leaves)
        tree.update(leaf.id, self._perturb_sentence(str(leaf.value)))
        record.applied.append("update_leaf")
        record.true_d += 1
        # updates weigh 0 in the weighted edit distance
        return True

    def _move_leaf(self, tree: Tree, record: MutationRecord) -> bool:
        leaves = [n for n in tree.leaves() if n.parent is not None]
        if not leaves:
            return False
        leaf = self.rng.choice(leaves)
        targets = [
            n
            for n in tree.preorder()
            if not n.is_leaf and n is not leaf and self._accepts_leaves(n)
        ]
        if not targets:
            return False
        target = self.rng.choice(targets)
        limit = len(target.children) + (0 if leaf.parent is target else 1)
        if limit < 1:
            return False
        tree.move(leaf.id, target.id, self.rng.randint(1, limit))
        record.applied.append("move_leaf")
        record.true_d += 1
        record.true_e += 1.0
        return True

    def _move_subtree(self, tree: Tree, record: MutationRecord) -> bool:
        movables = [
            n
            for n in tree.preorder()
            if n.parent is not None and not n.is_leaf
        ]
        if not movables:
            return False
        subtree = self.rng.choice(movables)
        targets = [
            n
            for n in tree.preorder()
            if not n.is_leaf
            and n is not subtree
            and not subtree.is_ancestor_of(n)
            and self._same_stratum(subtree, n)
        ]
        if not targets:
            return False
        target = self.rng.choice(targets)
        limit = len(target.children) + (0 if subtree.parent is target else 1)
        if limit < 1:
            return False
        leaf_weight = subtree.leaf_count()
        tree.move(subtree.id, target.id, self.rng.randint(1, limit))
        record.applied.append("move_subtree")
        record.true_d += 1
        record.true_e += leaf_weight
        return True

    def _insert_subtree(self, tree: Tree, record: MutationRecord) -> bool:
        parents = [
            n
            for n in tree.preorder()
            if not n.is_leaf and any(not c.is_leaf for c in n.children)
        ]
        if not parents:
            return False
        parent = self.rng.choice(parents)
        template = next(c for c in parent.children if not c.is_leaf)
        position = self.rng.randint(1, len(parent.children) + 1)
        node = tree.create_node(template.label, None, parent=parent, position=position)
        sentences = self.rng.randint(1, 4)
        for _ in range(sentences):
            tree.create_node(self.leaf_label, self._fresh_sentence(), parent=node)
        record.applied.append("insert_subtree")
        record.true_d += 1 + sentences
        record.true_e += 1 + sentences
        return True

    def _delete_subtree(self, tree: Tree, record: MutationRecord) -> bool:
        candidates = [
            n
            for n in tree.preorder()
            if n.parent is not None and not n.is_leaf and n.subtree_size() <= 12
        ]
        if not candidates:
            return False
        doomed = self.rng.choice(candidates)
        size = doomed.subtree_size()
        for node in list(doomed.postorder()):
            tree.delete(node.id)
        record.applied.append("delete_subtree")
        record.true_d += size
        record.true_e += size
        return True

    # ------------------------------------------------------------------
    def _accepts_leaves(self, node: Node) -> bool:
        """Only put sentences where sentences already live (or in empties)."""
        if node.is_leaf:
            return False
        return any(c.label == self.leaf_label for c in node.children) or all(
            c.is_leaf for c in node.children
        )

    def _same_stratum(self, subtree: Node, target: Node) -> bool:
        """Move paragraphs under sections, items under lists, etc."""
        if subtree.parent is None:
            return False
        return target.label == subtree.parent.label

    def _fresh_sentence(self) -> str:
        length = self.rng.randint(6, 14)
        words = [
            self.rng.choice(CONTENT_WORDS if self.rng.random() < 0.35 else VOCABULARY)
            for _ in range(length)
        ]
        words[0] = words[0].capitalize()
        return " ".join(words) + "."

    def _perturb_sentence(self, text: str) -> str:
        """Change a few words so the sentence stays 'close' (compare < 1)."""
        words = text.split()
        if not words:
            return self._fresh_sentence()
        edits = max(1, len(words) // 6)
        for _ in range(edits):
            index = self.rng.randrange(len(words))
            words[index] = self.rng.choice(VOCABULARY)
        return " ".join(words)


@dataclass
class MutatedTree:
    """A mutated tree plus the ground-truth record of the edits applied."""

    tree: Tree
    record: MutationRecord
