"""HTML parsing into document trees.

The paper's future-work section plans "extending [LaDiff] to HTML and SGML
documents"; this module provides that extension for HTML. The element
mapping mirrors the LaTeX subset:

* ``<h1>``/``<h2>``  -> ``Sec``  (heading text as value)
* ``<h3>``-``<h6>``  -> ``SubSec``
* ``<p>``            -> ``P``
* ``<ul>``/``<ol>``/``<dl>`` -> ``list`` (merged label, as for LaTeX lists)
* ``<li>``/``<dd>``  -> ``item``
* text               -> ``S`` sentences

Unknown elements are transparent: their text participates in the enclosing
block, so arbitrary real-world pages degrade gracefully instead of failing.
"""

from __future__ import annotations

from html.parser import HTMLParser
from typing import List, Optional

from ..core.node import Node
from ..core.tree import Tree
from .latex_parser import split_sentences

_SECTION_TAGS = {"h1": "Sec", "h2": "Sec", "h3": "SubSec", "h4": "SubSec",
                 "h5": "SubSec", "h6": "SubSec"}
_LIST_TAGS = {"ul", "ol", "dl"}
_ITEM_TAGS = {"li", "dd", "dt"}
_SKIP_TAGS = {"script", "style", "head", "title"}


def parse_html(source: str) -> Tree:
    """Parse an HTML document into a D/Sec/SubSec/P/list/item/S tree."""
    builder = _TreeBuilder()
    builder.feed(source)
    builder.close()
    return builder.finish()


class _TreeBuilder(HTMLParser):
    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.tree = Tree()
        self.document = self.tree.create_node("D", None)
        self.containers: List[Node] = [self.document]
        self.text_parts: List[str] = []
        self.heading: Optional[str] = None  # label while inside <h*>
        self.heading_parts: List[str] = []
        self.skip_depth = 0

    # ------------------------------------------------------------------
    def handle_starttag(self, tag: str, attrs) -> None:
        if tag in _SKIP_TAGS:
            self.skip_depth += 1
            return
        if self.skip_depth:
            return
        if tag in _SECTION_TAGS:
            self._flush_paragraph()
            self.heading = _SECTION_TAGS[tag]
            self.heading_parts = []
        elif tag in _LIST_TAGS:
            self._flush_paragraph()
            node = self.tree.create_node("list", None, parent=self.containers[-1])
            self.containers.append(node)
        elif tag in _ITEM_TAGS:
            self._flush_paragraph()
            self._pop_until({"list"})
            node = self.tree.create_node("item", None, parent=self.containers[-1])
            self.containers.append(node)
        elif tag == "p" or tag == "br":
            self._flush_paragraph()

    def handle_endtag(self, tag: str) -> None:
        if tag in _SKIP_TAGS:
            self.skip_depth = max(0, self.skip_depth - 1)
            return
        if self.skip_depth:
            return
        if tag in _SECTION_TAGS and self.heading is not None:
            label = self.heading
            title = " ".join(" ".join(self.heading_parts).split()) or None
            self.heading = None
            self.heading_parts = []
            self._open_section(label, title)
        elif tag in _LIST_TAGS:
            self._flush_paragraph()
            self._pop_until({"list"})
            if self.containers[-1].label == "list":
                self.containers.pop()
        elif tag in _ITEM_TAGS:
            self._flush_paragraph()
            if self.containers[-1].label == "item":
                self.containers.pop()
        elif tag == "p":
            self._flush_paragraph()

    def handle_data(self, data: str) -> None:
        if self.skip_depth:
            return
        if self.heading is not None:
            self.heading_parts.append(data)
        elif data.strip():
            self.text_parts.append(data)

    # ------------------------------------------------------------------
    def _open_section(self, label: str, title: Optional[str]) -> None:
        if label == "Sec":
            self.containers = [self.document]
            parent = self.document
        else:
            while self.containers[-1].label not in ("Sec", "D"):
                self.containers.pop()
            parent = self.containers[-1]
        node = self.tree.create_node(label, title, parent=parent)
        self.containers.append(node)

    def _pop_until(self, labels: set) -> None:
        while (
            len(self.containers) > 1
            and self.containers[-1].label not in labels
            and self.containers[-1].label in ("item",)
        ):
            self.containers.pop()

    def _flush_paragraph(self) -> None:
        if not self.text_parts:
            return
        text = " ".join(" ".join(self.text_parts).split())
        self.text_parts = []
        sentences = split_sentences(text)
        if not sentences:
            return
        parent = self.containers[-1]
        if parent.label == "item":
            for sentence in sentences:
                self.tree.create_node("S", sentence, parent=parent)
            return
        paragraph = self.tree.create_node("P", None, parent=parent)
        for sentence in sentences:
            self.tree.create_node("S", sentence, parent=paragraph)

    def finish(self) -> Tree:
        self._flush_paragraph()
        return self.tree
