r"""LaTeX parsing into the paper's document trees (Section 7).

LaDiff "parses a subset of Latex consisting of sentences, paragraphs,
subsections, sections, lists, items, and document". This parser covers that
subset:

* ``\section{...}`` / ``\subsection{...}`` — labeled ``Sec`` / ``SubSec``
  with the heading text as the node value;
* ``itemize`` / ``enumerate`` / ``description`` environments — all mapped to
  the single label ``list`` (the paper's cycle-merging example: the three
  list kinds are semantically similar and would otherwise create a label
  cycle);
* ``\item`` — label ``item``, sentences as children;
* blank-line separated paragraphs — label ``P``;
* sentences — label ``S`` with the sentence text as value, split on
  ``.``/``!``/``?`` boundaries.

Everything between ``\begin{document}`` and ``\end{document}`` is parsed
(the whole input when no document environment is present); comments are
stripped; unknown commands are kept verbatim as sentence text so no content
is silently dropped.
"""

from __future__ import annotations

import re
from typing import List

from ..core.errors import ParseError
from ..core.node import Node
from ..core.tree import Tree

#: Environments merged into the single ``list`` label.
LIST_ENVIRONMENTS = ("itemize", "enumerate", "description")

_COMMENT = re.compile(r"(?<!\\)%.*$", re.MULTILINE)
_SECTION = re.compile(r"\\(section|subsection)\*?\{([^{}]*)\}")
_BEGIN_LIST = re.compile(r"\\begin\{(" + "|".join(LIST_ENVIRONMENTS) + r")\}")
_END_LIST = re.compile(r"\\end\{(" + "|".join(LIST_ENVIRONMENTS) + r")\}")
_ITEM = re.compile(r"\\item\b\s*")
_SENTENCE_SPLIT = re.compile(r"(?<=[.!?])\s+")


def parse_latex(source: str) -> Tree:
    """Parse LaTeX source into a document tree (labels D/Sec/SubSec/P/list/item/S)."""
    body = _extract_body(source)
    body = _COMMENT.sub("", body)
    return _Parser(body).parse()


def split_sentences(text: str) -> List[str]:
    """Split a paragraph's text into sentences on ``.``/``!``/``?`` + space."""
    text = " ".join(text.split())
    if not text:
        return []
    return [part for part in _SENTENCE_SPLIT.split(text) if part]


def _extract_body(source: str) -> str:
    begin = source.find(r"\begin{document}")
    if begin < 0:
        return source
    begin += len(r"\begin{document}")
    end = source.find(r"\end{document}", begin)
    if end < 0:
        raise ParseError(r"\begin{document} without matching \end{document}")
    return source[begin:end]


class _Parser:
    """Line-oriented recursive-descent parser for the LaDiff LaTeX subset."""

    def __init__(self, body: str) -> None:
        self.lines = body.split("\n")
        self.index = 0
        self.tree = Tree()
        self.document = self.tree.create_node("D", None)
        # Stack of open containers, innermost last. Sections/subsections
        # replace each other at their level; lists/items nest freely.
        self.containers: List[Node] = [self.document]
        self.paragraph_text: List[str] = []

    # ------------------------------------------------------------------
    def parse(self) -> Tree:
        while self.index < len(self.lines):
            line = self.lines[self.index]
            self.index += 1
            self._consume_line(line)
        self._flush_paragraph()
        return self.tree

    # ------------------------------------------------------------------
    def _consume_line(self, line: str) -> None:
        stripped = line.strip()
        if not stripped:
            self._flush_paragraph()
            return
        position = 0
        while position < len(stripped):
            section = _SECTION.match(stripped, position)
            if section:
                self._flush_paragraph()
                self._open_section(section.group(1), section.group(2).strip())
                position = section.end()
                continue
            begin = _BEGIN_LIST.match(stripped, position)
            if begin:
                self._flush_paragraph()
                self._open_list()
                position = begin.end()
                continue
            end = _END_LIST.match(stripped, position)
            if end:
                self._flush_paragraph()
                self._close_list()
                position = end.end()
                continue
            item = _ITEM.match(stripped, position)
            if item:
                self._flush_paragraph()
                self._open_item()
                position = item.end()
                continue
            # Plain text: accumulate up to the next recognized construct.
            next_break = _next_construct(stripped, position)
            chunk = stripped[position:next_break].strip()
            if chunk:
                self.paragraph_text.append(chunk)
            position = next_break

    # ------------------------------------------------------------------
    # Container management
    # ------------------------------------------------------------------
    def _open_section(self, kind: str, title: str) -> None:
        label = "Sec" if kind == "section" else "SubSec"
        # Unwind to the level that may contain this heading: sections live
        # under the document; subsections under the current section.
        if label == "Sec":
            self.containers = [self.document]
            parent = self.document
        else:
            while self.containers[-1].label not in ("Sec", "D"):
                self.containers.pop()
            parent = self.containers[-1]
        node = self.tree.create_node(label, title or None, parent=parent)
        self.containers.append(node)

    def _open_list(self) -> None:
        parent = self._block_parent()
        node = self.tree.create_node("list", None, parent=parent)
        self.containers.append(node)

    def _close_list(self) -> None:
        while self.containers and self.containers[-1].label in ("item",):
            self.containers.pop()
        if not self.containers or self.containers[-1].label != "list":
            raise ParseError(r"\end{itemize}-style close without open list")
        self.containers.pop()

    def _open_item(self) -> None:
        while self.containers and self.containers[-1].label == "item":
            self.containers.pop()
        if not self.containers or self.containers[-1].label != "list":
            raise ParseError(r"\item outside of a list environment")
        node = self.tree.create_node("item", None, parent=self.containers[-1])
        self.containers.append(node)

    def _block_parent(self) -> Node:
        """Container that receives paragraphs and lists."""
        return self.containers[-1]

    # ------------------------------------------------------------------
    def _flush_paragraph(self) -> None:
        if not self.paragraph_text:
            return
        text = " ".join(self.paragraph_text)
        self.paragraph_text = []
        sentences = split_sentences(text)
        if not sentences:
            return
        parent = self._block_parent()
        if parent.label == "item":
            # Items hold sentences directly (paper's document schema).
            for sentence in sentences:
                self.tree.create_node("S", sentence, parent=parent)
            return
        paragraph = self.tree.create_node("P", None, parent=parent)
        for sentence in sentences:
            self.tree.create_node("S", sentence, parent=paragraph)


def _next_construct(text: str, start: int) -> int:
    """Index of the next recognized LaTeX construct at or after *start*."""
    best = len(text)
    for pattern in (_SECTION, _BEGIN_LIST, _END_LIST, _ITEM):
        found = pattern.search(text, start + 1)
        if found and found.start() < best:
            best = found.start()
    return best
