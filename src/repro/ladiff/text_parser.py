"""Plain-text parsing into document trees.

The simplest front end: blank-line separated paragraphs of sentences under a
single document root (labels ``D`` / ``P`` / ``S``). Useful both as a LaDiff
input format and as the flat-diff baseline's structured counterpart.
"""

from __future__ import annotations

from typing import List

from ..core.tree import Tree
from .latex_parser import split_sentences


def parse_text(source: str) -> Tree:
    """Parse plain text: paragraphs split on blank lines, then sentences."""
    tree = Tree()
    document = tree.create_node("D", None)
    for block in _paragraph_blocks(source):
        sentences = split_sentences(block)
        if not sentences:
            continue
        paragraph = tree.create_node("P", None, parent=document)
        for sentence in sentences:
            tree.create_node("S", sentence, parent=paragraph)
    return tree


def write_text(tree: Tree) -> str:
    """Render a D/P/S tree back to plain text (one blank line per break)."""
    paragraphs: List[str] = []
    if tree.root is None:
        return ""
    for node in tree.root.children:
        if node.label == "P":
            paragraphs.append(
                " ".join(str(c.value) for c in node.children if c.label == "S")
            )
        elif node.label == "S":
            paragraphs.append(str(node.value))
    return "\n\n".join(paragraphs) + ("\n" if paragraphs else "")


def _paragraph_blocks(source: str) -> List[str]:
    blocks: List[str] = []
    current: List[str] = []
    for line in source.split("\n"):
        if line.strip():
            current.append(line.strip())
        elif current:
            blocks.append(" ".join(current))
            current = []
    if current:
        blocks.append(" ".join(current))
    return blocks
