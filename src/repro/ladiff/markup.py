"""The LaDiff mark-up conventions (paper Table 2), as data.

Keeping the conventions as a queryable table lets tests and the Table 2
benchmark verify that the renderers actually implement them, and gives
documentation a single source of truth.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: (textual unit, operation) -> human description of the LaTeX mark-up.
MARKUP_CONVENTIONS: Dict[Tuple[str, str], str] = {
    ("Sentence", "Insert"): "Bold font",
    ("Sentence", "Delete"): "Small font",
    ("Sentence", "Update"): "Italic font",
    ("Sentence", "Move"): "Footnote, label",
    ("Paragraph", "Insert"): "Marginal note",
    ("Paragraph", "Delete"): "Marginal note",
    ("Paragraph", "Update"): "Marginal note",
    ("Paragraph", "Move"): "Marginal note, label",
    ("Item", "Insert"): "Marginal note",
    ("Item", "Delete"): "Marginal note",
    ("Item", "Update"): "Marginal note",
    ("Item", "Move"): "Marginal note, label",
    ("Subsection", "Insert"): "Annotation (ins) in heading",
    ("Subsection", "Delete"): "Annotation (del) in heading",
    ("Subsection", "Update"): "Annotation (upd) in heading",
    ("Subsection", "Move"): "Annotation (mov) in heading",
    ("Section", "Insert"): "Annotation (ins) in heading",
    ("Section", "Delete"): "Annotation (del) in heading",
    ("Section", "Update"): "Annotation (upd) in heading",
    ("Section", "Move"): "Annotation (mov) in heading",
}

#: Tree label -> Table 2 textual unit name.
LABEL_TO_UNIT: Dict[str, str] = {
    "S": "Sentence",
    "P": "Paragraph",
    "item": "Item",
    "SubSec": "Subsection",
    "Sec": "Section",
}

#: LaTeX snippets the renderer is expected to emit for each (label, op).
EXPECTED_LATEX_MARKERS: Dict[Tuple[str, str], str] = {
    ("S", "INS"): r"\textbf{",
    ("S", "DEL"): r"{\small ",
    ("S", "UPD"): r"\textit{",
    ("S", "MOV"): r"\footnote{Moved from ",
    ("P", "INS"): r"\marginpar{Inserted para}",
    ("P", "DEL"): r"\marginpar{Deleted para}",
    ("P", "UPD"): r"\marginpar{Updated para}",
    ("P", "MOV"): r"\marginpar{Moved from ",
    ("item", "INS"): r"\marginpar{Inserted item}",
    ("item", "DEL"): r"\marginpar{Deleted item}",
    ("item", "MOV"): r"\marginpar{Moved from ",
    ("Sec", "INS"): "(ins)",
    ("Sec", "DEL"): "(del)",
    ("Sec", "UPD"): "(upd)",
    ("Sec", "MOV"): "(mov)",
    ("SubSec", "INS"): "(ins)",
    ("SubSec", "DEL"): "(del)",
    ("SubSec", "UPD"): "(upd)",
    ("SubSec", "MOV"): "(mov)",
}
