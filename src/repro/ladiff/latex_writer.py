r"""Serialization of document trees back to LaTeX source.

The inverse of :mod:`repro.ladiff.latex_parser` for the supported subset:
used by round-trip tests and by workload tooling that needs materialized
``.tex`` versions of synthetic documents.
"""

from __future__ import annotations

from typing import List

from ..core.node import Node
from ..core.tree import Tree


def write_latex(tree: Tree, full_document: bool = False) -> str:
    """Render a document tree (labels D/Sec/SubSec/P/list/item/S) as LaTeX."""
    lines: List[str] = []
    if tree.root is not None:
        _write_children(tree.root, lines)
    body = "\n".join(lines).strip("\n") + "\n"
    if full_document:
        return (
            "\\documentclass{article}\n\\begin{document}\n\n"
            + body
            + "\n\\end{document}\n"
        )
    return body


def _write_children(node: Node, lines: List[str]) -> None:
    for child in node.children:
        _write_node(child, lines)


def _write_node(node: Node, lines: List[str]) -> None:
    if node.label == "Sec":
        lines.append(f"\\section{{{node.value or ''}}}")
        lines.append("")
        _write_children(node, lines)
    elif node.label == "SubSec":
        lines.append(f"\\subsection{{{node.value or ''}}}")
        lines.append("")
        _write_children(node, lines)
    elif node.label == "P":
        sentences = [
            str(child.value) for child in node.children if child.label == "S"
        ]
        lines.append(" ".join(sentences))
        lines.append("")
        for child in node.children:
            if child.label != "S":
                _write_node(child, lines)
    elif node.label == "list":
        lines.append("\\begin{itemize}")
        _write_children(node, lines)
        lines.append("\\end{itemize}")
        lines.append("")
    elif node.label == "item":
        sentences = [
            str(child.value) for child in node.children if child.label == "S"
        ]
        lines.append("\\item " + " ".join(sentences))
        for child in node.children:
            if child.label != "S":
                _write_node(child, lines)
    elif node.label == "S":
        lines.append(str(node.value))
        lines.append("")
    else:
        _write_children(node, lines)
