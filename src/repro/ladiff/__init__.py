"""LaDiff: change detection and mark-up for structured documents (§7)."""

from .html_parser import parse_html
from .latex_parser import parse_latex, split_sentences
from .latex_writer import write_latex
from .markup import EXPECTED_LATEX_MARKERS, LABEL_TO_UNIT, MARKUP_CONVENTIONS
from .pipeline import LaDiffResult, default_match_config, ladiff, ladiff_files
from .text_parser import parse_text, write_text
from .xml_parser import parse_xml, write_xml

__all__ = [
    "EXPECTED_LATEX_MARKERS",
    "LABEL_TO_UNIT",
    "LaDiffResult",
    "MARKUP_CONVENTIONS",
    "default_match_config",
    "ladiff",
    "ladiff_files",
    "parse_html",
    "parse_latex",
    "parse_text",
    "parse_xml",
    "split_sentences",
    "write_latex",
    "write_text",
    "write_xml",
]
