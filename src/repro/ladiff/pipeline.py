"""The LaDiff pipeline (paper Section 7).

End-to-end change detection for structured documents:

1. parse the old and new sources into document trees,
2. FastMatch (+ Section 8 post-processing) to find the matching,
3. Algorithm EditScript for the minimum conforming edit script,
4. build the delta tree,
5. render the marked-up output (LaTeX per Table 2, HTML, or text).

The paper's LaDiff "takes the match threshold t as a parameter"; pass a
custom :class:`~repro.matching.MatchConfig` to control ``t`` (and ``f``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..compare.sentence import SentenceComparator
from ..core.tree import Tree
from ..deltatree.builder import DeltaTree
from ..deltatree.render_text import change_summary
from ..matching.criteria import MatchConfig
from ..pipeline import DiffConfig, DiffPipeline, DiffResult
from .html_parser import parse_html
from .latex_parser import parse_latex
from .text_parser import parse_text
from .xml_parser import parse_xml

Parser = Callable[[str], Tree]

_PARSERS = {
    "latex": parse_latex,
    "html": parse_html,
    "text": parse_text,
    "xml": parse_xml,
}


@dataclass
class LaDiffResult:
    """Everything one LaDiff run produces."""

    old_tree: Tree
    new_tree: Tree
    diff: DiffResult
    delta: DeltaTree
    output: str

    @property
    def script(self):
        return self.diff.script

    def summary(self) -> str:
        """Human one-liner, e.g. '2 inserted, 1 moved'."""
        return change_summary(self.delta)


def default_match_config(t: float = 0.5, f: float = 0.6) -> MatchConfig:
    """LaDiff's matching configuration.

    Sentences are compared with the word-LCS distance of Section 7
    (case-sensitive, punctuation significant, memoized tokenization).
    """
    config = MatchConfig(f=f, t=t)
    config.registry.register("S", SentenceComparator())
    return config


def ladiff(
    old_source: str,
    new_source: str,
    format: str = "latex",
    config: Optional[MatchConfig] = None,
    output: str = "latex",
) -> LaDiffResult:
    """Run the full LaDiff pipeline on two document sources.

    Parameters
    ----------
    old_source, new_source:
        The two document versions, as text.
    format:
        Input format: ``"latex"``, ``"html"``, or ``"text"``.
    config:
        Matching thresholds; :func:`default_match_config` when omitted.
    output:
        Output mark-up: ``"latex"`` (Table 2 conventions), ``"html"``, or
        ``"text"`` (indented annotation dump).
    """
    try:
        parser = _PARSERS[format]
    except KeyError:
        raise ValueError(
            f"unknown input format {format!r}; expected one of {sorted(_PARSERS)}"
        ) from None
    config = config if config is not None else default_match_config()
    # One DiffPipeline run covers steps 2-5: match, postprocess, edit
    # script, delta tree, and rendering (validated up front by DiffConfig).
    pipeline = DiffPipeline(DiffConfig(match=config, render=output))
    old_tree = parser(old_source)
    new_tree = parser(new_source)
    diff = pipeline.run(old_tree, new_tree)
    return LaDiffResult(
        old_tree=old_tree,
        new_tree=new_tree,
        diff=diff,
        delta=diff.delta,
        output=diff.rendered,
    )


def ladiff_files(
    old_path: str,
    new_path: str,
    format: str = "latex",
    config: Optional[MatchConfig] = None,
    output: str = "latex",
) -> LaDiffResult:
    """File-based convenience wrapper around :func:`ladiff`."""
    with open(old_path, encoding="utf-8") as handle:
        old_source = handle.read()
    with open(new_path, encoding="utf-8") as handle:
        new_source = handle.read()
    return ladiff(old_source, new_source, format=format, config=config, output=output)
