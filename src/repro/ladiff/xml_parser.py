"""XML parsing into label-value trees (the SGML plan of paper §9).

The paper closes with "extending [LaDiff] to HTML and SGML documents"; this
is the SGML-descendant (XML) front end, and the encoding that descendants
of this paper (xmldiff, DaisyDiff, GumTree) use in practice:

* an element becomes a node labeled with its tag;
* each attribute becomes a child node labeled ``@<name>`` whose value is
  the attribute value (attributes sort by name so attribute order — which
  XML deems insignificant — cannot masquerade as a change);
* text content becomes ``#text`` leaves, split out around child elements
  (i.e. mixed content is preserved in document order).

The inverse, :func:`write_xml`, serializes a tree in this encoding back to
XML; ``parse -> write -> parse`` is the identity on the supported subset
(attribute order normalized, whitespace-only text dropped).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional
from xml.sax.saxutils import escape, quoteattr

from ..core.errors import ParseError
from ..core.node import Node
from ..core.tree import Tree

ATTRIBUTE_PREFIX = "@"
TEXT_LABEL = "#text"


def parse_xml(source: str) -> Tree:
    """Parse an XML document into a label-value tree."""
    try:
        root_element = ET.fromstring(source)
    except ET.ParseError as exc:
        raise ParseError(f"invalid XML: {exc}") from None
    tree = Tree()

    def build(element: ET.Element, parent: Optional[Node]) -> None:
        node = tree.create_node(element.tag, None, parent=parent)
        for name in sorted(element.attrib):
            tree.create_node(
                ATTRIBUTE_PREFIX + name, element.attrib[name], parent=node
            )
        if element.text and element.text.strip():
            tree.create_node(TEXT_LABEL, element.text.strip(), parent=node)
        for child in element:
            build(child, node)
            if child.tail and child.tail.strip():
                tree.create_node(TEXT_LABEL, child.tail.strip(), parent=node)

    build(root_element, None)
    return tree


def write_xml(tree: Tree, indent: int = 2) -> str:
    """Serialize a tree in the XML encoding back to XML text."""
    if tree.root is None:
        return ""
    lines = []
    _write_element(tree.root, lines, 0, indent)
    return "\n".join(lines) + "\n"


def _write_element(node: Node, lines, depth: int, indent: int) -> None:
    if node.label.startswith(ATTRIBUTE_PREFIX) or node.label == TEXT_LABEL:
        raise ParseError(
            f"node {node.label!r} is not an element; attribute and text "
            f"nodes may only appear under an element"
        )
    pad = " " * (depth * indent)
    attributes = [
        child
        for child in node.children
        if child.label.startswith(ATTRIBUTE_PREFIX)
    ]
    content = [
        child
        for child in node.children
        if not child.label.startswith(ATTRIBUTE_PREFIX)
    ]
    attr_text = "".join(
        f" {child.label[len(ATTRIBUTE_PREFIX):]}={quoteattr(str(child.value))}"
        for child in attributes
    )
    if not content:
        lines.append(f"{pad}<{node.label}{attr_text}/>")
        return
    if len(content) == 1 and content[0].label == TEXT_LABEL:
        text = escape(str(content[0].value))
        lines.append(f"{pad}<{node.label}{attr_text}>{text}</{node.label}>")
        return
    lines.append(f"{pad}<{node.label}{attr_text}>")
    for child in content:
        if child.label == TEXT_LABEL:
            lines.append(f"{pad}{' ' * indent}{escape(str(child.value))}")
        else:
            _write_element(child, lines, depth + 1, indent)
    lines.append(f"{pad}</{node.label}>")
