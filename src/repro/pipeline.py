"""The staged diff pipeline every front end runs on.

The paper's algorithm is a fixed sequence of stages — build per-tree
indexes, find a good matching (§5), optionally repair it (§8), generate the
minimum conforming edit script (§4), and (for document front ends) build
and render the delta tree (§6). :class:`DiffPipeline` runs exactly those
named stages:

    ``index → match → postprocess → editscript → deltatree``

configured by one :class:`DiffConfig` and instrumented by one
:class:`Trace` per run: per-stage wall time, the §8 comparison counters
(``r1``/``r2``), node counts, and index-cache hits, recorded through a
lightweight span API that external sinks (e.g.
:meth:`repro.service.metrics.ServiceMetrics.stage_listener`) can subscribe
to.

Every entry point in the repository — :func:`repro.diff.tree_diff`, the
CLI, :class:`repro.service.DiffEngine`, :class:`repro.store.VersionStore`,
:func:`repro.merge.three_way_merge`, :func:`repro.oem.json_diff`,
:func:`repro.graphs.graph_diff`, and :func:`repro.ladiff.pipeline.ladiff` —
routes through this module, so there is one place to cache, one place to
measure, and one place to add backends.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
)

from ._compat import DATACLASS_SLOTS
from .core.errors import ConfigError
from .core.index import TreeIndex, cached_index
from .core.tree import Tree
from .editscript.cost import CostModel
from .editscript.generator import EditScriptResult, generate_edit_script
from .editscript.script import EditScript
from .matching.criteria import CriteriaContext, MatchConfig, MatchingStats
from .matching.fastmatch import fast_match
from .matching.matching import Matching
from .matching.postprocess import postprocess_matching
from .matching.schema import LabelSchema
from .matching.simple import match as simple_match

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .deltatree.builder import DeltaTree

#: Stage names, in execution order.
STAGES = ("index", "match", "postprocess", "editscript", "deltatree")

#: Recognized matcher choices.
ALGORITHMS = ("fast", "simple")

#: Recognized delta-tree renderers.
RENDER_FORMATS = ("latex", "html", "text")


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------
@dataclass
class DiffConfig:
    """Everything that parameterizes one diff, validated up front.

    Attributes
    ----------
    algorithm:
        ``"fast"`` (FastMatch, Figure 11) or ``"simple"`` (Match, Figure 10).
    match:
        Matching thresholds and comparators (:class:`MatchConfig`);
        defaults are the paper's ``f=0.6, t=0.5``.
    schema:
        Label order for FastMatch's bottom-up internal pass; inferred from
        the two trees when omitted.
    cost_model:
        Default cost model for :meth:`DiffResult.cost`.
    postprocess:
        Run the §8 top-down repair pass after matching.
    build_delta:
        Run the ``deltatree`` stage (§6) and attach the result.
    render:
        Render the delta tree (``"latex"``, ``"html"`` or ``"text"``);
        implies ``build_delta``.
    reuse_indexes:
        Consult a :class:`~repro.core.index.TreeIndex` previously attached
        to a tree (``tree.index``) before building a fresh one; hits are
        reported in the trace as ``index_cache_hits``.

    All validation happens here, in ``__post_init__``, so every front end
    rejects a bad configuration with one typed :class:`ConfigError` before
    any stage runs.
    """

    algorithm: str = "fast"
    match: Optional[MatchConfig] = None
    schema: Optional[LabelSchema] = None
    cost_model: Optional[CostModel] = None
    postprocess: bool = True
    build_delta: bool = False
    render: Optional[str] = None
    reuse_indexes: bool = True

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ConfigError(
                f"unknown matching algorithm {self.algorithm!r}; "
                f"expected one of {list(ALGORITHMS)}"
            )
        if self.render is not None:
            if self.render not in RENDER_FORMATS:
                raise ConfigError(
                    f"unknown output format {self.render!r}; "
                    f"expected one of {list(RENDER_FORMATS)}"
                )
            self.build_delta = True
        if self.match is not None and not isinstance(self.match, MatchConfig):
            raise ConfigError(
                f"match must be a MatchConfig, got {type(self.match).__name__}"
            )


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------
@dataclass(**DATACLASS_SLOTS)
class Span:
    """One completed pipeline stage: name, wall time, and annotations."""

    name: str
    wall_ms: float = 0.0
    meta: Dict[str, Any] = field(default_factory=dict)


#: A span listener: called with each span as it closes.
SpanListener = Callable[[Span], None]


class Trace:
    """Per-run instrumentation: spans per stage plus scalar counters.

    Counters always present after a run: ``nodes_t1`` / ``nodes_t2``,
    ``leaf_compares`` (the paper's ``r1``), ``partner_checks`` (``r2``),
    ``lcs_calls``, ``postprocess_repairs``, ``operations``, and
    ``index_cache_hits``.
    """

    __slots__ = ("spans", "counters", "_listeners")

    def __init__(self, listeners: Tuple[SpanListener, ...] = ()) -> None:
        self.spans: List[Span] = []
        self.counters: Dict[str, int] = {}
        self._listeners = tuple(listeners)

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Record one named stage; notifies subscribers when it closes."""
        span = Span(name)
        start = time.perf_counter()
        try:
            yield span
        finally:
            span.wall_ms = (time.perf_counter() - start) * 1000.0
            self.spans.append(span)
            for listener in self._listeners:
                listener(span)

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def stage_ms(self) -> Dict[str, float]:
        """Wall milliseconds per stage, in execution order."""
        return {span.name: span.wall_ms for span in self.spans}

    def total_ms(self) -> float:
        return sum(span.wall_ms for span in self.spans)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly export (used by ``repro-diff batch --json``)."""
        return {
            "stages": [
                {"name": s.name, "wall_ms": round(s.wall_ms, 3), **s.meta}
                for s in self.spans
            ],
            "counters": dict(self.counters),
        }

    def render(self) -> str:
        """Human-readable block (used by ``repro-diff script --trace``)."""
        lines = ["-- trace --"]
        for span in self.spans:
            extra = "".join(f" {k}={v}" for k, v in sorted(span.meta.items()))
            lines.append(f"{span.name + ':':<14}{span.wall_ms:9.3f} ms{extra}")
        lines.append(f"{'total:':<14}{self.total_ms():9.3f} ms")
        for name in sorted(self.counters):
            lines.append(f"{name + ':':<22}{self.counters[name]}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Result
# ---------------------------------------------------------------------------
@dataclass
class DiffResult:
    """Everything produced by one end-to-end diff.

    The always-present core — the matching used, the edit-script bundle,
    and the §8 counters — plus the run's :class:`Trace` and, when the
    configuration asked for them, the §6 delta tree and its rendering.
    """

    matching: Matching
    edit: EditScriptResult
    match_stats: MatchingStats = field(default_factory=MatchingStats)
    postprocess_repairs: int = 0
    trace: Optional[Trace] = None
    delta: Optional["DeltaTree"] = None
    rendered: Optional[str] = None
    cost_model: Optional[CostModel] = None

    @property
    def script(self) -> EditScript:
        """The minimum conforming edit script."""
        return self.edit.script

    def cost(self, model: Optional[CostModel] = None) -> float:
        return self.edit.cost(model if model is not None else self.cost_model)

    def verify(self, t1: Tree, t2: Tree) -> bool:
        """Replay the script on *t1* and compare against *t2*."""
        return self.edit.verify(t1, t2)

    def oracle_report(self, t1: Tree, t2: Tree, config=None):
        """Run the full :mod:`repro.verify` oracle battery on this result.

        Returns a :class:`~repro.verify.oracles.VerifyReport`; pass the
        :class:`~repro.matching.criteria.MatchConfig` the diff ran with to
        also check the matching criteria. (Lazy import: ``repro.verify``
        depends on this module.)
        """
        from .verify.oracles import verify_result

        return verify_result(t1, t2, self, config=config)


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------
class DiffPipeline:
    """Run the paper's staged diff under one configuration.

    A pipeline object is cheap and stateless between runs (all per-run
    state lives in the :class:`Trace`), so one instance can serve many
    calls — including concurrently from the service layer's worker threads.

    Parameters
    ----------
    config:
        The :class:`DiffConfig`; defaults throughout when omitted.
    listeners:
        Span subscribers notified as each stage closes (e.g.
        ``ServiceMetrics.stage_listener()``).
    """

    def __init__(
        self,
        config: Optional[DiffConfig] = None,
        listeners: Tuple[SpanListener, ...] = (),
    ) -> None:
        self.config = config if config is not None else DiffConfig()
        self._listeners: Tuple[SpanListener, ...] = tuple(listeners)

    def subscribe(self, listener: SpanListener) -> None:
        """Add a span listener for all subsequent runs."""
        self._listeners = self._listeners + (listener,)

    # ------------------------------------------------------------------
    def run(
        self,
        t1: Tree,
        t2: Tree,
        matching: Optional[Matching] = None,
    ) -> DiffResult:
        """Diff *t1* against *t2*; neither tree is mutated.

        A precomputed *matching* (e.g. from keys) skips the ``match`` and
        ``postprocess`` stages entirely, exactly as the legacy
        ``tree_diff(matching=...)`` did.
        """
        config = self.config
        trace = Trace(self._listeners)
        stats = MatchingStats()
        repairs = 0

        with trace.span("index") as span:
            index1 = self._index_for(t1, trace)
            index2 = self._index_for(t2, trace)
            span.meta["nodes_t1"] = len(t1)
            span.meta["nodes_t2"] = len(t2)
        trace.counters.setdefault("index_cache_hits", 0)
        trace.counters["nodes_t1"] = len(t1)
        trace.counters["nodes_t2"] = len(t2)

        context = CriteriaContext(
            t1, t2, config.match, stats, index1=index1, index2=index2
        )
        if matching is None:
            with trace.span("match") as span:
                if config.algorithm == "fast":
                    matching = fast_match(
                        t1, t2, config.match, config.schema, stats, context=context
                    )
                else:
                    matching = simple_match(
                        t1, t2, config.match, stats, context=context
                    )
                span.meta["pairs"] = len(matching)
            if config.postprocess:
                with trace.span("postprocess") as span:
                    repairs = postprocess_matching(
                        t1, t2, matching, config.match, stats, context=context
                    )
                    span.meta["repairs"] = repairs

        with trace.span("editscript") as span:
            edit = generate_edit_script(t1, t2, matching, index2=index2)
            span.meta["operations"] = len(edit.script)

        result = DiffResult(
            matching=matching,
            edit=edit,
            match_stats=stats,
            postprocess_repairs=repairs,
            trace=trace,
            cost_model=config.cost_model,
        )
        if config.build_delta:
            with trace.span("deltatree"):
                result.delta = self._build_delta(t1, t2, edit)
                if config.render is not None:
                    result.rendered = _render_delta(result.delta, config.render)

        trace.counters.update(
            leaf_compares=stats.leaf_compares,
            partner_checks=stats.partner_checks,
            lcs_calls=stats.lcs_calls,
            postprocess_repairs=repairs,
            operations=len(edit.script),
        )
        return result

    # ------------------------------------------------------------------
    def _index_for(self, tree: Tree, trace: Trace) -> TreeIndex:
        if self.config.reuse_indexes:
            index, reused = cached_index(tree)
            if reused:
                trace.incr("index_cache_hits")
            return index
        return TreeIndex(tree)

    @staticmethod
    def _build_delta(t1: Tree, t2: Tree, edit: EditScriptResult) -> "DeltaTree":
        from .deltatree.builder import build_delta_tree

        return build_delta_tree(t1, t2, edit)


def _render_delta(delta: "DeltaTree", output: str) -> str:
    if output == "latex":
        from .deltatree.render_latex import render_latex

        return render_latex(delta)
    if output == "html":
        from .deltatree.render_html import render_html

        return render_html(delta)
    from .deltatree.render_text import render_text

    return render_text(delta)
