"""Delta-tree node annotations (paper Section 6).

Each node of a delta tree carries exactly one annotation:

* ``IDN`` — unchanged; corresponds to a node of the original tree.
* ``UPD(v)`` — value updated to ``v`` (old value retained for display).
* ``INS(l, v)`` — node inserted.
* ``DEL`` — the subtree rooted here was deleted from the old tree.
* ``MOV(x)`` — node moved here; ``x`` names the marker at the old position.
* ``MRK`` — tombstone: the old position of a moved node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union


@dataclass(frozen=True)
class Idn:
    """Unchanged node."""

    def tag(self) -> str:
        return "IDN"


@dataclass(frozen=True)
class Upd:
    """Value updated from ``old_value`` to the delta node's value."""

    old_value: Any = None

    def tag(self) -> str:
        return "UPD"


@dataclass(frozen=True)
class Ins:
    """Node inserted in the new version."""

    def tag(self) -> str:
        return "INS"


@dataclass(frozen=True)
class Del:
    """Subtree deleted from the old version (shown as a tombstone)."""

    def tag(self) -> str:
        return "DEL"


@dataclass(frozen=True)
class Mov:
    """Node moved to this position; ``marker`` names its old position.

    ``updated`` records whether the move was combined with a value update
    (the paper's mark-up shows both simultaneously, e.g. an italic sentence
    with a "moved from S1" footnote). The pre-move value is kept for
    renderers that display old content at the tombstone.
    """

    marker: str
    updated: bool = False
    old_value: Any = None

    def tag(self) -> str:
        return "MOV"


@dataclass(frozen=True)
class Mrk:
    """Marker (tombstone) node at the source position of a move."""

    marker: str

    def tag(self) -> str:
        return "MRK"


Annotation = Union[Idn, Upd, Ins, Del, Mov, Mrk]
