"""Delta trees: annotated change overlays and their renderers (Section 6)."""

from .annotations import Annotation, Del, Idn, Ins, Mov, Mrk, Upd
from .builder import DeltaNode, DeltaTree, build_delta_tree
from .correctness import assert_delta_tree, check_delta_tree
from .query import (
    Match,
    change_counts_by_path,
    changed_nodes,
    changed_subtree_roots,
    select,
)
from .render_html import render_html
from .render_latex import render_latex
from .render_text import change_summary, render_text
from .rules import ALL_EVENTS, Firing, Rule, RuleEngine

__all__ = [
    "ALL_EVENTS",
    "Annotation",
    "Del",
    "DeltaNode",
    "DeltaTree",
    "Firing",
    "Idn",
    "Ins",
    "Match",
    "Mov",
    "Mrk",
    "Rule",
    "RuleEngine",
    "Upd",
    "assert_delta_tree",
    "build_delta_tree",
    "check_delta_tree",
    "change_counts_by_path",
    "change_summary",
    "changed_nodes",
    "changed_subtree_roots",
    "render_html",
    "render_latex",
    "render_text",
    "select",
]
