"""Construction of delta trees from diff results (paper Section 6).

A delta tree "overlays" an edit script onto the data: it mirrors the new
tree ``T2`` with ``IDN``/``UPD``/``INS``/``MOV`` annotations, and re-inserts
tombstones for deleted subtrees (``DEL``) and move sources (``MRK``) at
their old positions, so a single preorder walk can render the complete
marked-up document (the way LaDiff produces its output).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Set

from ..core.node import Node
from ..core.tree import Tree
from ..editscript.generator import EditScriptResult
from .annotations import Annotation, Del, Idn, Ins, Mov, Mrk, Upd


class DeltaNode:
    """One node of a delta tree: label, value, and one annotation."""

    __slots__ = ("label", "value", "annotation", "children", "t1_id", "t2_id")

    def __init__(
        self,
        label: str,
        value: Any,
        annotation: Annotation,
        t1_id: Any = None,
        t2_id: Any = None,
    ) -> None:
        self.label = label
        self.value = value
        self.annotation = annotation
        self.children: List[DeltaNode] = []
        self.t1_id = t1_id  # id in the old tree (None for inserts)
        self.t2_id = t2_id  # id in the new tree (None for DEL/MRK)

    @property
    def tag(self) -> str:
        return self.annotation.tag()

    def preorder(self) -> Iterator["DeltaNode"]:
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeltaNode({self.label!r}, {self.tag})"


class DeltaTree:
    """An annotated overlay of the new tree, plus tombstones."""

    def __init__(self, root: DeltaNode) -> None:
        self.root = root

    def preorder(self) -> Iterator[DeltaNode]:
        return self.root.preorder()

    def nodes_with_tag(self, tag: str) -> List[DeltaNode]:
        return [node for node in self.preorder() if node.tag == tag]

    def counts(self) -> Dict[str, int]:
        """Annotation tag -> number of delta nodes carrying it."""
        out: Dict[str, int] = {}
        for node in self.preorder():
            out[node.tag] = out.get(node.tag, 0) + 1
        return out

    def markers(self) -> Dict[str, DeltaNode]:
        """Marker key -> MRK node."""
        return {
            node.annotation.marker: node
            for node in self.preorder()
            if isinstance(node.annotation, Mrk)
        }

    def moves(self) -> Dict[str, DeltaNode]:
        """Marker key -> MOV node (destination of the move)."""
        return {
            node.annotation.marker: node
            for node in self.preorder()
            if isinstance(node.annotation, Mov)
        }


def build_delta_tree(
    t1: Tree,
    t2: Tree,
    result: EditScriptResult,
) -> DeltaTree:
    """Build the delta tree for ``t1 -> t2`` from an edit-script result.

    The result's total matching identifies inserted T2 nodes (partnered
    with generator-created identifiers), updated values, and moved nodes;
    unmatched T1 nodes become ``DEL`` tombstones and every moved node gets
    an ``MRK`` tombstone at its old position.
    """
    mprime = result.matching
    script = result.script
    t1_ids = set(t1.node_ids())

    inserted_t2: Set[Any] = set()
    for op in script.inserts:
        partner = mprime.partner1(op.node_id)
        if partner is not None:
            inserted_t2.add(partner)
    updated_old_value: Dict[Any, Any] = {}
    for op in script.updates:
        # First update wins: it carries the original (pre-diff) value.
        updated_old_value.setdefault(op.node_id, op.old_value)
    moved_work_ids: List[Any] = []
    seen_moves: Set[Any] = set()
    for op in script.moves:
        if op.node_id in t1_ids and op.node_id not in seen_moves:
            seen_moves.add(op.node_id)
            moved_work_ids.append(op.node_id)

    # ------------------------------------------------------------------
    # Pass 1: mirror T2 with annotations.
    # ------------------------------------------------------------------
    marker_keys: Dict[Any, str] = {
        work_id: f"M{i}" for i, work_id in enumerate(moved_work_ids, start=1)
    }
    delta_of_t2: Dict[Any, DeltaNode] = {}

    def build_mirror(x: Node) -> DeltaNode:
        work_id = mprime.partner2(x.id)
        t1_id = work_id if work_id in t1_ids else None
        if x.id in inserted_t2:
            annotation: Annotation = Ins()
        elif work_id in seen_moves:
            annotation = Mov(
                marker=marker_keys[work_id],
                updated=work_id in updated_old_value,
                old_value=updated_old_value.get(work_id),
            )
        elif work_id in updated_old_value:
            annotation = Upd(old_value=updated_old_value[work_id])
        else:
            annotation = Idn()
        node = DeltaNode(x.label, x.value, annotation, t1_id=t1_id, t2_id=x.id)
        delta_of_t2[x.id] = node
        for child in x.children:
            node.children.append(build_mirror(child))
        return node

    root = build_mirror(t2.root)

    # ------------------------------------------------------------------
    # Pass 2: tombstones (DEL subtrees and MRK move sources) at their old
    # positions, anchored to the nearest matched left sibling.
    # ------------------------------------------------------------------
    deleted_t1: Set[Any] = {
        node.id for node in t1.preorder() if not mprime.has1(node.id)
    }
    #: T1 id -> its DEL delta node (registered for every deleted node so
    #: markers under deleted parents can find their target).
    delta_for_deleted: Dict[Any, DeltaNode] = {}

    def build_deleted_subtree(node: Node) -> DeltaNode:
        delta = DeltaNode(node.label, node.value, Del(), t1_id=node.id)
        delta_for_deleted[node.id] = delta
        for child in node.children:
            if child.id in deleted_t1:
                delta.children.append(build_deleted_subtree(child))
            # Matched descendants of a deleted node were moved away; they
            # appear in the mirror (with their own MRK markers) rather than
            # inside the DEL subtree.
        return delta

    def target_delta_for(node: Node) -> Optional[DeltaNode]:
        """Delta node under which *node*'s tombstone children belong."""
        if node.id in delta_for_deleted:
            return delta_for_deleted[node.id]
        partner = mprime.partner1(node.id)
        if partner is not None:
            return delta_of_t2.get(partner)
        return None

    def place_tombstones(parent: Node, target: DeltaNode) -> None:
        parent_deleted = parent.id in deleted_t1
        anchor_index = -1  # index in target.children after which to insert
        for child in parent.children:
            if child.id in deleted_t1:
                if parent_deleted:
                    # Already embedded by build_deleted_subtree; just track
                    # its position as the running anchor.
                    embedded = delta_for_deleted[child.id]
                    anchor_index = target.children.index(embedded)
                    continue
                tombstone = build_deleted_subtree(child)
            elif child.id in seen_moves:
                tombstone = DeltaNode(
                    child.label,
                    child.value,
                    Mrk(marker=marker_keys[child.id]),
                    t1_id=child.id,
                )
            else:
                # Stationary matched child: advance the anchor when its
                # mirror node lives under this target.
                partner = mprime.partner1(child.id)
                delta_child = delta_of_t2.get(partner)
                if delta_child is not None and delta_child in target.children:
                    anchor_index = target.children.index(delta_child)
                continue
            anchor_index += 1
            target.children.insert(anchor_index, tombstone)

    # A deleted T1 root has no old parent to anchor under; by convention its
    # tombstone becomes the last child of the delta root.
    if t1.root is not None and t1.root.id in deleted_t1:
        root.children.append(build_deleted_subtree(t1.root))

    # Likewise a moved T1 root (possible when the roots were unmatched and
    # the generator dummy-wrapped both trees): its MRK tombstone has no old
    # parent to anchor under, so it too lands at the end of the root.
    if t1.root is not None and t1.root.id in seen_moves:
        root.children.append(
            DeltaNode(
                t1.root.label,
                t1.root.value,
                Mrk(marker=marker_keys[t1.root.id]),
                t1_id=t1.root.id,
            )
        )

    # T1 preorder guarantees a parent's tombstone (if any) is created before
    # its children need it as a target.
    for node in t1.preorder():
        if not any(
            child.id in deleted_t1 or child.id in seen_moves
            for child in node.children
        ):
            continue
        target = target_delta_for(node)
        if target is None:
            # The old parent has no trace in the delta tree (it was itself
            # swallowed by an unrepresentable path); fall back to the root
            # so no change is silently dropped.
            target = root
        place_tombstones(node, target)

    return DeltaTree(root)
