r"""LaTeX mark-up of delta trees following the paper's Table 2 conventions.

==============  =============  ============  ============  =====================
Textual unit    Insert         Delete        Update        Move
==============  =============  ============  ============  =====================
Sentence        bold font      small font    italic font   footnote + label
Paragraph       marginal note  marg. note    marg. note    marginal note + label
Item            marginal note  marg. note    marg. note    marginal note + label
Subsection      ``(ins)`` / ``(del)`` / ``(upd)`` / ``(mov)`` in the heading
Section         ``(ins)`` / ``(del)`` / ``(upd)`` / ``(mov)`` in the heading
==============  =============  ============  ============  =====================

Moved units are shown twice: a small-font, labeled copy at the old position
(the tombstone) and the real content at the new position referencing that
label — e.g. a sentence gains ``\footnote{Moved from S1}`` while the
tombstone reads ``S1:[...]``, exactly like Figure 16 of the paper.
"""

from __future__ import annotations

from typing import Dict, List

from .annotations import Del, Ins, Mov, Mrk, Upd
from .builder import DeltaNode, DeltaTree

#: Labels treated as sentence-level (font changes).
SENTENCE_LABELS = {"S"}
#: Labels treated as block-level (marginal notes).
BLOCK_LABELS = {"P", "item"}
#: Labels annotated inside their headings.
HEADING_LABELS = {"Sec": "section", "SubSec": "subsection"}

LATEX_PREAMBLE = "\n".join(
    [
        r"\documentclass{article}",
        r"\setlength{\marginparwidth}{1.2in}",
        r"\begin{document}",
        "",
    ]
)
LATEX_POSTAMBLE = "\n" + r"\end{document}" + "\n"


def render_latex(delta: DeltaTree, full_document: bool = False) -> str:
    """Render a delta tree as marked-up LaTeX.

    With ``full_document=True`` the output is a compilable standalone
    document; otherwise only the body is returned.
    """
    renderer = _LatexRenderer(delta)
    body = renderer.render()
    if full_document:
        return LATEX_PREAMBLE + body + LATEX_POSTAMBLE
    return body


class _LatexRenderer:
    def __init__(self, delta: DeltaTree) -> None:
        self.delta = delta
        self.display_keys = _assign_display_keys(delta)
        self.lines: List[str] = []

    # ------------------------------------------------------------------
    def render(self) -> str:
        self._render_children(self.delta.root, deleted=False)
        text = "\n".join(self.lines)
        # Collapse runs of blank lines introduced by block handling.
        while "\n\n\n" in text:
            text = text.replace("\n\n\n", "\n\n")
        return text.strip("\n") + "\n"

    def _render_children(self, node: DeltaNode, deleted: bool) -> None:
        for child in node.children:
            self._render_node(child, deleted)

    # ------------------------------------------------------------------
    def _render_node(self, node: DeltaNode, deleted: bool) -> None:
        label = node.label
        if label in HEADING_LABELS:
            self._render_heading(node, deleted)
        elif label in BLOCK_LABELS:
            self._render_block(node, deleted)
        elif label == "list":
            self._render_list(node, deleted)
        elif label in SENTENCE_LABELS:
            # A bare sentence directly under a section/document.
            self.lines.append(self._sentence_markup(node, deleted))
            self.lines.append("")
        else:
            # Unknown container (e.g. the document root in nested calls):
            # recurse transparently.
            self._render_children(node, deleted)

    # ------------------------------------------------------------------
    def _render_heading(self, node: DeltaNode, deleted: bool) -> None:
        command = HEADING_LABELS[node.label]
        title = _escape(str(node.value)) if node.value is not None else ""
        note = self._heading_note(node, deleted)
        heading = f"\\{command}{{{note}{title}}}"
        self.lines.append(heading)
        self.lines.append("")
        self._render_children(node, deleted or isinstance(node.annotation, Del))

    def _heading_note(self, node: DeltaNode, deleted: bool) -> str:
        annotation = node.annotation
        if deleted or isinstance(annotation, Del):
            return "(del) "
        if isinstance(annotation, Ins):
            return "(ins) "
        if isinstance(annotation, Upd):
            return "(upd) "
        if isinstance(annotation, Mov):
            return "(mov) "
        if isinstance(annotation, Mrk):
            return "(mov) "
        return ""

    # ------------------------------------------------------------------
    def _render_block(self, node: DeltaNode, deleted: bool) -> None:
        annotation = node.annotation
        noun = "para" if node.label == "P" else "item"
        prefix = "\\item " if node.label == "item" else ""
        if isinstance(annotation, Mrk):
            key = self.display_keys[annotation.marker]
            self.lines.append(f"{prefix}{key}:[{{\\small moved {noun}}}]")
            self.lines.append("")
            return
        margin = ""
        if deleted or isinstance(annotation, Del):
            margin = f"\\marginpar{{Deleted {noun}}}"
            deleted = True
        elif isinstance(annotation, Ins):
            margin = f"\\marginpar{{Inserted {noun}}}"
        elif isinstance(annotation, Upd):
            margin = f"\\marginpar{{Updated {noun}}}"
        elif isinstance(annotation, Mov):
            key = self.display_keys[annotation.marker]
            margin = f"\\marginpar{{Moved from {key}}}"
        sentences = [
            self._sentence_markup(child, deleted)
            for child in node.children
            if child.label in SENTENCE_LABELS
        ]
        body = " ".join(s for s in sentences if s)
        self.lines.append((prefix + margin + body).strip())
        self.lines.append("")
        # Non-sentence children (nested lists inside items, ...) follow.
        for child in node.children:
            if child.label not in SENTENCE_LABELS:
                self._render_node(child, deleted)

    def _render_list(self, node: DeltaNode, deleted: bool) -> None:
        self.lines.append(r"\begin{itemize}")
        self._render_children(node, deleted or isinstance(node.annotation, Del))
        self.lines.append(r"\end{itemize}")
        self.lines.append("")

    # ------------------------------------------------------------------
    def _sentence_markup(self, node: DeltaNode, deleted: bool) -> str:
        text = _escape(str(node.value)) if node.value is not None else ""
        annotation = node.annotation
        if isinstance(annotation, Mrk):
            key = self.display_keys[annotation.marker]
            return f"{key}:[{{\\small {text}}}]"
        if deleted or isinstance(annotation, Del):
            return f"{{\\small {text}}}"
        if isinstance(annotation, Mov):
            key = self.display_keys[annotation.marker]
            if annotation.updated:
                text = f"\\textit{{{text}}}"
            return f"{text}\\footnote{{Moved from {key}}}"
        if isinstance(annotation, Upd):
            return f"\\textit{{{text}}}"
        if isinstance(annotation, Ins):
            return f"\\textbf{{{text}}}"
        return text


def _assign_display_keys(delta: DeltaTree) -> Dict[str, str]:
    """Re-key markers per textual unit: S1, S2, ... / P1, ... / L1, ...

    The builder assigns opaque keys (M1, M2, ...); the paper's output labels
    moved sentences S1.. and moved paragraphs P1.., numbered in document
    order of their tombstones.
    """
    counters: Dict[str, int] = {}
    keys: Dict[str, str] = {}
    for node in delta.preorder():
        if not isinstance(node.annotation, Mrk):
            continue
        if node.label in SENTENCE_LABELS:
            family = "S"
        elif node.label == "P":
            family = "P"
        elif node.label == "item":
            family = "I"
        else:
            family = "X"
        counters[family] = counters.get(family, 0) + 1
        keys[node.annotation.marker] = f"{family}{counters[family]}"
    # Moves whose tombstone was dropped (vanished parent) keep opaque keys.
    for node in delta.preorder():
        if isinstance(node.annotation, Mov):
            keys.setdefault(node.annotation.marker, node.annotation.marker)
    return keys


def _escape(text: str) -> str:
    """Escape LaTeX special characters in plain text."""
    # Stash backslashes first so later escapes don't mangle them, and
    # restore them last so their replacement's braces survive.
    text = text.replace("\\", "\x00")
    for old, new in [
        ("&", r"\&"),
        ("%", r"\%"),
        ("$", r"\$"),
        ("#", r"\#"),
        ("_", r"\_"),
        ("{", r"\{"),
        ("}", r"\}"),
        ("~", r"\textasciitilde{}"),
        ("^", r"\textasciicircum{}"),
    ]:
        text = text.replace(old, new)
    return text.replace("\x00", r"\textbackslash{}")
