"""Plain-text rendering of delta trees.

One node per line, indented by depth, with the annotation tag in brackets.
Intended for terminals, logs, and tests; the LaTeX and HTML renderers follow
the paper's Table 2 conventions instead.
"""

from __future__ import annotations

from typing import List

from .annotations import Mov, Mrk, Upd
from .builder import DeltaNode, DeltaTree


def render_text(delta: DeltaTree, show_values: bool = True) -> str:
    """Render the delta tree as indented annotated text."""
    lines: List[str] = []

    def render(node: DeltaNode, depth: int) -> None:
        lines.append("  " * depth + _describe(node, show_values))
        for child in node.children:
            render(child, depth + 1)

    render(delta.root, 0)
    return "\n".join(lines)


def _describe(node: DeltaNode, show_values: bool) -> str:
    annotation = node.annotation
    parts = [node.label]
    if isinstance(annotation, Upd):
        parts.append(f"[UPD {_short(annotation.old_value)} -> {_short(node.value)}]")
    elif isinstance(annotation, Mov):
        tag = "MOV+UPD" if annotation.updated else "MOV"
        parts.append(f"[{tag} from {annotation.marker}]")
        if show_values and node.value is not None:
            parts.append(_short(node.value))
    elif isinstance(annotation, Mrk):
        parts.append(f"[MRK {annotation.marker}]")
    elif annotation.tag() != "IDN":
        parts.append(f"[{annotation.tag()}]")
    if (
        show_values
        and node.value is not None
        and not isinstance(annotation, (Upd, Mov))
    ):
        parts.append(_short(node.value))
    return " ".join(parts)


def _short(value: object, limit: int = 48) -> str:
    text = str(value)
    if len(text) > limit:
        text = text[: limit - 3] + "..."
    return repr(text)


def change_summary(delta: DeltaTree) -> str:
    """One-line human summary: '2 inserted, 1 deleted, 1 moved, 3 updated'."""
    counts = delta.counts()
    fragments = []
    for tag, noun in (
        ("INS", "inserted"),
        ("DEL", "deleted"),
        ("MOV", "moved"),
        ("UPD", "updated"),
    ):
        if counts.get(tag):
            fragments.append(f"{counts[tag]} {noun}")
    return ", ".join(fragments) if fragments else "no changes"
