"""HTML rendering of delta trees.

The paper's introduction motivates web-page change tracking: "a paragraph
that has moved could be marked with a tombstone in its old position and be
highlighted in its new position." This renderer produces that view:

* inserted text  — ``<ins>`` (typically rendered underlined/green),
* deleted text   — ``<del>`` (struck through),
* updated text   — ``<em class="upd">``,
* moved text     — highlighted ``<span class="mov">`` with an anchor link
  back to a ``<span class="mrk">`` tombstone at the old position.
"""

from __future__ import annotations

import html
from typing import List

from .annotations import Del, Ins, Mov, Mrk, Upd
from .builder import DeltaNode, DeltaTree

HTML_STYLE = """\
<style>
ins { background: #dcfce7; text-decoration: none; }
del { background: #fee2e2; }
em.upd { background: #fef9c3; }
span.mov { background: #dbeafe; }
span.mrk { color: #9ca3af; font-size: smaller; }
span.margin { float: right; color: #6b7280; font-size: smaller; }
</style>
"""

_HEADING_TAGS = {"D": None, "Sec": "h2", "SubSec": "h3"}


def render_html(delta: DeltaTree, full_document: bool = False) -> str:
    """Render a delta tree as annotated HTML (body only by default)."""
    lines: List[str] = []
    _render_children(delta.root, lines, deleted=False)
    body = "\n".join(lines) + "\n"
    if full_document:
        return (
            "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n"
            + HTML_STYLE
            + "</head><body>\n"
            + body
            + "</body></html>\n"
        )
    return body


def _render_children(node: DeltaNode, lines: List[str], deleted: bool) -> None:
    for child in node.children:
        _render_node(child, lines, deleted)


def _render_node(node: DeltaNode, lines: List[str], deleted: bool) -> None:
    label = node.label
    deleted = deleted or isinstance(node.annotation, Del)
    if label in ("Sec", "SubSec"):
        tag = _HEADING_TAGS[label]
        note = _note(node, deleted)
        title = html.escape(str(node.value)) if node.value is not None else ""
        lines.append(f"<{tag}>{note}{title}</{tag}>")
        _render_children(node, lines, deleted)
    elif label == "P":
        margin = _margin(node, deleted)
        sentences = " ".join(
            _sentence(child, deleted)
            for child in node.children
            if child.label == "S"
        )
        lines.append(f"<p>{margin}{sentences}</p>")
        for child in node.children:
            if child.label != "S":
                _render_node(child, lines, deleted)
    elif label == "list":
        lines.append("<ul>")
        _render_children(node, lines, deleted)
        lines.append("</ul>")
    elif label == "item":
        margin = _margin(node, deleted)
        sentences = " ".join(
            _sentence(child, deleted)
            for child in node.children
            if child.label == "S"
        )
        lines.append(f"<li>{margin}{sentences}</li>")
    elif label == "S":
        lines.append(f"<p>{_sentence(node, deleted)}</p>")
    else:
        _render_children(node, lines, deleted)


def _note(node: DeltaNode, deleted: bool) -> str:
    annotation = node.annotation
    if deleted:
        return "(del) "
    if isinstance(annotation, Ins):
        return "(ins) "
    if isinstance(annotation, Upd):
        return "(upd) "
    if isinstance(annotation, (Mov, Mrk)):
        return "(mov) "
    return ""


def _margin(node: DeltaNode, deleted: bool) -> str:
    annotation = node.annotation
    noun = "paragraph" if node.label == "P" else "item"
    if deleted:
        return f'<span class="margin">deleted {noun}</span>'
    if isinstance(annotation, Ins):
        return f'<span class="margin">inserted {noun}</span>'
    if isinstance(annotation, Upd):
        return f'<span class="margin">updated {noun}</span>'
    if isinstance(annotation, Mov):
        return (
            f'<span class="margin">moved {noun} '
            f'(from <a href="#{annotation.marker}">here</a>)</span>'
        )
    if isinstance(annotation, Mrk):
        return f'<span class="margin" id="{annotation.marker}">moved away</span>'
    return ""


def _sentence(node: DeltaNode, deleted: bool) -> str:
    text = html.escape(str(node.value)) if node.value is not None else ""
    annotation = node.annotation
    if isinstance(annotation, Mrk):
        return (
            f'<span class="mrk" id="{annotation.marker}">[moved: {text}]</span>'
        )
    if deleted:
        return f"<del>{text}</del>"
    if isinstance(annotation, Mov):
        inner = f'<em class="upd">{text}</em>' if annotation.updated else text
        return (
            f'<span class="mov">{inner}'
            f'<sup><a href="#{annotation.marker}">moved</a></sup></span>'
        )
    if isinstance(annotation, Upd):
        return f'<em class="upd">{text}</em>'
    if isinstance(annotation, Ins):
        return f"<ins>{text}</ins>"
    return text
