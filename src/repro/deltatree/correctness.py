"""Delta-tree correctness checking (paper §6).

The paper defines a *correct* delta tree as one whose annotations can be
read off (in some order) as an edit script that transforms ``T1`` to
``T2``. This module provides the executable version of that definition,
verifying against both endpoints:

* the **mirror** (every non-tombstone node, in order) is isomorphic to
  ``T2``;
* annotation bookkeeping is internally consistent (MOV/MRK keys pair up
  bijectively, UPD/MOV old values differ from the new ones, DEL subtrees
  contain only DEL nodes);
* the **old-tree reading** of the delta — IDN/UPD/DEL/MRK nodes with
  tombstones restored and updates reverted — reproduces ``T1``'s content
  *as a multiset of (label, value) leaves* (positions of tombstones are
  heuristic; see the builder).

``check_delta_tree`` returns a list of problem strings (empty = correct);
``assert_delta_tree`` raises on the first problem.
"""

from __future__ import annotations

from typing import Counter as CounterType, List, Optional
from collections import Counter

from ..core.node import Node
from ..core.tree import Tree
from .annotations import Del, Ins, Mov, Mrk, Upd
from .builder import DeltaNode, DeltaTree


def check_delta_tree(
    delta: DeltaTree,
    t1: Optional[Tree] = None,
    t2: Optional[Tree] = None,
) -> List[str]:
    """Validate *delta*; optionally against its source trees."""
    problems: List[str] = []
    _check_internal_consistency(delta, problems)
    if t2 is not None:
        _check_mirror_matches_t2(delta, t2, problems)
    if t1 is not None:
        _check_old_reading_matches_t1(delta, t1, problems)
    return problems


def assert_delta_tree(
    delta: DeltaTree,
    t1: Optional[Tree] = None,
    t2: Optional[Tree] = None,
) -> None:
    """Raise ``AssertionError`` with the first problem found, if any."""
    problems = check_delta_tree(delta, t1, t2)
    if problems:
        raise AssertionError("; ".join(problems))


# ---------------------------------------------------------------------------
def _check_internal_consistency(delta: DeltaTree, problems: List[str]) -> None:
    movs = delta.moves()
    mrks = delta.markers()
    if set(movs) != set(mrks):
        missing = set(movs) ^ set(mrks)
        problems.append(f"unpaired move markers: {sorted(missing)}")
    for node in delta.preorder():
        annotation = node.annotation
        if isinstance(annotation, Upd) and annotation.old_value == node.value:
            problems.append(
                f"UPD on {node.label} changes nothing ({node.value!r})"
            )
        if isinstance(annotation, Del):
            for child in node.children:
                if not isinstance(child.annotation, (Del, Mrk)):
                    problems.append(
                        f"DEL subtree at {node.label} contains live child "
                        f"{child.label} [{child.tag}]"
                    )
        if isinstance(annotation, Ins) and node.t1_id is not None:
            problems.append(
                f"INS node {node.label} claims an old-tree identity"
            )
        if isinstance(annotation, (Del, Mrk)) and node.t2_id is not None:
            problems.append(
                f"tombstone {node.label} [{node.tag}] claims a new-tree identity"
            )


def _check_mirror_matches_t2(
    delta: DeltaTree, t2: Tree, problems: List[str]
) -> None:
    def mirror(node: DeltaNode):
        return [
            child
            for child in node.children
            if not isinstance(child.annotation, (Del, Mrk))
        ]

    def compare(delta_node: DeltaNode, t2_node: Node, path: str) -> bool:
        if delta_node.label != t2_node.label:
            problems.append(
                f"mirror label mismatch at {path}: "
                f"{delta_node.label!r} vs {t2_node.label!r}"
            )
            return False
        if delta_node.value != t2_node.value:
            problems.append(
                f"mirror value mismatch at {path}: "
                f"{delta_node.value!r} vs {t2_node.value!r}"
            )
            return False
        live = mirror(delta_node)
        if len(live) != len(t2_node.children):
            problems.append(
                f"mirror child count mismatch at {path}: "
                f"{len(live)} vs {len(t2_node.children)}"
            )
            return False
        return all(
            compare(a, b, f"{path}/{a.label}")
            for a, b in zip(live, t2_node.children)
        )

    if t2.root is None:
        problems.append("t2 is empty but delta has a root")
        return
    compare(delta.root, t2.root, delta.root.label)


def _check_old_reading_matches_t1(
    delta: DeltaTree, t1: Tree, problems: List[str]
) -> None:
    """The delta must account for every old leaf exactly once.

    Old leaves surface as: IDN leaves (unchanged), UPD leaves (old value),
    DEL leaves (tombstones), MRK leaves (move sources), and MOV+update
    leaves whose pre-move value is recorded on the annotation. Leaf
    *positions* of tombstones are presentation-level, so the check compares
    multisets of (label, value).
    """
    expected: CounterType = Counter(
        (leaf.label, leaf.value) for leaf in t1.leaves()
    )
    actual: CounterType = Counter()
    for node in delta.preorder():
        if node.t1_id is None or node.t1_id not in t1:
            continue
        if not t1.get(node.t1_id).is_leaf:
            continue  # old-tree internals carry no leaf content
        annotation = node.annotation
        if isinstance(annotation, Upd):
            actual[(node.label, annotation.old_value)] += 1
        elif isinstance(annotation, Mov):
            # the paired MRK (same t1 node) carries the old value; counting
            # here too would double it
            continue
        else:  # Idn, Del, Mrk all show the old value directly
            actual[(node.label, node.value)] += 1
    if expected != actual:
        missing = expected - actual
        extra = actual - expected
        if missing:
            problems.append(f"old leaves unaccounted for: {_preview(missing)}")
        if extra:
            problems.append(f"phantom old leaves: {_preview(extra)}")


def _preview(counter: CounterType, limit: int = 3) -> str:
    items = list(counter.items())[:limit]
    return ", ".join(f"{key!r} x{count}" for key, count in items)
