"""Querying delta trees (paper §9 future work).

"Designing and implementing query, browsing, and active rule languages for
hierarchical data based on our edit scripts and delta trees [WU95]." This
module provides the query side: path-pattern selection over delta trees
with annotation and value filters, plus aggregate views of "what changed
where".

Path patterns are label sequences separated by ``/``:

* a bare label matches that label (``Sec/P/S``);
* ``*`` matches exactly one node of any label;
* ``**`` matches any (possibly empty) sequence of nodes.

Patterns are anchored at the delta-tree root; a leading ``**/`` makes a
pattern match at any depth (``**/S`` = every sentence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .builder import DeltaNode, DeltaTree

#: Optional user predicate applied after structural filters.
NodePredicate = Callable[[DeltaNode], bool]


@dataclass(frozen=True)
class Match:
    """One query hit: the node plus its label path from the root."""

    node: DeltaNode
    path: Tuple[str, ...]

    @property
    def pretty_path(self) -> str:
        return "/".join(self.path)


def select(
    delta: DeltaTree,
    path: Optional[str] = None,
    tags: Optional[Sequence[str]] = None,
    label: Optional[str] = None,
    value_contains: Optional[str] = None,
    predicate: Optional[NodePredicate] = None,
) -> List[Match]:
    """Select delta nodes by path pattern, annotation tags, and filters.

    Parameters
    ----------
    path:
        Path pattern (see module docstring); ``None`` matches everything.
    tags:
        Keep nodes whose annotation tag is in this set (e.g. ``["INS",
        "UPD"]``); ``None`` keeps all tags.
    label:
        Keep nodes with this label.
    value_contains:
        Keep nodes whose (stringified) value contains this substring.
    predicate:
        Arbitrary final filter.
    """
    pattern = _parse_pattern(path) if path is not None else None
    tag_set = set(tags) if tags is not None else None
    hits: List[Match] = []
    for node, node_path in _walk(delta.root, ()):
        if pattern is not None and not _match_pattern(pattern, node_path):
            continue
        if tag_set is not None and node.tag not in tag_set:
            continue
        if label is not None and node.label != label:
            continue
        if value_contains is not None:
            if node.value is None or value_contains not in str(node.value):
                continue
        if predicate is not None and not predicate(node):
            continue
        hits.append(Match(node=node, path=node_path))
    return hits


def changed_nodes(delta: DeltaTree) -> List[Match]:
    """Every node that is not plain IDN, with its path."""
    return select(delta, tags=["INS", "DEL", "UPD", "MOV", "MRK"])


def changed_subtree_roots(delta: DeltaTree) -> List[DeltaNode]:
    """The *maximal* changed nodes: changed nodes with no changed ancestor.

    Nested changes collapse into their outermost carrier (the sentences of
    a deleted paragraph are covered by the paragraph's ``DEL``), so the
    result is the minimal set of anchors a browser needs to jump through to
    see every change; document order is preserved.
    """
    roots: List[DeltaNode] = []

    def visit(node: DeltaNode) -> None:
        if node.tag != "IDN":
            roots.append(node)
            return  # everything below is covered by this change
        for child in node.children:
            visit(child)

    visit(delta.root)
    return roots


def change_counts_by_path(
    delta: DeltaTree, depth: int = 1
) -> Dict[str, Dict[str, int]]:
    """Aggregate change counts per ancestor path prefix of the given depth.

    ``depth=1`` groups by top-level container (e.g. per section): the
    "which sections changed" browsing view.
    """
    counts: Dict[str, Dict[str, int]] = {}
    for node, path in _walk(delta.root, ()):
        if node.tag == "IDN":
            continue
        prefix = "/".join(path[: depth + 1])  # include the root label
        bucket = counts.setdefault(prefix, {})
        bucket[node.tag] = bucket.get(node.tag, 0) + 1
    return counts


# ---------------------------------------------------------------------------
# Pattern machinery
# ---------------------------------------------------------------------------
def _walk(
    node: DeltaNode, prefix: Tuple[str, ...]
) -> Iterator[Tuple[DeltaNode, Tuple[str, ...]]]:
    path = prefix + (node.label,)
    yield node, path
    for child in node.children:
        yield from _walk(child, path)


def _parse_pattern(pattern: str) -> List[str]:
    segments = [seg for seg in pattern.split("/") if seg]
    if not segments:
        raise ValueError(f"empty path pattern: {pattern!r}")
    return segments


def _match_pattern(pattern: List[str], path: Tuple[str, ...]) -> bool:
    """Glob-style matching of a label path against a pattern."""
    return _match_from(pattern, 0, path, 0)


def _match_from(
    pattern: List[str], p: int, path: Tuple[str, ...], t: int
) -> bool:
    while p < len(pattern):
        segment = pattern[p]
        if segment == "**":
            if p == len(pattern) - 1:
                return True  # trailing ** matches the rest
            # try to match the remaining pattern at every suffix
            for skip in range(t, len(path) + 1):
                if _match_from(pattern, p + 1, path, skip):
                    return True
            return False
        if t >= len(path):
            return False
        if segment != "*" and segment != path[t]:
            return False
        p += 1
        t += 1
    return t == len(path)
