"""Active rules over deltas (paper §9 future work, [WC95]).

Active database systems react to changes with event-condition-action rules.
The paper plans "active rule languages for hierarchical data based on our
edit scripts and delta trees"; this module provides that layer: rules whose
*event* is an annotation kind (insert/delete/update/move), whose *condition*
is an arbitrary predicate over the delta node (with its path available), and
whose *action* runs once per triggering node.

Example::

    engine = RuleEngine()
    engine.add(Rule(
        name="alert-on-deleted-section",
        events=("DEL",),
        condition=lambda m: m.node.label == "Sec",
        action=lambda m: alerts.append(m.node.value),
    ))
    firings = engine.run(delta_tree)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from .builder import DeltaTree
from .query import Match, select

#: Events a rule can subscribe to (delta-tree annotation tags).
ALL_EVENTS = ("INS", "DEL", "UPD", "MOV", "MRK")

Condition = Callable[[Match], bool]
Action = Callable[[Match], None]


@dataclass
class Rule:
    """An event-condition-action rule over delta trees.

    Attributes
    ----------
    name:
        Identifier used in firing records and error messages.
    events:
        Annotation tags that trigger the rule (subset of
        :data:`ALL_EVENTS`).
    condition:
        Optional predicate over the :class:`~repro.deltatree.query.Match`;
        ``None`` means "always".
    action:
        Callback invoked once per triggering node; ``None`` makes the rule
        detection-only (it still records firings).
    path:
        Optional path pattern restricting where in the tree the rule
        applies (same syntax as :func:`repro.deltatree.query.select`).
    """

    name: str
    events: Sequence[str] = ALL_EVENTS
    condition: Optional[Condition] = None
    action: Optional[Action] = None
    path: Optional[str] = None

    def __post_init__(self) -> None:
        bad = set(self.events) - set(ALL_EVENTS)
        if bad:
            raise ValueError(
                f"rule {self.name!r} subscribes to unknown events {sorted(bad)}; "
                f"valid events are {ALL_EVENTS}"
            )


@dataclass(frozen=True)
class Firing:
    """A record of one rule triggering on one delta node."""

    rule: str
    event: str
    match: Match

    @property
    def path(self) -> str:
        return self.match.pretty_path


class RuleEngine:
    """Evaluates a set of rules against delta trees."""

    def __init__(self) -> None:
        self._rules: List[Rule] = []

    def add(self, rule: Rule) -> "RuleEngine":
        """Register a rule; returns self for chaining."""
        if any(existing.name == rule.name for existing in self._rules):
            raise ValueError(f"duplicate rule name: {rule.name!r}")
        self._rules.append(rule)
        return self

    def remove(self, name: str) -> None:
        before = len(self._rules)
        self._rules = [rule for rule in self._rules if rule.name != name]
        if len(self._rules) == before:
            raise KeyError(name)

    @property
    def rules(self) -> Tuple[Rule, ...]:
        return tuple(self._rules)

    def run(self, delta: DeltaTree) -> List[Firing]:
        """Evaluate every rule against *delta*; fire actions; return firings.

        Rules fire in registration order; within a rule, nodes trigger in
        document (preorder) order. Actions run immediately as their firing
        is recorded, so an action can rely on earlier rules having fully
        executed.
        """
        firings: List[Firing] = []
        for rule in self._rules:
            matches = select(delta, path=rule.path, tags=list(rule.events))
            for match in matches:
                if rule.condition is not None and not rule.condition(match):
                    continue
                firing = Firing(rule=rule.name, event=match.node.tag, match=match)
                firings.append(firing)
                if rule.action is not None:
                    rule.action(match)
        return firings
