"""Edit operations, scripts, cost model, and Algorithm EditScript."""

from .cost import DEFAULT_COST_MODEL, CostModel
from .generator import (
    DUMMY_ROOT_LABEL,
    EditScriptResult,
    GenerationStats,
    generate_edit_script,
)
from .invert import invert_script
from .normalize import concatenate, normalize_script
from .operations import Delete, EditOperation, Insert, Move, Update
from .script import EditScript

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "DUMMY_ROOT_LABEL",
    "Delete",
    "EditOperation",
    "EditScript",
    "EditScriptResult",
    "GenerationStats",
    "Insert",
    "Move",
    "Update",
    "concatenate",
    "generate_edit_script",
    "invert_script",
    "normalize_script",
]
