"""Edit scripts: ordered operation sequences and the replay engine.

An :class:`EditScript` is the paper's delta representation — "a sequence of
edit operations that transforms one tree into another." The class stores the
operations in application order, knows its own cost, can replay itself on a
tree (the engine used to verify that generated scripts really produce a tree
isomorphic to the target), and round-trips through plain dictionaries for
persistence.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional

from ..core.arena import ArenaOverlay, TreeArena
from ..core.errors import EditScriptError
from ..core.tree import Tree
from .cost import DEFAULT_COST_MODEL, CostModel
from .operations import Delete, EditOperation, Insert, Move, Update


class EditScript:
    """A sequence of edit operations with bookkeeping."""

    def __init__(self, operations: Optional[Iterable[EditOperation]] = None) -> None:
        self._operations: List[EditOperation] = list(operations or ())

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def append(self, op: EditOperation) -> None:
        """Append an operation (generators call this as they emit)."""
        self._operations.append(op)

    def extend(self, ops: Iterable[EditOperation]) -> None:
        for op in ops:
            self.append(op)

    def __iter__(self) -> Iterator[EditOperation]:
        return iter(self._operations)

    def __len__(self) -> int:
        return len(self._operations)

    def __getitem__(self, index):
        return self._operations[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EditScript):
            return NotImplemented
        return self._operations == other._operations

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def inserts(self) -> List[Insert]:
        return [op for op in self._operations if isinstance(op, Insert)]

    @property
    def deletes(self) -> List[Delete]:
        return [op for op in self._operations if isinstance(op, Delete)]

    @property
    def updates(self) -> List[Update]:
        return [op for op in self._operations if isinstance(op, Update)]

    @property
    def moves(self) -> List[Move]:
        return [op for op in self._operations if isinstance(op, Move)]

    def summary(self) -> Dict[str, int]:
        """Operation counts keyed by kind."""
        return {
            "insert": len(self.inserts),
            "delete": len(self.deletes),
            "update": len(self.updates),
            "move": len(self.moves),
            "total": len(self._operations),
        }

    def cost(self, model: Optional[CostModel] = None) -> float:
        """Total script cost under *model* (paper default when omitted)."""
        model = model if model is not None else DEFAULT_COST_MODEL
        return model.script_cost(self._operations)

    def is_empty(self) -> bool:
        return not self._operations

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def apply_to(self, tree: Tree, in_place: bool = False) -> Tree:
        """Apply every operation in order and return the resulting tree.

        By default the input tree is copied first; pass ``in_place=True`` to
        mutate it directly. Any structural violation (bad position, deleting
        a non-leaf, unknown node) raises :class:`EditScriptError` with the
        offending operation's index.
        """
        target = tree if in_place else tree.copy()
        for index, op in enumerate(self._operations):
            try:
                op.apply(target)
            except Exception as exc:
                raise EditScriptError(
                    f"operation {index} ({op}) failed: {exc}"
                ) from exc
        return target

    def apply_to_arena(self, arena: TreeArena) -> TreeArena:
        """Replay against an immutable arena snapshot; return a fresh one.

        Operations run through a copy-on-write :class:`ArenaOverlay` —
        *arena* is never modified, no node objects are built, and the
        edited shape is re-flattened once at the end. Validation and error
        surface match :meth:`apply_to`.
        """
        overlay = ArenaOverlay(arena)
        self.replay_on_overlay(overlay)
        return overlay.flatten()

    def replay_on_overlay(self, overlay: ArenaOverlay) -> None:
        """Run every operation against an existing overlay, in order.

        Exposed separately from :meth:`apply_to_arena` so callers that need
        to bracket the replay (e.g. the version store's dummy-root
        ``wrap_root``/``strip_root``) can share one overlay.
        """
        for index, op in enumerate(self._operations):
            try:
                op.apply_overlay(overlay)
            except Exception as exc:
                raise EditScriptError(
                    f"operation {index} ({op}) failed: {exc}"
                ) from exc

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dicts(self) -> List[Dict[str, Any]]:
        """Serialize to JSON-friendly dictionaries."""
        out: List[Dict[str, Any]] = []
        for op in self._operations:
            if isinstance(op, Insert):
                out.append(
                    {
                        "op": "insert",
                        "node_id": op.node_id,
                        "label": op.label,
                        "value": op.value,
                        "parent_id": op.parent_id,
                        "position": op.position,
                    }
                )
            elif isinstance(op, Delete):
                out.append({"op": "delete", "node_id": op.node_id})
            elif isinstance(op, Update):
                out.append(
                    {
                        "op": "update",
                        "node_id": op.node_id,
                        "value": op.value,
                        "old_value": op.old_value,
                    }
                )
            elif isinstance(op, Move):
                out.append(
                    {
                        "op": "move",
                        "node_id": op.node_id,
                        "parent_id": op.parent_id,
                        "position": op.position,
                    }
                )
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown operation: {op!r}")
        return out

    @classmethod
    def from_dicts(cls, records: Iterable[Dict[str, Any]]) -> "EditScript":
        """Inverse of :meth:`to_dicts`."""
        script = cls()
        for record in records:
            kind = record.get("op")
            if kind == "insert":
                script.append(
                    Insert(
                        record["node_id"],
                        record["label"],
                        record.get("value"),
                        record["parent_id"],
                        record["position"],
                    )
                )
            elif kind == "delete":
                script.append(Delete(record["node_id"]))
            elif kind == "update":
                script.append(
                    Update(
                        record["node_id"],
                        record.get("value"),
                        record.get("old_value"),
                    )
                )
            elif kind == "move":
                script.append(
                    Move(record["node_id"], record["parent_id"], record["position"])
                )
            else:
                raise EditScriptError(f"unknown operation kind: {kind!r}")
        return script

    def __str__(self) -> str:
        if not self._operations:
            return "<empty edit script>"
        return ", ".join(str(op) for op in self._operations)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EditScript({self.summary()})"
