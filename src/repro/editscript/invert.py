"""Edit-script inversion: compute the script that undoes another.

Given a script ``E`` with ``T1 --E--> T2``, produce ``E⁻¹`` with
``T2 --E⁻¹--> T1``. Inversion enables backward navigation through version
chains (the §1 version-management scenario: reconstruct *older*
configurations from the current one plus stored deltas) and gives the test
suite a strong round-trip invariant.

Each operation inverts locally, but positions and deleted content depend on
the tree state at application time, so inversion replays ``E`` against a
copy of ``T1`` and reads the context it needs just before each step:

=============  =======================================================
forward op     inverse op
=============  =======================================================
INS(x,..)      DEL(x)
DEL(x)         INS((x, l, v), parent, position)   (read before deleting)
UPD(x, v')     UPD(x, v)                          (old value restored)
MOV(x, p', k)  MOV(x, p, k0)                      (old parent/rank)
=============  =======================================================

The inverse operations are accumulated in reverse order.
"""

from __future__ import annotations

from typing import List

from ..core.tree import Tree
from .operations import Delete, EditOperation, Insert, Move, Update
from .script import EditScript


def invert_script(t1: Tree, script: EditScript) -> EditScript:
    """Return the inverse of *script* relative to starting tree *t1*.

    *t1* must be the tree the script applies to (it is not mutated). The
    returned script, applied to ``script.apply_to(t1)``, reproduces a tree
    isomorphic to *t1* — with identical node identifiers except that nodes
    deleted and re-inserted keep their original ids.
    """
    work = t1.copy()
    inverse: List[EditOperation] = []
    for op in script:
        if isinstance(op, Insert):
            inverse.append(Delete(op.node_id))
        elif isinstance(op, Delete):
            node = work.get(op.node_id)
            if node.parent is None:
                raise ValueError(f"cannot invert deletion of root {op.node_id!r}")
            inverse.append(
                Insert(
                    op.node_id,
                    node.label,
                    node.value,
                    node.parent.id,
                    node.child_index(),
                )
            )
        elif isinstance(op, Update):
            node = work.get(op.node_id)
            inverse.append(Update(op.node_id, node.value, old_value=op.value))
        elif isinstance(op, Move):
            node = work.get(op.node_id)
            if node.parent is None:
                raise ValueError(f"cannot invert move of root {op.node_id!r}")
            old_parent = node.parent
            # The pre-move rank is the right restore position in every case:
            # the undo move first detaches x from its post-move slot, and
            # "siblings without x" is identical before and after the forward
            # move, so re-inserting at the old rank reproduces the original
            # order for intra- and inter-parent moves alike.
            inverse.append(Move(op.node_id, old_parent.id, node.child_index()))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown operation: {op!r}")
        op.apply(work)
    inverse.reverse()
    return EditScript(inverse)
