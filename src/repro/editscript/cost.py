"""Cost model for edit scripts (Section 3.2).

The paper adopts unit costs for insert, delete, and subtree move
(``c_D(x) = c_I(x) = c_M(x) = 1``) and prices an update at
``compare(v, v')`` in ``[0, 2]``. The consistency requirement — an update
cheaper than 1 should beat a delete/insert pair — is what makes matched pairs
with similar values preferable to unmatched ones.

:class:`CostModel` generalizes this: the three structural costs are
configurable constants and the update cost delegates to a
:class:`~repro.compare.CompareRegistry`, so domains can weight operations
differently (e.g. make subtree moves expensive for near-immutable archives).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from ..compare.generic import CompareRegistry
from .operations import Delete, EditOperation, Insert, Move, Update


class CostModel:
    """Prices individual edit operations and whole scripts."""

    def __init__(
        self,
        registry: Optional[CompareRegistry] = None,
        insert_cost: float = 1.0,
        delete_cost: float = 1.0,
        move_cost: float = 1.0,
    ) -> None:
        self.registry = registry if registry is not None else CompareRegistry()
        self.insert_cost = insert_cost
        self.delete_cost = delete_cost
        self.move_cost = move_cost

    def update_cost(self, old_value: Any, new_value: Any, label: Optional[str] = None) -> float:
        """``c_U`` = compare(old, new), routed through the registry."""
        return self.registry.compare(old_value, new_value, label)

    def operation_cost(self, op: EditOperation, label: Optional[str] = None) -> float:
        """Cost of a single operation.

        For :class:`Update` the recorded ``old_value`` is used; generators
        populate it, so scripts can be re-priced without the source tree.
        """
        if isinstance(op, Insert):
            return self.insert_cost
        if isinstance(op, Delete):
            return self.delete_cost
        if isinstance(op, Move):
            return self.move_cost
        if isinstance(op, Update):
            return self.update_cost(op.old_value, op.value, label)
        raise TypeError(f"unknown edit operation: {op!r}")

    def script_cost(self, operations: Iterable[EditOperation]) -> float:
        """Total cost of a sequence of operations."""
        return sum(self.operation_cost(op) for op in operations)


#: Module-level default used when callers do not supply a model.
DEFAULT_COST_MODEL = CostModel()
