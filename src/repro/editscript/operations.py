"""The four edit operations of the paper's model (Section 3.2).

Each operation is an immutable record that knows how to apply itself to a
:class:`~repro.core.tree.Tree` and how to render itself in the paper's
notation (``INS((x, l, v), y, k)`` etc.). Operations are produced by the
generator (:mod:`repro.editscript.generator`) and consumed by the apply
engine (:mod:`repro.editscript.script`), delta-tree builder, and renderers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

from .._compat import DATACLASS_SLOTS
from ..core.arena import ArenaOverlay
from ..core.tree import Tree


@dataclass(frozen=True, **DATACLASS_SLOTS)
class Insert:
    """``INS((node_id, label, value), parent_id, position)``.

    Inserts a new leaf *node_id* with the given label and value as the
    ``position``-th child of *parent_id* (1-based).
    """

    node_id: Any
    label: str
    value: Any
    parent_id: Any
    position: int

    def apply(self, tree: Tree) -> None:
        tree.insert(self.node_id, self.label, self.value, self.parent_id, self.position)

    def apply_overlay(self, overlay: ArenaOverlay) -> None:
        overlay.insert(
            self.node_id, self.label, self.value, self.parent_id, self.position
        )

    def __str__(self) -> str:
        return (
            f"INS(({self.node_id}, {self.label}, {_fmt(self.value)}), "
            f"{self.parent_id}, {self.position})"
        )


@dataclass(frozen=True, **DATACLASS_SLOTS)
class Delete:
    """``DEL(node_id)``: remove a leaf node."""

    node_id: Any

    def apply(self, tree: Tree) -> None:
        tree.delete(self.node_id)

    def apply_overlay(self, overlay: ArenaOverlay) -> None:
        overlay.delete(self.node_id)

    def __str__(self) -> str:
        return f"DEL({self.node_id})"


@dataclass(frozen=True, **DATACLASS_SLOTS)
class Update:
    """``UPD(node_id, value)``: replace the node's value.

    ``old_value`` is not part of the paper's operation but is recorded so
    scripts are invertible and update costs can be re-derived later.
    """

    node_id: Any
    value: Any
    old_value: Any = None

    def apply(self, tree: Tree) -> None:
        tree.update(self.node_id, self.value)

    def apply_overlay(self, overlay: ArenaOverlay) -> None:
        overlay.update(self.node_id, self.value)

    def __str__(self) -> str:
        return f"UPD({self.node_id}, {_fmt(self.value)})"


@dataclass(frozen=True, **DATACLASS_SLOTS)
class Move:
    """``MOV(node_id, parent_id, position)``: re-parent a whole subtree."""

    node_id: Any
    parent_id: Any
    position: int

    def apply(self, tree: Tree) -> None:
        tree.move(self.node_id, self.parent_id, self.position)

    def apply_overlay(self, overlay: ArenaOverlay) -> None:
        overlay.move(self.node_id, self.parent_id, self.position)

    def __str__(self) -> str:
        return f"MOV({self.node_id}, {self.parent_id}, {self.position})"


EditOperation = Union[Insert, Delete, Update, Move]


def _fmt(value: Any) -> str:
    if isinstance(value, str):
        text = value if len(value) <= 32 else value[:29] + "..."
        return repr(text)
    return repr(value)
