"""Edit-script normalization and composition.

Scripts produced by Algorithm EditScript are already minimum-cost for their
matching, but scripts from other sources — concatenated version-chain legs,
hand-written patches, replayed logs — often contain redundancy. The
normalizer removes it while provably preserving the script's effect:

* **no-op updates** (``UPD(x, v)`` when ``x`` already has value ``v``);
* **superseded updates** (two updates of the same node with no structural
  op between them — the first value is never observable);
* **transient nodes** (``INS`` of a node that is later deleted: the insert,
  the delete, and every op on the node or inside its transient subtree go);
* **self-moves** (a move that lands the node exactly where it already is)
  and **superseded moves** (two moves of the same node with nothing
  observable between them — only the last placement survives... which is
  only safe when no op in between references positions under either parent;
  the conservative rule implemented here requires literal adjacency).

``concatenate`` composes version legs into one script (operation sequences
compose by juxtaposition); pipe the result through :func:`normalize_script`
to shrink it.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from ..core.tree import Tree
from .operations import Delete, EditOperation, Insert, Move, Update
from .script import EditScript


def concatenate(scripts: Iterable[EditScript]) -> EditScript:
    """Compose scripts that apply in sequence into one script."""
    combined = EditScript()
    for script in scripts:
        combined.extend(script)
    return combined


def normalize_script(t1: Tree, script: EditScript) -> EditScript:
    """Return an equivalent script with redundant operations removed.

    *t1* is the tree the script applies to (needed to detect no-op updates
    and self-moves); it is not mutated. The result applied to ``t1`` yields
    exactly the same tree as the input script (same node ids included).
    """
    ops: List[Optional[EditOperation]] = list(script)

    _drop_transient_nodes(ops)
    _drop_superseded_updates(ops)
    _drop_adjacent_superseded_moves(ops)
    _drop_noop_updates_and_self_moves(t1, ops)

    return EditScript([op for op in ops if op is not None])


# ---------------------------------------------------------------------------
# Individual passes (each blanks redundant entries with None)
# ---------------------------------------------------------------------------
def _drop_transient_nodes(ops: List[Optional[EditOperation]]) -> None:
    """Remove INSERTed nodes that are later DELETEd, plus their ops.

    Safe because a deleted node is a leaf at deletion time, so nothing else
    can live under it when it dies; any ops between insert and delete that
    target the node itself (updates, moves) are unobservable afterwards.
    Inserts *under* a transient node must become transient too — they can
    only be deleted before it (leaf rule), so the fixpoint loop catches
    them on a later iteration.
    """
    while True:
        inserted_at = {}
        transient: Set = set()
        for index, op in enumerate(ops):
            if op is None:
                continue
            if isinstance(op, Insert):
                inserted_at[op.node_id] = index
            elif isinstance(op, Delete) and op.node_id in inserted_at:
                transient.add(op.node_id)
        # Conservative guard: a transient node used as the *target parent*
        # of a surviving insert/move cannot be dropped — the visitor ops
        # would dangle and sibling positions could shift. (Such ops being
        # themselves transient is fine; they vanish together.)
        changed = True
        while changed:
            changed = False
            for op in ops:
                if op is None:
                    continue
                parent_id = getattr(op, "parent_id", None)
                node_id = getattr(op, "node_id", None)
                if parent_id in transient and node_id not in transient:
                    transient.discard(parent_id)
                    changed = True
        if not transient:
            return
        for index, op in enumerate(ops):
            if op is None:
                continue
            if getattr(op, "node_id", None) in transient:
                ops[index] = None


def _drop_superseded_updates(ops: List[Optional[EditOperation]]) -> None:
    """Keep only the last of consecutive updates to the same node.

    Two updates of one node with no delete of it in between: the earlier
    value is never observable (updates don't affect structure), so the
    earlier op can go regardless of what else sits between them.
    """
    last_update_at = {}
    for index, op in enumerate(ops):
        if op is None:
            continue
        if isinstance(op, Update):
            previous = last_update_at.get(op.node_id)
            if previous is not None:
                # carry the original old_value forward for cost accounting
                earlier = ops[previous]
                ops[previous] = None
                ops[index] = Update(
                    op.node_id, op.value, old_value=earlier.old_value
                )
            last_update_at[op.node_id] = index
        elif isinstance(op, Delete) and op.node_id in last_update_at:
            del last_update_at[op.node_id]


def _drop_adjacent_superseded_moves(ops: List[Optional[EditOperation]]) -> None:
    """Collapse back-to-back moves of the same node into the final one."""
    previous_index = None
    for index, op in enumerate(ops):
        if op is None:
            continue
        if isinstance(op, Move):
            if (
                previous_index is not None
                and isinstance(ops[previous_index], Move)
                and ops[previous_index].node_id == op.node_id
            ):
                ops[previous_index] = None
            previous_index = index
        else:
            previous_index = None


def _drop_noop_updates_and_self_moves(
    t1: Tree, ops: List[Optional[EditOperation]]
) -> None:
    """Replay to find updates/moves that change nothing at apply time."""
    work = t1.copy()
    for index, op in enumerate(ops):
        if op is None:
            continue
        if isinstance(op, Update):
            node = work.get(op.node_id)
            if node.value == op.value:
                ops[index] = None
                continue
        elif isinstance(op, Move):
            node = work.get(op.node_id)
            parent = node.parent
            if (
                parent is not None
                and parent.id == op.parent_id
                and node.child_index() == op.position
            ):
                ops[index] = None
                continue
        op.apply(work)
