"""Algorithm *EditScript* (paper Section 4, Figures 8 and 9).

Given the old tree ``T1``, the new tree ``T2``, and a partial matching ``M``,
produce a minimum-cost edit script conforming to ``M`` that transforms ``T1``
into a tree isomorphic to ``T2``. The five conceptual phases (update, align,
insert, move, delete) are realized, exactly as in Figure 8, as one
breadth-first scan of ``T2`` followed by a post-order scan of ``T1``:

* **breadth-first scan of T2** — unmatched ``x`` are inserted (extending the
  matching); matched ``x`` get value updates and, when their parents are not
  matched to each other, inter-parent moves; after each node is placed,
  ``AlignChildren`` fixes the relative order of its matched children with the
  minimum number of intra-parent moves (an LCS computation, Lemma C.1).
* **post-order scan of T1** — remaining unmatched nodes are deleted
  bottom-up (they are leaves by then; Theorem C.2).

Implementation notes (documented deviations):

* *Materialized positions.* The paper's ``FindPos`` returns a rank counted
  over "in order" siblings only. We resolve that rank against the live
  intermediate tree so every ``INS``/``MOV`` carries a concrete 1-based
  child index and the script replays verbatim on a copy of the original
  ``T1``. When a move stays under the same parent, the index accounts for
  the mover's own slot disappearing at detach time.
* *Root updates.* Figure 8 step 2(c) guards updates with "x is not a root",
  which would silently skip a changed root value; we emit that update.
* *Unmatched roots.* Per the insert phase, both trees are wrapped with dummy
  roots that are matched to each other; the result records the dummy id so
  callers can replay/strip consistently (see :meth:`EditScriptResult.replay`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Set

from .._compat import DATACLASS_SLOTS
from ..core.index import TreeIndex
from ..core.isomorphism import trees_isomorphic
from ..core.node import Node
from ..core.tree import Tree
from ..lcs.myers import myers_lcs
from ..matching.matching import Matching
from .cost import CostModel
from .operations import Delete, Insert, Move, Update
from .script import EditScript

#: Label given to dummy roots added when the input roots are unmatched.
DUMMY_ROOT_LABEL = "__ROOT__"


@dataclass(**DATACLASS_SLOTS)
class GenerationStats:
    """Counters describing the work done by one generator run."""

    inserts: int = 0
    deletes: int = 0
    updates: int = 0
    inter_parent_moves: int = 0
    intra_parent_moves: int = 0
    align_lcs_calls: int = 0
    nodes_scanned: int = 0

    @property
    def moves(self) -> int:
        return self.inter_parent_moves + self.intra_parent_moves

    @property
    def misaligned_nodes(self) -> int:
        """The paper's ``D``: number of intra-parent moves emitted."""
        return self.intra_parent_moves


@dataclass
class EditScriptResult:
    """Everything Algorithm EditScript produces.

    Attributes
    ----------
    script:
        The minimum-cost conforming edit script (application order).
    matching:
        The total matching ``M'`` between the *transformed* tree's node ids
        and ``T2``'s node ids.
    transformed:
        The working copy of ``T1`` after all operations — isomorphic to
        ``T2`` (including the dummy root, when one was added).
    wrapped:
        True when dummy roots were introduced because the input roots were
        unmatched in ``M``.
    dummy_t1_id / dummy_t2_id:
        Identifiers of the dummy roots (``None`` unless ``wrapped``).
    stats:
        Operation counters (see :class:`GenerationStats`).
    """

    script: EditScript
    matching: Matching
    transformed: Tree
    wrapped: bool = False
    dummy_t1_id: Any = None
    dummy_t2_id: Any = None
    stats: GenerationStats = field(default_factory=GenerationStats)

    def cost(self, model: Optional[CostModel] = None) -> float:
        """Total script cost (unit structural costs by default)."""
        return self.script.cost(model)

    def replay(self, t1: Tree) -> Tree:
        """Re-apply the script to a fresh copy of *t1* and return the result.

        Handles the dummy-root wrapping transparently: the returned tree is
        directly comparable (isomorphic) to the original ``T2``.
        """
        work = t1.copy()
        if self.wrapped:
            work = _wrap_with_dummy_root(work, self.dummy_t1_id)
        work = self.script.apply_to(work, in_place=True)
        if self.wrapped:
            work = _strip_dummy_root(work)
        return work

    def verify(self, t1: Tree, t2: Tree) -> bool:
        """True when replaying the script on *t1* yields a tree isomorphic to *t2*."""
        return trees_isomorphic(self.replay(t1), t2)


def generate_edit_script(
    t1: Tree,
    t2: Tree,
    matching: Matching,
    index2: Optional[TreeIndex] = None,
) -> EditScriptResult:
    """Run Algorithm EditScript and return the full result bundle.

    The inputs are never mutated; all edits happen on an internal working
    copy of ``t1``. The given ``matching`` maps ``t1`` node ids to ``t2``
    node ids and must be one-to-one (class invariant of
    :class:`~repro.matching.Matching`); the script never inserts or deletes
    a matched node, so it *conforms* to the matching by construction.

    *index2* is an optional prebuilt :class:`~repro.core.index.TreeIndex`
    over ``t2`` (the pipeline passes the one built by its index stage):
    FindPos then locates a node among its siblings via the index's child
    ranks and scans backwards for the in-order anchor instead of re-walking
    every left sibling from the start.
    """
    if t1.root is None or t2.root is None:
        raise ValueError("generate_edit_script requires non-empty trees")
    _validate_matching(t1, t2, matching)
    generator = _Generator(t1, t2, matching, index2=index2)
    return generator.run()


def _validate_matching(t1: Tree, t2: Tree, matching: Matching) -> None:
    """Reject matchings the edit model cannot honor.

    The edit operations never change a node's label (there is no relabel in
    the paper's model, and every matching criterion requires label
    equality), so a pair with differing labels could only yield a wrong
    result; unknown node ids would fail later with a confusing error.
    """
    from ..core.errors import MatchingError

    for x_id, y_id in matching.pairs():
        if x_id not in t1:
            raise MatchingError(f"matching references unknown T1 node {x_id!r}")
        if y_id not in t2:
            raise MatchingError(f"matching references unknown T2 node {y_id!r}")
        label1 = t1.get(x_id).label
        label2 = t2.get(y_id).label
        if label1 != label2:
            raise MatchingError(
                f"matched pair ({x_id!r}, {y_id!r}) has differing labels "
                f"{label1!r} vs {label2!r}; the edit model cannot relabel nodes"
            )


class _Generator:
    """Mutable state for one run of Algorithm EditScript."""

    def __init__(
        self,
        t1: Tree,
        t2: Tree,
        matching: Matching,
        index2: Optional[TreeIndex] = None,
    ) -> None:
        self.t2_original = t2
        self.work = t1.copy()  # T1 working copy; ops are applied here
        self.t2 = t2  # replaced by a wrapped copy if roots are unmatched
        self.index2 = index2  # dropped if t2 is replaced by a wrapped copy
        self._bind_index_tables()
        self.mprime = matching.copy()
        self.script = EditScript()
        self.stats = GenerationStats()
        # "In order" marks are kept per tree: the two trees' identifier
        # spaces may overlap (both commonly number nodes 1..n), so a shared
        # set would let a mark on a working-tree node spuriously flag the
        # same-numbered T2 node as already placed.
        self.in_order1: Set[Any] = set()  # working-tree (T1') node ids
        self.in_order2: Set[Any] = set()  # T2 node ids
        self.wrapped = False
        self.dummy_t1_id: Any = None
        self.dummy_t2_id: Any = None
        existing = [n for n in itertools.chain(t1.node_ids(), t2.node_ids())
                    if isinstance(n, int)]
        self._fresh = itertools.count(max(existing, default=0) + 1)

    def _bind_index_tables(self) -> None:
        """Bind the index's lookup accessors once; FindPos runs per node."""
        if self.index2 is not None:
            self._owned2_get = self.index2.node_table().get
            self._child_rank2 = self.index2.child_rank
        else:
            self._owned2_get = None
            self._child_rank2 = None

    # ------------------------------------------------------------------
    def run(self) -> EditScriptResult:
        self._ensure_matched_roots()
        self._breadth_first_phase()
        self._delete_phase()
        return EditScriptResult(
            script=self.script,
            matching=self.mprime,
            transformed=self.work,
            wrapped=self.wrapped,
            dummy_t1_id=self.dummy_t1_id,
            dummy_t2_id=self.dummy_t2_id,
            stats=self.stats,
        )

    # ------------------------------------------------------------------
    # Insert phase preamble (Section 4.1): dummy roots when roots unmatched
    # ------------------------------------------------------------------
    def _ensure_matched_roots(self) -> None:
        root1, root2 = self.work.root, self.t2.root
        if self.mprime.contains(root1.id, root2.id):
            return
        if self.mprime.has1(root1.id) or self.mprime.has2(root2.id):
            # Roots matched to interior nodes of the other tree: the dummy
            # wrap below still handles this (the old root subtree gets moved
            # where its partner lives).
            pass
        self.dummy_t1_id = next(self._fresh)
        self.dummy_t2_id = next(self._fresh)
        self.work = _wrap_with_dummy_root(self.work, self.dummy_t1_id)
        self.t2 = _wrap_with_dummy_root(self.t2.copy(), self.dummy_t2_id)
        # The BFS now walks a wrapped *copy* of T2; the prebuilt index does
        # not own those nodes, so FindPos must fall back to sibling scans.
        self.index2 = None
        self._bind_index_tables()
        self.mprime.add(self.dummy_t1_id, self.dummy_t2_id)
        self.wrapped = True

    # ------------------------------------------------------------------
    # Phase 2 of Figure 8: BFS over T2 (update + insert + move + align)
    # ------------------------------------------------------------------
    def _breadth_first_phase(self) -> None:
        for x in self.t2.bfs():
            self.stats.nodes_scanned += 1
            if x.parent is None:
                self._visit_root(x)
            elif not self.mprime.has2(x.id):
                self._visit_unmatched(x)
            else:
                self._visit_matched(x)
            # Step 2(d): align the children of (w, x). By this point x is
            # always matched (unmatched nodes were just inserted).
            w = self.work.get(self.mprime.partner2(x.id))
            if w.children or x.children:
                self._align_children(w, x)

    def _visit_root(self, x: Node) -> None:
        # After _ensure_matched_roots the T2 root is always matched.
        w = self.work.get(self.mprime.partner2(x.id))
        # Deviation from Figure 8 (see module docstring): emit root updates.
        if w.value != x.value:
            self._emit_update(w, x)
        self.in_order1.add(w.id)
        self.in_order2.add(x.id)

    def _visit_unmatched(self, x: Node) -> None:
        """Step 2(b): insert a new leaf for unmatched ``x``."""
        y = x.parent
        z_id = self.mprime.partner2(y.id)
        position = self._find_pos(x, moving_id=None)
        w_id = next(self._fresh)
        op = Insert(w_id, x.label, x.value, z_id, position)
        self.script.append(op)
        op.apply(self.work)
        self.mprime.add(w_id, x.id)
        self.in_order1.add(w_id)
        self.in_order2.add(x.id)
        self.stats.inserts += 1

    def _visit_matched(self, x: Node) -> None:
        """Step 2(c): update value and/or move across parents."""
        y = x.parent
        w = self.work.get(self.mprime.partner2(x.id))
        v = w.parent
        if w.value != x.value:
            self._emit_update(w, x)
        if v is None or not self.mprime.contains(v.id, y.id):
            z_id = self.mprime.partner2(y.id)
            position = self._find_pos(x, moving_id=w.id)
            op = Move(w.id, z_id, position)
            self.script.append(op)
            op.apply(self.work)
            self.stats.inter_parent_moves += 1
        self.in_order1.add(w.id)
        self.in_order2.add(x.id)

    def _emit_update(self, w: Node, x: Node) -> None:
        op = Update(w.id, x.value, old_value=w.value)
        self.script.append(op)
        op.apply(self.work)
        self.stats.updates += 1

    # ------------------------------------------------------------------
    # Function AlignChildren (Figure 9)
    # ------------------------------------------------------------------
    def _align_children(self, w: Node, x: Node) -> None:
        # 1. Mark all children of w and of x "out of order".
        for child in w.children:
            self.in_order1.discard(child.id)
        for child in x.children:
            self.in_order2.discard(child.id)
        # 2. S1: children of w whose partners are children of x;
        #    S2: children of x whose partners are children of w.
        x_child_ids = {c.id for c in x.children}
        w_child_ids = {c.id for c in w.children}
        s1 = [
            c
            for c in w.children
            if self.mprime.partner1(c.id) in x_child_ids
        ]
        s2 = [
            c
            for c in x.children
            if self.mprime.partner2(c.id) in w_child_ids
        ]
        if not s1 and not s2:
            return
        # 3-4. LCS with equal(a, b) <=> (a, b) in M'.
        self.stats.align_lcs_calls += 1
        common = myers_lcs(s1, s2, lambda a, b: self.mprime.contains(a.id, b.id))
        # 5. Mark LCS pairs "in order".
        in_lcs_t2_ids: Set[Any] = set()
        for a, b in common:
            self.in_order1.add(a.id)
            self.in_order2.add(b.id)
            in_lcs_t2_ids.add(b.id)
        # 6. Move every matched-but-out-of-sequence pair into place. We scan
        # b over x's children left-to-right so anchors are always final.
        for b in x.children:
            if b.id in in_lcs_t2_ids:
                continue
            a_id = self.mprime.partner2(b.id)
            if a_id is None or a_id not in w_child_ids:
                continue
            position = self._find_pos(b, moving_id=a_id)
            op = Move(a_id, w.id, position)
            self.script.append(op)
            op.apply(self.work)
            self.in_order1.add(a_id)
            self.in_order2.add(b.id)
            self.stats.intra_parent_moves += 1

    # ------------------------------------------------------------------
    # Function FindPos (Figure 9)
    # ------------------------------------------------------------------
    def _find_pos(self, x: Node, moving_id: Any) -> int:
        """Target child position for placing the partner of ``x`` in T2.

        ``moving_id`` identifies the working-tree node about to be detached
        by a move (``None`` for inserts); when it currently sits to the left
        of the anchor under the same parent, the returned index compensates
        for the slot it vacates.
        """
        y = x.parent
        # 2. If x is the leftmost child of y marked "in order", return 1.
        # (Equivalently: no in-order sibling lies to x's left.)
        anchor: Optional[Node] = None
        owned_get = self._owned2_get
        if owned_get is not None and owned_get(x.id) is x:
            # Indexed path: locate x among its siblings in O(1) and scan
            # backwards, stopping at the first (i.e. rightmost) in-order
            # left sibling instead of walking every slot from the left.
            siblings = y.children
            in_order = self.in_order2
            position = self._child_rank2(x.id) - 2
            while position >= 0:
                sibling = siblings[position]
                if sibling.id in in_order:
                    anchor = sibling
                    break
                position -= 1
        else:
            for sibling in y.children:
                if sibling is x:
                    break
                if sibling.id in self.in_order2:
                    anchor = sibling
        if anchor is None:
            return 1
        # 3-5. Place right after the partner u of the rightmost in-order
        # left sibling v of x.
        u = self.work.get(self.mprime.partner2(anchor.id))
        parent = u.parent
        index = parent.children.index(u) + 1  # 1-based index of u
        if moving_id is not None:
            mover = self.work.get(moving_id)
            if mover.parent is parent and parent.children.index(mover) < index - 1:
                index -= 1
        return index + 1

    # ------------------------------------------------------------------
    # Phase 3 of Figure 8: post-order delete of unmatched T1 nodes
    # ------------------------------------------------------------------
    def _delete_phase(self) -> None:
        doomed = [
            node.id
            for node in self.work.postorder()
            if not self.mprime.has1(node.id)
        ]
        for node_id in doomed:
            op = Delete(node_id)
            self.script.append(op)
            op.apply(self.work)
            self.stats.deletes += 1


# ---------------------------------------------------------------------------
# Dummy-root helpers
# ---------------------------------------------------------------------------
def _wrap_with_dummy_root(tree: Tree, dummy_id: Any) -> Tree:
    """Interpose a dummy root above *tree*'s root (in place); return *tree*."""
    old_root = tree.root
    dummy = Node(dummy_id, DUMMY_ROOT_LABEL, None)
    dummy.children.append(old_root)
    old_root.parent = dummy
    old_root._slot = 0
    tree.root = dummy
    tree._nodes[dummy_id] = dummy
    return tree


def _strip_dummy_root(tree: Tree) -> Tree:
    """Remove a dummy root, promoting its only child (in place)."""
    dummy = tree.root
    if dummy is None or dummy.label != DUMMY_ROOT_LABEL:
        return tree
    if len(dummy.children) != 1:
        raise ValueError(
            f"dummy root has {len(dummy.children)} children; cannot strip"
        )
    new_root = dummy.children[0]
    new_root.parent = None
    tree.root = new_root
    del tree._nodes[dummy.id]
    return tree
