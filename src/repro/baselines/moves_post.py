"""Move detection as a post-processing step over [ZS89] output ([WZS95]).

Section 2: "moves have been added to the [ZS89] algorithm in a
post-processing step [WZS95]". This module implements that idea: scan the
optimal Zhang–Shasha operation sequence for a *delete* of a subtree and an
*insert* of an isomorphic subtree, and fuse each such pair into a single
conceptual move. The result makes the baseline comparable to the paper's
move-aware edit scripts when counting operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..core.node import Node
from ..core.tree import Tree
from .zhang_shasha import ZsOperation, zhang_shasha_operations


@dataclass(frozen=True)
class ZsMove:
    """A fused delete/insert pair: the subtree moved from *old* to *new*."""

    old: Node
    new: Node


@dataclass
class ZsMoveResult:
    """Operations after move fusion, plus cost accounting."""

    operations: List[ZsOperation]
    moves: List[ZsMove]
    base_distance: float
    fused_cost: float


def _subtree_signature(node: Node) -> Tuple:
    return (
        node.label,
        node.value,
        tuple(_subtree_signature(child) for child in node.children),
    )


def zhang_shasha_with_moves(t1: Tree, t2: Tree) -> ZsMoveResult:
    """Run [ZS89] and fuse isomorphic delete/insert subtree pairs into moves.

    Only *whole* deleted subtrees (every node of the subtree deleted) are
    eligible, mirroring the paper's subtree-move semantics. Each fusion
    replaces ``size`` deletes and ``size`` inserts with one unit-cost move,
    so ``fused_cost = base_distance - moves * (2 * size - 1)`` accumulated
    per move.
    """
    distance, operations = zhang_shasha_operations(t1, t2)
    deleted_ids: Set = {id(op.old) for op in operations if op.kind == "delete"}
    inserted_ids: Set = {id(op.new) for op in operations if op.kind == "insert"}

    def fully_deleted(node: Node) -> bool:
        return all(id(n) in deleted_ids for n in node.preorder())

    def fully_inserted(node: Node) -> bool:
        return all(id(n) in inserted_ids for n in node.preorder())

    # Maximal fully-deleted subtrees of T1, indexed by signature.
    candidates: Dict[Tuple, List[Node]] = {}
    for node in t1.preorder():
        if fully_deleted(node) and (
            node.parent is None or not fully_deleted(node.parent)
        ):
            candidates.setdefault(_subtree_signature(node), []).append(node)

    moves: List[ZsMove] = []
    consumed_old: Set = set()
    consumed_new: Set = set()
    for node in t2.preorder():
        if id(node) in consumed_new:
            continue
        if not fully_inserted(node):
            continue
        if node.parent is not None and fully_inserted(node.parent):
            continue  # only maximal inserted subtrees
        signature = _subtree_signature(node)
        pool = candidates.get(signature)
        if not pool:
            continue
        source = pool.pop(0)
        moves.append(ZsMove(old=source, new=node))
        for n in source.preorder():
            consumed_old.add(id(n))
        for n in node.preorder():
            consumed_new.add(id(n))

    fused: List[ZsOperation] = []
    savings = 0.0
    for op in operations:
        if op.kind == "delete" and id(op.old) in consumed_old:
            savings += 1.0
            continue
        if op.kind == "insert" and id(op.new) in consumed_new:
            savings += 1.0
            continue
        fused.append(op)
    fused_cost = distance - savings + len(moves)  # each move costs 1
    return ZsMoveResult(
        operations=fused,
        moves=moves,
        base_distance=distance,
        fused_cost=fused_cost,
    )
