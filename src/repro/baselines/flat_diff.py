"""Flat line-based diff baseline (GNU diff / [Mye86]).

Section 2 explains why flat diff is insufficient for structured documents:
it has no notion of hierarchy (an item can be matched to a section heading)
and "moves are always reported as deletions and insertions". This baseline
makes those drawbacks measurable: documents are flattened to one sentence
per line and diffed with Myers' algorithm, and the analysis helpers count
how much larger the flat delta is than the structure-aware one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.node import Node
from ..core.tree import Tree
from ..lcs.sequences import OpCode, diff_opcodes, unified_hunks


@dataclass
class FlatDiffResult:
    """Line-level diff statistics between two flattened documents."""

    opcodes: List[OpCode]
    deleted_lines: int
    inserted_lines: int
    unchanged_lines: int

    @property
    def total_changes(self) -> int:
        """Flat edit cost: one per deleted or inserted line."""
        return self.deleted_lines + self.inserted_lines


def flatten_tree(tree: Tree) -> List[str]:
    """Flatten a document tree to lines the way a text dump would.

    Headings render as ``\\section{...}``-style lines and leaves as their
    values, so the flat baseline sees the same content as the tree differ —
    this is what "diffing the source" approximates.
    """
    lines: List[str] = []

    def walk(node: Node) -> None:
        if node.is_leaf and node.value is not None:
            lines.append(str(node.value))
        elif node.value is not None:
            lines.append(f"[{node.label}] {node.value}")
        for child in node.children:
            walk(child)

    if tree.root is not None:
        walk(tree.root)
    return lines


def flat_diff(t1: Tree, t2: Tree) -> FlatDiffResult:
    """Line diff of the flattened trees."""
    lines1 = flatten_tree(t1)
    lines2 = flatten_tree(t2)
    opcodes = diff_opcodes(lines1, lines2)
    deleted = sum(op.i2 - op.i1 for op in opcodes if op.tag == "delete")
    inserted = sum(op.j2 - op.j1 for op in opcodes if op.tag == "insert")
    unchanged = sum(op.i2 - op.i1 for op in opcodes if op.tag == "equal")
    return FlatDiffResult(
        opcodes=opcodes,
        deleted_lines=deleted,
        inserted_lines=inserted,
        unchanged_lines=unchanged,
    )


def flat_diff_text(t1: Tree, t2: Tree, context: int = 1) -> str:
    """Unified-diff style rendering of the flat baseline's output."""
    return "\n".join(unified_hunks(flatten_tree(t1), flatten_tree(t2), context))


def undetected_moves(t1: Tree, t2: Tree) -> int:
    """Lines the flat diff reports as delete+insert that are really moves.

    A line counts as a missed move when it occurs among both the deleted
    and the inserted lines (same text leaving one place and appearing in
    another). This is the paper's §2 drawback quantified.
    """
    result = flat_diff(t1, t2)
    lines1 = flatten_tree(t1)
    lines2 = flatten_tree(t2)
    deleted: List[str] = []
    inserted: List[str] = []
    for op in result.opcodes:
        if op.tag == "delete":
            deleted.extend(lines1[op.i1 : op.i2])
        elif op.tag == "insert":
            inserted.extend(lines2[op.j1 : op.j2])
    moved = 0
    remaining = list(inserted)
    for line in deleted:
        if line in remaining:
            remaining.remove(line)
            moved += 1
    return moved
