"""Baseline change-detection algorithms the paper compares against (§2)."""

from .flat_diff import (
    FlatDiffResult,
    flat_diff,
    flat_diff_text,
    flatten_tree,
    undetected_moves,
)
from .moves_post import ZsMove, ZsMoveResult, zhang_shasha_with_moves
from .zhang_shasha import (
    ZsOperation,
    zhang_shasha_distance,
    zhang_shasha_mapping,
    zhang_shasha_operations,
)

__all__ = [
    "FlatDiffResult",
    "ZsMove",
    "ZsMoveResult",
    "ZsOperation",
    "flat_diff",
    "flat_diff_text",
    "flatten_tree",
    "undetected_moves",
    "zhang_shasha_distance",
    "zhang_shasha_mapping",
    "zhang_shasha_operations",
    "zhang_shasha_with_moves",
]
