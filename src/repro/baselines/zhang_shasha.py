"""The Zhang–Shasha tree edit distance [ZS89] — the paper's comparator.

"The general problem of finding the minimum cost edit distance between
ordered trees has been studied in [ZS89] ... The algorithm in [ZS89] runs in
time O(n^2 log^2 n) for balanced trees (even higher for unbalanced trees)."
(Section 2.) The paper positions its own algorithm as the fast,
domain-assuming alternative; this module provides the thorough baseline so
the benchmarks can reproduce that comparison.

The edit model here is [ZS89]'s: *relabel*, *insert*, and *delete* of single
nodes, where deleting an interior node promotes its children — different
from (but state-equivalent to) the paper's leaf-insert/leaf-delete/move
model. Unit costs by default; all three costs are pluggable.

Implementation: the classic keyroot dynamic program, O(n1*n2*min(d1,l1)*
min(d2,l2)) time, with optional reconstruction of the operation sequence
(used by the [WZS95]-style move post-processing in
:mod:`repro.baselines.moves_post`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..core.node import Node
from ..core.tree import Tree

#: Cost of relabeling node a into node b (0 when identical).
RelabelCost = Callable[[Node, Node], float]
NodeCost = Callable[[Node], float]


def _default_relabel(a: Node, b: Node) -> float:
    return 0.0 if (a.label == b.label and a.value == b.value) else 1.0


def _unit(_: Node) -> float:
    return 1.0


@dataclass(frozen=True)
class ZsOperation:
    """One [ZS89] edit operation from the reconstructed sequence.

    ``kind`` is ``"match"`` (cost 0), ``"relabel"``, ``"delete"`` (from the
    old tree), or ``"insert"`` (into the new tree). ``old``/``new`` reference
    the involved nodes (``None`` where not applicable).
    """

    kind: str
    old: Optional[Node]
    new: Optional[Node]

    def __str__(self) -> str:
        if self.kind == "delete":
            return f"ZS-DEL({self.old.id})"
        if self.kind == "insert":
            return f"ZS-INS({self.new.id})"
        if self.kind == "relabel":
            return f"ZS-REL({self.old.id} -> {self.new.id})"
        return f"ZS-MATCH({self.old.id} ~ {self.new.id})"


class _AnnotatedTree:
    """Postorder numbering, leftmost-leaf descendants, and LR keyroots."""

    def __init__(self, tree: Tree) -> None:
        if tree.root is None:
            self.nodes: List[Node] = []
            self.lmds: List[int] = []
            self.keyroots: List[int] = []
            return
        self.nodes = list(tree.root.postorder())
        index_of = {id(node): i for i, node in enumerate(self.nodes)}
        self.lmds = []
        for node in self.nodes:
            current = node
            while current.children:
                current = current.children[0]
            self.lmds.append(index_of[id(current)])
        # Keyroots: nodes that are not the leftmost child of their parent
        # (i.e. have a left sibling) plus the root, by postorder index.
        keyroots = []
        for i, node in enumerate(self.nodes):
            parent = node.parent
            if parent is None or parent.children[0] is not node:
                keyroots.append(i)
        self.keyroots = keyroots

    def __len__(self) -> int:
        return len(self.nodes)


def zhang_shasha_distance(
    t1: Tree,
    t2: Tree,
    relabel_cost: RelabelCost = _default_relabel,
    insert_cost: NodeCost = _unit,
    delete_cost: NodeCost = _unit,
) -> float:
    """Minimum [ZS89] edit distance between two ordered trees."""
    distance, _ = _zhang_shasha(
        t1, t2, relabel_cost, insert_cost, delete_cost, want_operations=False
    )
    return distance


def zhang_shasha_operations(
    t1: Tree,
    t2: Tree,
    relabel_cost: RelabelCost = _default_relabel,
    insert_cost: NodeCost = _unit,
    delete_cost: NodeCost = _unit,
) -> Tuple[float, List[ZsOperation]]:
    """Distance plus one optimal operation sequence realizing it."""
    return _zhang_shasha(
        t1, t2, relabel_cost, insert_cost, delete_cost, want_operations=True
    )


def zhang_shasha_mapping(
    t1: Tree,
    t2: Tree,
    relabel_cost: RelabelCost = _default_relabel,
) -> List[Tuple[Node, Node]]:
    """The optimal node mapping (matched + relabeled pairs)."""
    _, operations = zhang_shasha_operations(t1, t2, relabel_cost)
    return [
        (op.old, op.new)
        for op in operations
        if op.kind in ("match", "relabel")
    ]


def _zhang_shasha(
    t1: Tree,
    t2: Tree,
    relabel_cost: RelabelCost,
    insert_cost: NodeCost,
    delete_cost: NodeCost,
    want_operations: bool,
) -> Tuple[float, List[ZsOperation]]:
    a1 = _AnnotatedTree(t1)
    a2 = _AnnotatedTree(t2)
    n1, n2 = len(a1), len(a2)
    if n1 == 0 or n2 == 0:
        ops: List[ZsOperation] = []
        total = 0.0
        for node in a1.nodes:
            total += delete_cost(node)
            ops.append(ZsOperation("delete", node, None))
        for node in a2.nodes:
            total += insert_cost(node)
            ops.append(ZsOperation("insert", None, node))
        return total, (ops if want_operations else [])

    treedists = [[0.0] * n2 for _ in range(n1)]
    operations: List[List[List[ZsOperation]]] = (
        [[[] for _ in range(n2)] for _ in range(n1)] if want_operations else []
    )

    for i in a1.keyroots:
        for j in a2.keyroots:
            _treedist(
                i, j, a1, a2, treedists, operations,
                relabel_cost, insert_cost, delete_cost, want_operations,
            )

    distance = treedists[n1 - 1][n2 - 1]
    ops = operations[n1 - 1][n2 - 1] if want_operations else []
    return distance, ops


def _treedist(
    i: int,
    j: int,
    a1: _AnnotatedTree,
    a2: _AnnotatedTree,
    treedists: List[List[float]],
    operations: List[List[List[ZsOperation]]],
    relabel_cost: RelabelCost,
    insert_cost: NodeCost,
    delete_cost: NodeCost,
    want_operations: bool,
) -> None:
    """Fill treedists[i][j] (and the op table) for keyroot pair (i, j)."""
    il = a1.lmds[i]
    jl = a2.lmds[j]
    m = i - il + 2
    n = j - jl + 2

    fd = [[0.0] * n for _ in range(m)]
    fd_ops: List[List[List[ZsOperation]]] = (
        [[[] for _ in range(n)] for _ in range(m)] if want_operations else []
    )
    ioff = il - 1
    joff = jl - 1

    for x in range(1, m):
        node = a1.nodes[x + ioff]
        fd[x][0] = fd[x - 1][0] + delete_cost(node)
        if want_operations:
            fd_ops[x][0] = fd_ops[x - 1][0] + [ZsOperation("delete", node, None)]
    for y in range(1, n):
        node = a2.nodes[y + joff]
        fd[0][y] = fd[0][y - 1] + insert_cost(node)
        if want_operations:
            fd_ops[0][y] = fd_ops[0][y - 1] + [ZsOperation("insert", None, node)]

    for x in range(1, m):
        node1 = a1.nodes[x + ioff]
        for y in range(1, n):
            node2 = a2.nodes[y + joff]
            if a1.lmds[i] == a1.lmds[x + ioff] and a2.lmds[j] == a2.lmds[y + joff]:
                # Both prefixes are whole trees: the classic 3-way minimum.
                cost_rel = relabel_cost(node1, node2)
                candidates = (
                    fd[x - 1][y] + delete_cost(node1),
                    fd[x][y - 1] + insert_cost(node2),
                    fd[x - 1][y - 1] + cost_rel,
                )
                best = min(candidates)
                fd[x][y] = best
                treedists[x + ioff][y + joff] = best
                if want_operations:
                    if best == candidates[2]:
                        kind = "match" if cost_rel == 0 else "relabel"
                        fd_ops[x][y] = fd_ops[x - 1][y - 1] + [
                            ZsOperation(kind, node1, node2)
                        ]
                    elif best == candidates[0]:
                        fd_ops[x][y] = fd_ops[x - 1][y] + [
                            ZsOperation("delete", node1, None)
                        ]
                    else:
                        fd_ops[x][y] = fd_ops[x][y - 1] + [
                            ZsOperation("insert", None, node2)
                        ]
                    operations[x + ioff][y + joff] = fd_ops[x][y]
            else:
                # General forests: splice in the stored subtree solution.
                p = a1.lmds[x + ioff] - 1 - ioff
                q = a2.lmds[y + joff] - 1 - joff
                candidates = (
                    fd[x - 1][y] + delete_cost(node1),
                    fd[x][y - 1] + insert_cost(node2),
                    fd[p][q] + treedists[x + ioff][y + joff],
                )
                best = min(candidates)
                fd[x][y] = best
                if want_operations:
                    if best == candidates[2]:
                        fd_ops[x][y] = (
                            fd_ops[p][q] + operations[x + ioff][y + joff]
                        )
                    elif best == candidates[0]:
                        fd_ops[x][y] = fd_ops[x - 1][y] + [
                            ZsOperation("delete", node1, None)
                        ]
                    else:
                        fd_ops[x][y] = fd_ops[x][y - 1] + [
                            ZsOperation("insert", None, node2)
                        ]
