"""Three-way merge of hierarchical data (completing the §1 CAD scenario).

The paper's configuration-management motivation: two departments edit the
same design autonomously, and "periodic consistent configurations of the
entire design must be produced ... by computing the deltas with respect to
the last configuration and highlighting any conflicts that have arisen."

:func:`three_way_merge` does exactly that. Given a common *base* and two
derived versions, it computes both deltas (value-based matching — no shared
ids assumed between versions), applies the left delta wholesale, then
replays the right delta on top, translating node references through the
matchings and detecting conflicts:

* **update/update** — both sides changed the same node's value differently;
* **delete/update** and **update/delete** — one side edited what the other
  removed;
* **delete/orphan** — the right side inserts or moves under a node the
  left side deleted;
* **move/move** — both sides moved the same node to different parents.

Like ``diff3``, the merge is heuristic where the paper's model is silent:
non-conflicting sibling positions are clamped into range rather than
recomputed exactly, so the merged order of independently inserted siblings
is deterministic but unspecified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .core.errors import ReproError
from .core.tree import Tree
from .editscript.operations import Delete, EditOperation, Insert, Move, Update
from .matching.criteria import MatchConfig
from .pipeline import DiffConfig, DiffPipeline


class MergeError(ReproError):
    """Raised when merge inputs are unusable (e.g. empty trees)."""


@dataclass(frozen=True)
class Conflict:
    """One detected conflict; the left side's outcome was kept."""

    kind: str  # update-update / delete-update / update-delete / ...
    description: str
    base_node_id: Any = None


@dataclass
class MergeResult:
    """The merged tree plus what happened along the way."""

    tree: Tree
    conflicts: List[Conflict] = field(default_factory=list)
    applied_right_ops: int = 0
    skipped_right_ops: int = 0

    @property
    def clean(self) -> bool:
        return not self.conflicts


def three_way_merge(
    base: Tree,
    left: Tree,
    right: Tree,
    config: Optional[MatchConfig] = None,
) -> MergeResult:
    """Merge two versions derived from *base*; left wins conflicts.

    Returns the merged tree (left's changes plus right's non-conflicting
    changes) and the list of conflicts for human resolution — the paper's
    "highlighting any conflicts that have arisen".
    """
    if base.root is None or left.root is None or right.root is None:
        raise MergeError("three_way_merge requires three non-empty trees")

    # Both legs run on one pipeline; indexing the shared base once lets the
    # second leg reuse it (reported as an index_cache_hit in its trace).
    from .core.index import attach_index

    attach_index(base)
    pipeline = DiffPipeline(DiffConfig(match=config))
    diff_left = pipeline.run(base, left)
    diff_right = pipeline.run(base, right)

    # The merge working tree starts as the left version, but with *base*
    # node identifiers (the generator's transformed tree keeps them), so
    # right-delta references translate directly.
    merged = diff_left.edit.replay(base)
    conflicts: List[Conflict] = []

    left_updates = {op.node_id: op for op in diff_left.script.updates}
    left_deletes = {op.node_id for op in diff_left.script.deletes}
    left_moves = {op.node_id: op for op in diff_left.script.moves}

    #: right-delta ids -> ids in the merged tree (base ids map to
    #: themselves; right-side inserts get fresh merged ids).
    id_map: Dict[Any, Any] = {}

    def resolve(node_id: Any) -> Optional[Any]:
        mapped = id_map.get(node_id, node_id)
        return mapped if mapped in merged else None

    applied = skipped = 0
    for op in diff_right.script:
        outcome = _replay_right_op(
            op, merged, id_map, resolve,
            left_updates, left_deletes, left_moves, conflicts,
        )
        if outcome:
            applied += 1
        else:
            skipped += 1

    return MergeResult(
        tree=merged,
        conflicts=conflicts,
        applied_right_ops=applied,
        skipped_right_ops=skipped,
    )


def _replay_right_op(
    op: EditOperation,
    merged: Tree,
    id_map: Dict[Any, Any],
    resolve,
    left_updates: Dict[Any, Update],
    left_deletes,
    left_moves: Dict[Any, Move],
    conflicts: List[Conflict],
) -> bool:
    """Apply one right-delta operation to the merged tree; False = skipped."""
    if isinstance(op, Update):
        target = resolve(op.node_id)
        if target is None:
            conflicts.append(Conflict(
                kind="delete-update",
                description=(
                    f"right updates node {op.node_id!r} to {op.value!r}, "
                    f"but left deleted it"
                ),
                base_node_id=op.node_id,
            ))
            return False
        left_update = left_updates.get(op.node_id)
        if left_update is not None and left_update.value != op.value:
            conflicts.append(Conflict(
                kind="update-update",
                description=(
                    f"node {op.node_id!r}: left set {left_update.value!r}, "
                    f"right set {op.value!r} (kept left)"
                ),
                base_node_id=op.node_id,
            ))
            return False
        merged.update(target, op.value)
        return True

    if isinstance(op, Delete):
        target = resolve(op.node_id)
        if target is None:
            return True  # both sides deleted it: nothing to do, no conflict
        if op.node_id in left_updates:
            conflicts.append(Conflict(
                kind="update-delete",
                description=(
                    f"right deletes node {op.node_id!r} that left updated "
                    f"(kept left's version)"
                ),
                base_node_id=op.node_id,
            ))
            return False
        node = merged.get(target)
        if node.children:
            conflicts.append(Conflict(
                kind="delete-occupied",
                description=(
                    f"right deletes node {op.node_id!r}, but it still has "
                    f"children in the merge (left added or kept content)"
                ),
                base_node_id=op.node_id,
            ))
            return False
        if node.parent is None:
            return False  # never delete the merged root
        merged.delete(target)
        return True

    if isinstance(op, Insert):
        parent = resolve(op.parent_id)
        if parent is None:
            conflicts.append(Conflict(
                kind="delete-orphan",
                description=(
                    f"right inserts {op.value!r} under node {op.parent_id!r}, "
                    f"which left deleted"
                ),
                base_node_id=op.parent_id,
            ))
            return False
        new_node = merged.create_node(
            op.label,
            op.value,
            parent=merged.get(parent),
            position=_clamp(op.position, len(merged.get(parent).children) + 1),
        )
        id_map[op.node_id] = new_node.id
        return True

    if isinstance(op, Move):
        target = resolve(op.node_id)
        parent = resolve(op.parent_id)
        if target is None:
            conflicts.append(Conflict(
                kind="delete-move",
                description=(
                    f"right moves node {op.node_id!r}, but left deleted it"
                ),
                base_node_id=op.node_id,
            ))
            return False
        if parent is None:
            conflicts.append(Conflict(
                kind="delete-orphan",
                description=(
                    f"right moves node {op.node_id!r} under {op.parent_id!r}, "
                    f"which left deleted"
                ),
                base_node_id=op.parent_id,
            ))
            return False
        left_move = left_moves.get(op.node_id)
        if left_move is not None and left_move.parent_id != op.parent_id:
            conflicts.append(Conflict(
                kind="move-move",
                description=(
                    f"node {op.node_id!r} moved to different parents: "
                    f"left under {left_move.parent_id!r}, right under "
                    f"{op.parent_id!r} (kept left)"
                ),
                base_node_id=op.node_id,
            ))
            return False
        node = merged.get(target)
        parent_node = merged.get(parent)
        if node.parent is None:
            conflicts.append(Conflict(
                kind="move-root",
                description=(
                    f"right moves node {op.node_id!r}, which is the merged "
                    f"root (left replaced the hierarchy above it)"
                ),
                base_node_id=op.node_id,
            ))
            return False
        if node is parent_node or node.is_ancestor_of(parent_node):
            conflicts.append(Conflict(
                kind="move-cycle",
                description=(
                    f"right's move of {op.node_id!r} under {op.parent_id!r} "
                    f"would create a cycle after left's changes"
                ),
                base_node_id=op.node_id,
            ))
            return False
        limit = len(parent_node.children) + (0 if node.parent is parent_node else 1)
        merged.move(target, parent, _clamp(op.position, max(limit, 1)))
        return True

    raise TypeError(f"unknown operation {op!r}")  # pragma: no cover


def _clamp(position: int, limit: int) -> int:
    return max(1, min(position, limit))
