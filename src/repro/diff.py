"""Top-level change-detection API.

:func:`tree_diff` wires the paper's two subproblems together: find a good
matching (FastMatch by default), optionally repair it (Section 8
post-processing), then generate the minimum conforming edit script
(Algorithm EditScript). This is the function most applications need; the
pieces remain individually importable for custom pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .core.tree import Tree
from .editscript.cost import CostModel
from .editscript.generator import EditScriptResult, generate_edit_script
from .editscript.script import EditScript
from .matching.criteria import MatchConfig, MatchingStats
from .matching.fastmatch import fast_match
from .matching.matching import Matching
from .matching.postprocess import postprocess_matching
from .matching.schema import LabelSchema
from .matching.simple import match as simple_match


@dataclass
class DiffResult:
    """Everything produced by one end-to-end diff."""

    matching: Matching
    edit: EditScriptResult
    match_stats: MatchingStats = field(default_factory=MatchingStats)
    postprocess_repairs: int = 0

    @property
    def script(self) -> EditScript:
        """The minimum conforming edit script."""
        return self.edit.script

    def cost(self, model: Optional[CostModel] = None) -> float:
        return self.edit.cost(model)

    def verify(self, t1: Tree, t2: Tree) -> bool:
        """Replay the script on *t1* and compare against *t2*."""
        return self.edit.verify(t1, t2)


def tree_diff(
    t1: Tree,
    t2: Tree,
    config: Optional[MatchConfig] = None,
    schema: Optional[LabelSchema] = None,
    matching: Optional[Matching] = None,
    algorithm: str = "fast",
    postprocess: bool = True,
) -> DiffResult:
    """Compute the delta between an old tree and a new tree.

    Parameters
    ----------
    t1, t2:
        The old and new versions. Neither tree is mutated.
    config:
        Matching thresholds and comparators (:class:`MatchConfig`).
    schema:
        Label order for FastMatch; inferred when omitted.
    matching:
        A pre-computed matching (e.g. from keys); when given, the matching
        algorithms are skipped entirely.
    algorithm:
        ``"fast"`` (FastMatch, default) or ``"simple"`` (Algorithm Match).
    postprocess:
        Run the Section 8 top-down repair pass after matching.

    Returns
    -------
    DiffResult
        The matching used, the edit script result, and instrumentation.
    """
    stats = MatchingStats()
    repairs = 0
    if matching is None:
        if algorithm == "fast":
            matching = fast_match(t1, t2, config, schema, stats)
        elif algorithm == "simple":
            matching = simple_match(t1, t2, config, stats)
        else:
            raise ValueError(
                f"unknown matching algorithm {algorithm!r}; "
                f"expected 'fast' or 'simple'"
            )
        if postprocess:
            repairs = postprocess_matching(t1, t2, matching, config, stats)
    edit = generate_edit_script(t1, t2, matching)
    return DiffResult(
        matching=matching,
        edit=edit,
        match_stats=stats,
        postprocess_repairs=repairs,
    )
