"""Top-level change-detection API.

:func:`tree_diff` is a thin compatibility wrapper over
:class:`repro.pipeline.DiffPipeline`, which wires the paper's two
subproblems together: find a good matching (FastMatch by default),
optionally repair it (Section 8 post-processing), then generate the minimum
conforming edit script (Algorithm EditScript). This is the function most
applications need; the pieces remain individually importable for custom
pipelines, and the pipeline itself (with its staged :class:`Trace`
instrumentation and shared per-tree indexes) is the extension point for
everything else.
"""

from __future__ import annotations

from typing import Optional

from .core.tree import Tree
from .matching.criteria import MatchConfig
from .matching.matching import Matching
from .matching.schema import LabelSchema
from .pipeline import DiffConfig, DiffPipeline, DiffResult

__all__ = ["DiffResult", "tree_diff"]


def tree_diff(
    t1: Tree,
    t2: Tree,
    config: Optional[MatchConfig] = None,
    schema: Optional[LabelSchema] = None,
    matching: Optional[Matching] = None,
    algorithm: str = "fast",
    postprocess: bool = True,
) -> DiffResult:
    """Compute the delta between an old tree and a new tree.

    Parameters
    ----------
    t1, t2:
        The old and new versions. Neither tree is mutated.
    config:
        Matching thresholds and comparators (:class:`MatchConfig`).
    schema:
        Label order for FastMatch; inferred when omitted.
    matching:
        A pre-computed matching (e.g. from keys); when given, the matching
        algorithms are skipped entirely.
    algorithm:
        ``"fast"`` (FastMatch, default) or ``"simple"`` (Algorithm Match).
    postprocess:
        Run the Section 8 top-down repair pass after matching.

    Returns
    -------
    DiffResult
        The matching used, the edit script result, instrumentation, and
        the pipeline :class:`~repro.pipeline.Trace`.

    Raises
    ------
    repro.core.errors.ConfigError
        Immediately — before any work is done — when *algorithm* or any
        threshold is invalid.
    """
    pipeline = DiffPipeline(
        DiffConfig(
            algorithm=algorithm,
            match=config,
            schema=schema,
            postprocess=postprocess,
        )
    )
    return pipeline.run(t1, t2, matching=matching)
