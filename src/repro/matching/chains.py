"""Label-chain helpers shared by FastMatch and A(k).

``chain_T(l)`` (paper §5.3): "all nodes with a given label l in tree T are
chained together from left to right". Both matchers walk these chains; the
helpers here build them in one preorder pass and merge label lists while
preserving first-seen order.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.node import Node
from ..core.tree import Tree


def label_chains(tree: Tree) -> Dict[str, List[Node]]:
    """All label chains of a tree: label -> nodes in left-to-right order."""
    chains: Dict[str, List[Node]] = {}
    for node in tree.preorder():
        chains.setdefault(node.label, []).append(node)
    return chains


def ordered_label_union(first: List[str], second: List[str]) -> List[str]:
    """Union of two label lists preserving first-seen order."""
    seen: Dict[str, None] = {}
    for label in first:
        seen.setdefault(label, None)
    for label in second:
        seen.setdefault(label, None)
    return list(seen)
