"""Algorithm *Match* (paper Section 5.2, Figure 10).

The straightforward quadratic matcher: every node of ``T1`` is compared, in
bottom-up order, against every still-unmatched node of ``T2`` with the same
label, using the Criterion 1 predicate for leaves and the Criterion 2
predicate for internal nodes. Leaves are matched before any internal node so
that ``common(x, y)`` is fully populated when internal nodes are examined
(Example 5.1 matches all sentences, then paragraphs, then the document).

Running time is ``O(n^2 c + mn)`` (Appendix B): ``n`` leaves compared
pairwise at cost ``c`` each, plus subtree intersections for the ``m``
internal nodes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.node import Node
from ..core.tree import Tree
from .criteria import CriteriaContext, MatchConfig, MatchingStats, apply_root_policy
from .matching import Matching


def match(
    t1: Tree,
    t2: Tree,
    config: Optional[MatchConfig] = None,
    stats: Optional[MatchingStats] = None,
    context: Optional[CriteriaContext] = None,
) -> Matching:
    """Run Algorithm Match and return the resulting (maximal) matching.

    A prebuilt *context* (the pipeline's, carrying shared tree indexes)
    makes Criterion-2 evaluation use the indexed fast path and reuses the
    index's label chains as the candidate buckets.
    """
    if context is None:
        context = CriteriaContext(t1, t2, config, stats)
    matching = Matching()

    # Unmatched T2 candidates bucketed by label, in document order.
    if context.index2 is not None:
        candidates: Dict[str, List[Node]] = context.index2.chains()
    else:
        candidates = {}
        for node in t2.preorder():
            candidates.setdefault(node.label, []).append(node)
    matched2: set = set()

    def try_match(x: Node) -> None:
        for y in candidates.get(x.label, ()):
            if y.id in matched2:
                continue
            if x.is_leaf != y.is_leaf:
                continue
            if context.nodes_equal(x, y, matching):
                matching.add(x.id, y.id)
                matched2.add(y.id)
                return

    # Pass 1: all leaves of T1 in document order.
    for x in t1.leaves():
        try_match(x)
    # Pass 2: internal nodes bottom-up. Sorting by subtree height guarantees
    # every descendant is considered before its ancestors, independent of
    # any label schema.
    internals = [node for node in t1.preorder() if not node.is_leaf]
    internals.sort(key=_height)
    for x in internals:
        try_match(x)
    apply_root_policy(t1, t2, matching, context.config)
    return matching


def _height(node: Node) -> int:
    """Height of *node*'s subtree (leaves have height 0)."""
    best = 0
    stack: List[Tuple[Node, int]] = [(node, 0)]
    while stack:
        current, depth = stack.pop()
        if current.is_leaf:
            best = max(best, depth)
        else:
            stack.extend((child, depth + 1) for child in current.children)
    return best
