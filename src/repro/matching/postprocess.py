"""Top-down repair pass for Criterion-3 violations (paper Section 8).

When Matching Criterion 3 fails (near-duplicate leaves), FastMatch may pair
a node with a "copy" far from its true counterpart. The paper's remedy:
proceeding top-down, for every matched pair ``(x, y)`` and every child ``c``
of ``x`` whose partner lives under some *other* parent, "we check if we can
match c to a child c'' of y such that compare(c, c'') <= f. If so, we change
the current matching to make c match c''."

Implementation notes:

* A candidate ``c''`` is stealable when it is unmatched **or** itself
  cross-matched (its partner's parent is not ``x``); re-anchoring then
  replaces at least one spurious move and never steals a straight match.
* A *fill* phase pairs remaining unmatched children of ``x`` with close
  unmatched children of ``y`` — this completes the swap when two duplicates
  were cross-matched (the steal leaves the other copy of each pair
  unmatched on both sides).
* The pass runs top-down and iterates to a small fixpoint (two rounds
  suffice: one steal round plus one fill round), since a steal at a node
  visited late can expose fill opportunities at a node visited earlier.
"""

from __future__ import annotations

from typing import Optional

from ..core.node import Node
from ..core.tree import Tree
from .criteria import CriteriaContext, MatchConfig, MatchingStats
from .matching import Matching

_MAX_ROUNDS = 2


def postprocess_matching(
    t1: Tree,
    t2: Tree,
    matching: Matching,
    config: Optional[MatchConfig] = None,
    stats: Optional[MatchingStats] = None,
    context: Optional[CriteriaContext] = None,
) -> int:
    """Repair *matching* in place; return the number of changed pairs.

    Passing the matcher's *context* (as the pipeline does) reuses its leaf
    counts and tree indexes instead of recomputing them for the repair pass.
    """
    if context is None:
        context = CriteriaContext(t1, t2, config, stats)
    total = 0
    for _ in range(_MAX_ROUNDS):
        changed = _one_round(t1, t2, matching, context)
        total += changed
        if not changed:
            break
    return total


def _one_round(
    t1: Tree, t2: Tree, matching: Matching, context: CriteriaContext
) -> int:
    repairs = 0
    for x in t1.bfs():  # top-down
        y_id = matching.partner1(x.id)
        if y_id is None:
            continue
        y = t2.get(y_id)
        repairs += _reanchor_children(x, y, t1, t2, matching, context)
        repairs += _fill_unmatched_children(x, y, t1, matching, context)
    return repairs


def _reanchor_children(
    x: Node,
    y: Node,
    t1: Tree,
    t2: Tree,
    matching: Matching,
    context: CriteriaContext,
) -> int:
    """Re-match cross-matched children of x to close children of y."""
    repairs = 0
    for c in x.children:
        partner_id = matching.partner1(c.id)
        if partner_id is None:
            continue
        partner = t2.get(partner_id)
        if partner.parent is y:
            continue  # straight match, leave it alone
        candidate = _find_candidate(c, x, y, t1, matching, context)
        if candidate is None:
            continue
        matching.remove(c.id, partner_id)
        stolen_from = matching.partner2(candidate.id)
        if stolen_from is not None:
            matching.remove(stolen_from, candidate.id)
        matching.add(c.id, candidate.id)
        repairs += 1
    return repairs


def _find_candidate(
    c: Node,
    x: Node,
    y: Node,
    t1: Tree,
    matching: Matching,
    context: CriteriaContext,
) -> Optional[Node]:
    """A close child of y that is unmatched or itself cross-matched."""
    for candidate in y.children:
        back_id = matching.partner2(candidate.id)
        if back_id is not None:
            # Only unmatched or cross-matched candidates may be (re)used; a
            # straight match — one whose partner already sits under x — is
            # off-limits.
            back = t1.get(back_id)
            if back.parent is x:
                continue
        if _close_enough(c, candidate, matching, context):
            return candidate
    return None


def _fill_unmatched_children(
    x: Node,
    y: Node,
    t1: Tree,
    matching: Matching,
    context: CriteriaContext,
) -> int:
    """Pair unmatched children of x with close children of y.

    Candidates may be unmatched or cross-matched (same steal rule as the
    re-anchor phase): when a far duplicate currently holds the spot of a
    straight pair, straightening it trades a spurious move for nothing and
    can only shorten the script.
    """
    repairs = 0
    for c in x.children:
        if matching.has1(c.id):
            continue
        candidate = _find_candidate(c, x, y, t1, matching, context)
        if candidate is None:
            continue
        stolen_from = matching.partner2(candidate.id)
        if stolen_from is not None:
            matching.remove(stolen_from, candidate.id)
        matching.add(c.id, candidate.id)
        repairs += 1
    return repairs


def _close_enough(
    c: Node, candidate: Node, matching: Matching, context: CriteriaContext
) -> bool:
    if c.is_leaf and candidate.is_leaf:
        return context.leaves_equal(c, candidate)
    if not c.is_leaf and not candidate.is_leaf:
        return context.internals_equal(c, candidate, matching)
    return False
