"""Key-based matching: the trivial case the paper sets aside (Section 5).

"If the information we are comparing does have unique identifiers, then our
algorithms can take advantage of them to quickly match fragments." This
module provides that fast path: nodes carrying equal keys (per a caller-
supplied key function) are matched directly in one linear pass, and any
keyless remainder can be handed to FastMatch via ``match_remainder``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..core.errors import MatchingError
from ..core.node import Node
from ..core.tree import Tree
from .criteria import MatchConfig
from .fastmatch import fast_match
from .matching import Matching

#: Extracts a matching key from a node; ``None`` means "keyless node".
KeyFn = Callable[[Node], Optional[Any]]


def match_by_keys(
    t1: Tree,
    t2: Tree,
    key_fn: KeyFn,
    require_same_label: bool = True,
) -> Matching:
    """Match nodes whose keys are equal (and labels, unless disabled).

    Keys must be unique within each tree among keyed nodes; duplicates raise
    :class:`MatchingError` since a key that is not a key cannot anchor a
    one-to-one matching.
    """
    index2: Dict[Any, Node] = {}
    for node in t2.preorder():
        key = key_fn(node)
        if key is None:
            continue
        if key in index2:
            raise MatchingError(f"duplicate key {key!r} in new tree")
        index2[key] = node
    matching = Matching()
    seen1: Dict[Any, Node] = {}
    for node in t1.preorder():
        key = key_fn(node)
        if key is None:
            continue
        if key in seen1:
            raise MatchingError(f"duplicate key {key!r} in old tree")
        seen1[key] = node
        partner = index2.get(key)
        if partner is None:
            continue
        if require_same_label and node.label != partner.label:
            continue
        matching.add(node.id, partner.id)
    return matching


def match_with_keys_then_values(
    t1: Tree,
    t2: Tree,
    key_fn: KeyFn,
    config: Optional[MatchConfig] = None,
) -> Matching:
    """Hybrid matcher: keys first, FastMatch for the keyless remainder.

    The key-derived pairs are fixed; FastMatch then runs normally and its
    proposals are merged for nodes both sides of which are still unmatched.
    """
    matching = match_by_keys(t1, t2, key_fn)
    proposed = fast_match(t1, t2, config)
    for x_id, y_id in proposed.pairs():
        if not matching.has1(x_id) and not matching.has2(y_id):
            matching.add(x_id, y_id)
    return matching
