"""The parameterized matcher A(k) (paper §9 future work).

"Further studying the tradeoff between optimality and efficiency to produce
a parameterized algorithm A(k) where the parameter k specifies the desired
level of optimality."

This module realizes that plan. ``A(k)`` runs FastMatch's LCS sweep per
label chain (cheap, order-respecting), but bounds the quadratic fallback for
leftovers: an unmatched node is only compared against unmatched candidates
within a window of ``k`` chain positions around its own rank. The knob
interpolates between the extremes:

* ``k = 0`` — LCS only: linear-ish, misses anything that changed relative
  order (moves surface as delete + insert);
* small ``k`` — local moves are found, long-distance moves are not;
  fallback cost is ``O(n k)``;
* ``k = None`` (unbounded) — identical to Algorithm FastMatch.

Whatever k, the resulting matching is *correct* input for Algorithm
EditScript — only the script's optimality (cost) degrades, mirroring the
paper's efficiency/optimality trade.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.node import Node
from ..core.tree import Tree
from ..lcs.myers import myers_lcs
from .chains import label_chains, ordered_label_union
from .criteria import CriteriaContext, MatchConfig, MatchingStats, apply_root_policy
from .matching import Matching
from .schema import LabelSchema


def parameterized_match(
    t1: Tree,
    t2: Tree,
    k: Optional[int] = None,
    config: Optional[MatchConfig] = None,
    schema: Optional[LabelSchema] = None,
    stats: Optional[MatchingStats] = None,
) -> Matching:
    """Run A(k): FastMatch with a fallback window of *k* chain positions.

    ``k=None`` gives exactly FastMatch; ``k=0`` disables the fallback.
    """
    if k is not None and k < 0:
        raise ValueError(f"k must be >= 0 or None, got {k}")
    context = CriteriaContext(t1, t2, config, stats)
    matching = Matching()
    if schema is None:
        schema = LabelSchema.infer([t1, t2])

    chains1 = label_chains(t1)
    chains2 = label_chains(t2)

    leaf_labels = ordered_label_union(t1.leaf_labels(), t2.leaf_labels())
    internal_labels = schema.sort_labels(
        ordered_label_union(t1.internal_labels(), t2.internal_labels())
    )

    for label in leaf_labels:
        _match_label(
            label,
            [n for n in chains1.get(label, ()) if n.is_leaf],
            [n for n in chains2.get(label, ()) if n.is_leaf],
            matching, context, k, leaf=True,
        )
    for label in internal_labels:
        _match_label(
            label,
            [n for n in chains1.get(label, ()) if not n.is_leaf],
            [n for n in chains2.get(label, ()) if not n.is_leaf],
            matching, context, k, leaf=False,
        )
    apply_root_policy(t1, t2, matching, context.config)
    return matching


def _match_label(
    label: str,
    s1: List[Node],
    s2: List[Node],
    matching: Matching,
    context: CriteriaContext,
    k: Optional[int],
    leaf: bool,
) -> None:
    if not s1 or not s2:
        return
    if leaf:
        equal = lambda x, y: context.leaves_equal(x, y)  # noqa: E731
    else:
        equal = lambda x, y: context.internals_equal(x, y, matching)  # noqa: E731

    context.stats.lcs_calls += 1
    for x, y in myers_lcs(s1, s2, equal):
        matching.add(x.id, y.id)

    if k == 0:
        return

    # Bounded fallback: each leftover in s1 scans candidates whose chain
    # rank lies within +-k of its own (all leftovers when k is None).
    rank2 = {id(node): index for index, node in enumerate(s2)}
    leftovers2 = [y for y in s2 if not matching.has2(y.id)]
    if not leftovers2:
        return
    for index1, x in enumerate(s1):
        if matching.has1(x.id):
            continue
        for y in leftovers2:
            if matching.has2(y.id):
                continue
            if k is not None and abs(rank2[id(y)] - index1) > k:
                continue
            if equal(x, y):
                matching.add(x.id, y.id)
                break


