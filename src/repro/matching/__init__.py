"""The Good Matching problem: criteria, schemas, and matching algorithms."""

from .criteria import (
    CriteriaContext,
    MatchConfig,
    MatchingStats,
    criterion3_holds,
    criterion3_violations,
    matching_satisfies_criteria,
)
from .fastmatch import fast_match
from .keyed import match_by_keys, match_with_keys_then_values
from .matching import Matching
from .parameterized import parameterized_match
from .postprocess import postprocess_matching
from .schema import DOCUMENT_SCHEMA, LabelSchema
from .simple import match

__all__ = [
    "CriteriaContext",
    "DOCUMENT_SCHEMA",
    "LabelSchema",
    "MatchConfig",
    "Matching",
    "MatchingStats",
    "criterion3_holds",
    "criterion3_violations",
    "fast_match",
    "match",
    "match_by_keys",
    "match_with_keys_then_values",
    "matching_satisfies_criteria",
    "parameterized_match",
    "postprocess_matching",
]
