"""One-to-one node matchings between two trees (Section 3.1).

A matching pairs node identifiers of the old tree ``T1`` with node
identifiers of the new tree ``T2``. Matchings are *partial* (not every node
participates) until the edit-script generator extends them to *total*
matchings. The class enforces the one-to-one property eagerly.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Optional, Tuple

from ..core.errors import MatchingError


class Matching:
    """A one-to-one partial matching between two node-id spaces."""

    def __init__(self, pairs: Optional[Iterable[Tuple[Any, Any]]] = None) -> None:
        self._forward: Dict[Any, Any] = {}  # T1 id -> T2 id
        self._backward: Dict[Any, Any] = {}  # T2 id -> T1 id
        if pairs:
            for x, y in pairs:
                self.add(x, y)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, x: Any, y: Any) -> None:
        """Match T1 node *x* with T2 node *y*.

        Raises :class:`MatchingError` when either side is already matched to
        a different node (re-adding the same pair is a no-op).
        """
        existing_y = self._forward.get(x)
        existing_x = self._backward.get(y)
        if existing_y is not None or existing_x is not None:
            if existing_y == y and existing_x == x:
                return
            raise MatchingError(
                f"cannot match ({x!r}, {y!r}): "
                f"{x!r} is matched to {existing_y!r} and "
                f"{y!r} is matched to {existing_x!r}"
            )
        self._forward[x] = y
        self._backward[y] = x

    def remove(self, x: Any, y: Any) -> None:
        """Remove the pair (x, y); raises if it is not present."""
        if self._forward.get(x) != y:
            raise MatchingError(f"pair ({x!r}, {y!r}) not in matching")
        del self._forward[x]
        del self._backward[y]

    def replace(self, x: Any, y: Any) -> None:
        """Match *x* with *y*, unmatching whatever they were paired with."""
        old_y = self._forward.pop(x, None)
        if old_y is not None:
            del self._backward[old_y]
        old_x = self._backward.pop(y, None)
        if old_x is not None:
            del self._forward[old_x]
        self._forward[x] = y
        self._backward[y] = x

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def partner1(self, x: Any) -> Optional[Any]:
        """Partner in T2 of T1 node *x*, or ``None`` if unmatched."""
        return self._forward.get(x)

    def partner2(self, y: Any) -> Optional[Any]:
        """Partner in T1 of T2 node *y*, or ``None`` if unmatched."""
        return self._backward.get(y)

    def has1(self, x: Any) -> bool:
        """True when T1 node *x* participates in the matching."""
        return x in self._forward

    def has2(self, y: Any) -> bool:
        """True when T2 node *y* participates in the matching."""
        return y in self._backward

    def contains(self, x: Any, y: Any) -> bool:
        """True when the specific pair (x, y) is in the matching."""
        return self._forward.get(x) == y

    def __contains__(self, pair: Tuple[Any, Any]) -> bool:
        x, y = pair
        return self.contains(x, y)

    def __len__(self) -> int:
        return len(self._forward)

    def pairs(self) -> Iterator[Tuple[Any, Any]]:
        """Iterate over (T1 id, T2 id) pairs in insertion order."""
        return iter(self._forward.items())

    def copy(self) -> "Matching":
        clone = Matching()
        clone._forward = dict(self._forward)
        clone._backward = dict(self._backward)
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Matching):
            return NotImplemented
        return self._forward == other._forward

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Matching({len(self)} pairs)"
