"""Label schemas and the acyclic-labels condition (Section 5.1).

Many structuring schemas satisfy an *acyclic labels* condition: there is an
ordering ``<`` on labels such that a node labeled ``l1`` appears as a
descendant of a node labeled ``l2`` only if ``l1 < l2`` (e.g. Sentence <
Paragraph < Subsection < Section < Document). FastMatch relies on this order
to match deeper labels before shallower ones.

When the observed parent/child label relation has cycles (the paper's
example: itemize / enumerate / description lists nesting in each other), the
paper's remedy is to *merge* the offending labels into one. The inference
here does the same: strongly connected label groups are collapsed and every
member shares the group's rank; callers can also normalize such labels to a
single name at parse time (the LaTeX parser maps all list environments to
``"list"`` for exactly this reason).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..core.errors import SchemaError
from ..core.tree import Tree


class LabelSchema:
    """An ordering of labels from leaf-most (rank 0) to root-most.

    Construct either from a declared order (deepest first)::

        schema = LabelSchema(["S", "P", "Sec", "D"])

    or infer one from the trees being compared::

        schema = LabelSchema.infer([t1, t2])
    """

    def __init__(self, order: Sequence[Iterable[str]]) -> None:
        """*order* lists labels deepest-first; an entry may be a single label
        or an iterable of labels sharing a rank (a merged cycle group)."""
        self._rank: Dict[str, int] = {}
        self._groups: List[Tuple[str, ...]] = []
        for rank, entry in enumerate(order):
            labels = (entry,) if isinstance(entry, str) else tuple(entry)
            if not labels:
                raise SchemaError(f"empty label group at rank {rank}")
            for label in labels:
                if label in self._rank:
                    raise SchemaError(f"label {label!r} appears twice in schema")
                self._rank[label] = rank
            self._groups.append(labels)

    # ------------------------------------------------------------------
    @classmethod
    def infer(cls, trees: Iterable[Tree]) -> "LabelSchema":
        """Infer a bottom-up label order from observed parent-child edges.

        Builds the digraph ``child_label -> parent_label`` over all given
        trees, collapses strongly connected components (label cycles), and
        returns the topological order of the condensation, deepest first.
        """
        edges: Set[Tuple[str, str]] = set()
        labels: Set[str] = set()
        for tree in trees:
            for node in tree.preorder():
                labels.add(node.label)
                for child in node.children:
                    edges.add((child.label, node.label))
        if not labels:
            return cls([])
        components = _tarjan_scc(labels, edges)
        # Map each label to its component index, then topo-sort components
        # along child -> parent edges (Kahn), children first.
        comp_of: Dict[str, int] = {}
        for idx, comp in enumerate(components):
            for label in comp:
                comp_of[label] = idx
        comp_edges: Set[Tuple[int, int]] = set()
        for child, parent in edges:
            a, b = comp_of[child], comp_of[parent]
            if a != b:
                comp_edges.add((a, b))
        indegree = {i: 0 for i in range(len(components))}
        successors: Dict[int, List[int]] = {i: [] for i in range(len(components))}
        for a, b in comp_edges:
            indegree[b] += 1
            successors[a].append(b)
        ready = sorted(i for i, deg in indegree.items() if deg == 0)
        order: List[Tuple[str, ...]] = []
        while ready:
            current = ready.pop(0)
            order.append(tuple(sorted(components[current])))
            for nxt in sorted(successors[current]):
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(components):  # pragma: no cover - SCCs prevent this
            raise SchemaError("label graph condensation is cyclic")
        return cls(order)

    # ------------------------------------------------------------------
    def rank(self, label: str) -> int:
        """Rank of a label (0 = deepest). Unknown labels raise."""
        try:
            return self._rank[label]
        except KeyError:
            raise SchemaError(f"label {label!r} not in schema") from None

    def knows(self, label: str) -> bool:
        return label in self._rank

    def labels(self) -> List[str]:
        """All labels, deepest rank first."""
        return [label for group in self._groups for label in group]

    def merged_groups(self) -> List[Tuple[str, ...]]:
        """Label groups that were merged to break cycles (size > 1)."""
        return [group for group in self._groups if len(group) > 1]

    def is_acyclic(self) -> bool:
        """True when no labels had to be merged (strict acyclicity)."""
        return not self.merged_groups()

    def sort_labels(self, labels: Iterable[str]) -> List[str]:
        """Sort the given labels deepest-first; unknown labels sort last
        in first-seen order (stable)."""
        indexed = list(labels)
        fallback = {label: i for i, label in enumerate(indexed)}
        return sorted(
            indexed,
            key=lambda l: (self._rank.get(l, len(self._groups)), fallback[l]),
        )

    def validate_tree(self, tree: Tree) -> None:
        """Raise :class:`SchemaError` if *tree* violates the schema order.

        Every child's rank must be strictly lower than its parent's rank,
        except within a merged group (equal ranks allowed there).
        """
        for node in tree.preorder():
            for child in node.children:
                parent_rank = self.rank(node.label)
                child_rank = self.rank(child.label)
                if child_rank > parent_rank or (
                    child_rank == parent_rank and node.label != child.label
                    and child.label not in self._group_of(node.label)
                ):
                    raise SchemaError(
                        f"label {child.label!r} (rank {child_rank}) may not "
                        f"appear under {node.label!r} (rank {parent_rank})"
                    )

    def _group_of(self, label: str) -> Tuple[str, ...]:
        return self._groups[self.rank(label)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LabelSchema({self._groups!r})"


#: The paper's running document schema (Section 5.1 example).
DOCUMENT_SCHEMA = LabelSchema(["S", ("item",), ("list",), "P", "SubSec", "Sec", "D"])


def _tarjan_scc(
    labels: Set[str], edges: Set[Tuple[str, str]]
) -> List[List[str]]:
    """Iterative Tarjan SCC over the label digraph; deterministic output."""
    adjacency: Dict[str, List[str]] = {label: [] for label in labels}
    for a, b in sorted(edges):
        adjacency[a].append(b)
    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    components: List[List[str]] = []

    for start in sorted(labels):
        if start in index_of:
            continue
        work = [(start, iter(adjacency[start]))]
        index_of[start] = lowlink[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, neighbors = work[-1]
            advanced = False
            for nxt in neighbors:
                if nxt not in index_of:
                    index_of[nxt] = lowlink[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(adjacency[nxt])))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
    return components
