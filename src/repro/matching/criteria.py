"""Matching criteria 1-3 and the equality predicates they induce (Section 5).

* **Criterion 1** (leaves): ``(x, y)`` may match only if labels agree and
  ``compare(v(x), v(y)) <= f`` for a parameter ``0 <= f <= 1``.
* **Criterion 2** (internal nodes): labels agree and
  ``|common(x, y)| / max(|x|, |y|) > t`` for ``1/2 <= t <= 1``, where
  ``common`` counts matched leaf pairs contained in both subtrees.
* **Criterion 3** (domain property): every leaf of one tree is "close"
  (``compare <= 1``) to at most one leaf of the other. When it holds — and
  labels are acyclic — the maximal matching is unique (Theorem 5.2) and
  FastMatch is optimal; :func:`criterion3_violations` measures how badly a
  given input breaks it (used by the Table 1 analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .._compat import DATACLASS_SLOTS
from ..compare.generic import CompareRegistry
from ..core.errors import ConfigError
from ..core.index import TreeIndex
from ..core.node import Node
from ..core.tree import Tree
from .matching import Matching

#: Node-level comparator: distance in [0, 2] between two nodes' values.
NodeCompare = Callable[[Node, Node], float]


@dataclass(**DATACLASS_SLOTS)
class MatchingStats:
    """Instrumentation counters for the §8 performance study.

    ``leaf_compares`` is the paper's ``r1`` (invocations of ``compare``);
    ``partner_checks`` is ``r2`` (cheap integer comparisons performed while
    evaluating Criterion 2 on internal nodes).
    """

    leaf_compares: int = 0
    partner_checks: int = 0
    lcs_calls: int = 0

    def combined(self, c: float = 1.0) -> float:
        """Weighted total ``r1 * c + r2`` from the paper's cost formula."""
        return self.leaf_compares * c + self.partner_checks


@dataclass
class MatchConfig:
    """Parameters of the Good Matching problem.

    Attributes
    ----------
    f:
        Leaf distance threshold of Criterion 1 (``0 <= f <= 1``).
    t:
        Internal-node containment threshold of Criterion 2
        (``1/2 <= t <= 1``). This is LaDiff's "match threshold" parameter.
    registry:
        Comparator registry that realizes ``compare``; defaults to word-LCS
        for strings.
    match_empty_internals:
        Criterion 2's ratio is 0/0 for internal nodes without leaf
        descendants; when True (default) two such nodes may match if their
        labels agree.
    always_match_roots:
        When True (default), two same-labeled roots that survived the main
        pass unmatched are paired anyway. Document roots represent "the
        document" regardless of content overlap; without this, heavily
        edited small documents degrade to a full delete/re-insert (the
        paper's dummy-root wrap handles correctness but yields much larger
        scripts). Extension over the paper's criteria.
    """

    f: float = 0.6
    t: float = 0.5
    registry: CompareRegistry = field(default_factory=CompareRegistry)
    match_empty_internals: bool = True
    always_match_roots: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.f <= 1.0:
            raise ConfigError(f"f must be in [0, 1], got {self.f}")
        if not 0.5 <= self.t <= 1.0:
            raise ConfigError(f"t must be in [1/2, 1], got {self.t}")

    def compare_nodes(self, x: Node, y: Node) -> float:
        """``compare`` on two nodes' values, routed by the first label."""
        return self.registry.compare(x.value, y.value, x.label)


class CriteriaContext:
    """Shared per-run state: leaf counts, containment tests, counters.

    When prebuilt :class:`~repro.core.index.TreeIndex` objects are supplied
    (the pipeline's ``index`` stage builds them once per tree), Criterion-2
    evaluation runs on the indexed fast path: contained leaves come from the
    index's flat leaf spans and containment is one preorder-interval
    comparison instead of a parent-chain ascent. Without indexes the context
    falls back to the naive walks, which keeps the two paths directly
    comparable (see ``benchmarks/bench_pipeline.py``).
    """

    __slots__ = ("t1", "t2", "config", "stats", "index1", "index2", "_leaf_counts")

    def __init__(
        self,
        t1: Tree,
        t2: Tree,
        config: Optional[MatchConfig] = None,
        stats: Optional[MatchingStats] = None,
        index1: Optional[TreeIndex] = None,
        index2: Optional[TreeIndex] = None,
    ) -> None:
        self.t1 = t1
        self.t2 = t2
        self.config = config if config is not None else MatchConfig()
        self.stats = stats if stats is not None else MatchingStats()
        self.index1 = index1
        self.index2 = index2
        self._leaf_counts: Dict[Any, int] = {}
        if index1 is None:
            self._precompute_leaf_counts(t1)
        if index2 is None:
            self._precompute_leaf_counts(t2)

    def _precompute_leaf_counts(self, tree: Tree) -> None:
        # Postorder accumulation: one pass, no per-node subtree walks.
        for node in tree.postorder():
            if node.is_leaf:
                self._leaf_counts[id(node)] = 1
            else:
                self._leaf_counts[id(node)] = sum(
                    self._leaf_counts[id(child)] for child in node.children
                )

    def _index_for(self, node: Node) -> Optional[TreeIndex]:
        """The index that owns *node*, if any (identity-checked)."""
        if self.index1 is not None and self.index1.owns(node):
            return self.index1
        if self.index2 is not None and self.index2.owns(node):
            return self.index2
        return None

    def leaf_count(self, node: Node) -> int:
        """``|x|``: number of leaves contained in *node*'s subtree."""
        index = self._index_for(node)
        if index is not None:
            return index.leaf_count(node.id)
        count = self._leaf_counts.get(id(node))
        if count is None:  # node created after context construction
            count = node.leaf_count()
            self._leaf_counts[id(node)] = count
        return count

    # ------------------------------------------------------------------
    # Criterion 1
    # ------------------------------------------------------------------
    def leaves_equal(self, x: Node, y: Node) -> bool:
        """The paper's ``equal`` for leaves (Section 5.2)."""
        if x.label != y.label:
            return False
        self.stats.leaf_compares += 1
        return self.config.compare_nodes(x, y) <= self.config.f

    # ------------------------------------------------------------------
    # Criterion 2
    # ------------------------------------------------------------------
    def common_count(self, x: Node, y: Node, matching: Matching) -> int:
        """``|common(x, y)|``: matched leaf pairs contained in both subtrees.

        Implemented by walking the leaves of ``x`` and checking whether each
        partner lies under ``y``; every containment test counts as one
        partner check (the paper's ``r2``). With tree indexes the whole
        evaluation is arena index arithmetic — leaf identifiers come from a
        precomputed span over the flat leaf-position array and each
        containment test is one preorder-interval comparison, with no node
        objects touched. Both paths count ``r2`` identically.
        """
        index1, index2 = self.index1, self.index2
        if (
            index1 is not None
            and index2 is not None
            and index1.owns(x)
            and index2.owns(y)
        ):
            arena1 = index1.arena
            arena2 = index2.arena
            node_ids1 = arena1.node_ids
            leaf_positions = index1.leaf_position_array()
            start, stop = index1.leaf_span(x.id)
            pos_of2 = arena2.pos_of
            y_pos = pos_of2[y.id]
            y_end = y_pos + arena2.subtree_size[y_pos]
            partner1 = matching.partner1
            stats = self.stats
            count = 0
            for i in range(start, stop):
                partner_id = partner1(node_ids1[leaf_positions[i]])
                stats.partner_checks += 1
                if partner_id is None:
                    continue
                partner_pos = pos_of2[partner_id]
                if y_pos < partner_pos < y_end:
                    count += 1
            return count
        count = 0
        for leaf in x.leaves():
            partner_id = matching.partner1(leaf.id)
            self.stats.partner_checks += 1
            if partner_id is None:
                continue
            partner = self.t2.get(partner_id)
            if _is_under(partner, y):
                count += 1
        return count

    def internals_equal(self, x: Node, y: Node, matching: Matching) -> bool:
        """The paper's ``equal`` for internal nodes (Section 5.2).

        ``|x|`` counts the leaves an internal node *contains*; a childless
        internal node (e.g. an emptied paragraph) contains none, so such
        pairs fall back to the ``match_empty_internals`` policy.
        """
        if x.label != y.label:
            return False
        size_x = 0 if x.is_leaf else self.leaf_count(x)
        size_y = 0 if y.is_leaf else self.leaf_count(y)
        biggest = max(size_x, size_y)
        if biggest == 0:
            return self.config.match_empty_internals
        common = self.common_count(x, y, matching)
        return common / biggest > self.config.t

    def nodes_equal(self, x: Node, y: Node, matching: Matching) -> bool:
        """Dispatch to the leaf or internal predicate by node kind."""
        if x.is_leaf and y.is_leaf:
            return self.leaves_equal(x, y)
        if x.is_leaf or y.is_leaf:
            # A leaf and an internal node never match: Criterion 1 cannot be
            # evaluated on an interior node's (typically null) value and
            # Criterion 2 needs two subtrees.
            return False
        return self.internals_equal(x, y, matching)


def apply_root_policy(t1: Tree, t2: Tree, matching: Matching, config: MatchConfig) -> None:
    """Pair unmatched same-label roots when the config asks for it."""
    if not config.always_match_roots:
        return
    if t1.root is None or t2.root is None:
        return
    if matching.has1(t1.root.id) or matching.has2(t2.root.id):
        return
    if t1.root.label == t2.root.label:
        matching.add(t1.root.id, t2.root.id)


def _is_under(node: Node, ancestor: Node) -> bool:
    """True when *ancestor* is a proper ancestor of *node*."""
    current = node.parent
    while current is not None:
        if current is ancestor:
            return True
        current = current.parent
    return False


# ---------------------------------------------------------------------------
# Criterion 3 diagnostics
# ---------------------------------------------------------------------------
def criterion3_violations(
    t1: Tree,
    t2: Tree,
    config: Optional[MatchConfig] = None,
) -> List[Tuple[Node, List[Node]]]:
    """Return leaves with more than one "close" counterpart.

    For each leaf ``x`` of ``t1``, collect the leaves ``y`` of ``t2`` with
    the same label and ``compare(v(x), v(y)) <= 1``; pairs with two or more
    candidates violate Matching Criterion 3. (The symmetric direction is
    obtained by swapping arguments.) Quadratic — intended for analysis and
    tests, not for the matching hot path.
    """
    config = config if config is not None else MatchConfig()
    leaves2_by_label: Dict[str, List[Node]] = {}
    for leaf in t2.leaves():
        leaves2_by_label.setdefault(leaf.label, []).append(leaf)
    violations: List[Tuple[Node, List[Node]]] = []
    for x in t1.leaves():
        close = [
            y
            for y in leaves2_by_label.get(x.label, ())
            if config.compare_nodes(x, y) <= 1.0
        ]
        if len(close) > 1:
            violations.append((x, close))
    return violations


def criterion3_holds(
    t1: Tree,
    t2: Tree,
    config: Optional[MatchConfig] = None,
) -> bool:
    """True when Matching Criterion 3 holds in both directions."""
    return not criterion3_violations(t1, t2, config) and not criterion3_violations(
        t2, t1, config
    )


def matching_satisfies_criteria(
    matching: Matching,
    t1: Tree,
    t2: Tree,
    config: Optional[MatchConfig] = None,
) -> bool:
    """Validate that every pair of *matching* satisfies Criteria 1 and 2."""
    context = CriteriaContext(t1, t2, config)
    for x_id, y_id in matching.pairs():
        x, y = t1.get(x_id), t2.get(y_id)
        if x.is_leaf and y.is_leaf:
            if not context.leaves_equal(x, y):
                return False
        elif x.is_leaf or y.is_leaf:
            return False
        elif not context.internals_equal(x, y, matching):
            return False
    return True
