"""Algorithm *FastMatch* (paper Section 5.3, Figure 11).

FastMatch exploits the fact that two versions of a document are usually
nearly alike: for each label, the node chains of the two trees are first
aligned with one LCS pass (matching everything that appears in the same
order), and only the leftovers fall back to the quadratic pairing of
Algorithm Match. Leaf labels are processed first, then internal labels in
bottom-up (schema) order so Criterion 2 sees fully matched descendants.

Running time is ``O((ne + e^2) c + 2lne)`` (Appendix B), where ``e`` is the
weighted edit distance — far below Match's ``O(n^2 c + mn)`` when the trees
are similar (``e << n``).
"""

from __future__ import annotations

from typing import List, Optional

from ..core.node import Node
from ..core.tree import Tree
from ..lcs.myers import myers_lcs
from .chains import label_chains, ordered_label_union
from .criteria import CriteriaContext, MatchConfig, MatchingStats, apply_root_policy
from .matching import Matching
from .schema import LabelSchema


def fast_match(
    t1: Tree,
    t2: Tree,
    config: Optional[MatchConfig] = None,
    schema: Optional[LabelSchema] = None,
    stats: Optional[MatchingStats] = None,
    context: Optional[CriteriaContext] = None,
) -> Matching:
    """Run Algorithm FastMatch and return the resulting matching.

    Parameters
    ----------
    config:
        Thresholds ``f`` and ``t`` plus the compare registry.
    schema:
        Label order used to process internal labels bottom-up; inferred
        from the two trees when omitted.
    stats:
        Optional counter sink for the §8 instrumentation (``r1``/``r2``).
    context:
        A prebuilt :class:`CriteriaContext` (the pipeline shares one, with
        its tree indexes, across the match and postprocess stages). When it
        carries indexes, label chains and label lists come from the index
        instead of fresh preorder walks.
    """
    if context is None:
        context = CriteriaContext(t1, t2, config, stats)
    matching = Matching()
    if schema is None:
        schema = LabelSchema.infer([t1, t2])

    index1, index2 = context.index1, context.index2
    if index1 is not None and index2 is not None:
        # chain_T(l) and the label lists were computed by the index pass
        # from arena arrays; the leaf/internal split happens positionally
        # (one first_child test per chain entry) instead of re-filtering
        # full chains through node objects per label.
        leaf_labels = ordered_label_union(
            index1.leaf_labels(), index2.leaf_labels()
        )
        internal_labels = schema.sort_labels(
            ordered_label_union(index1.internal_labels(), index2.internal_labels())
        )
        for label in leaf_labels:
            _match_label(
                label,
                index1.leaf_chain(label),
                index2.leaf_chain(label),
                matching,
                context,
                leaf=True,
            )
        for label in internal_labels:
            _match_label(
                label,
                index1.internal_chain(label),
                index2.internal_chain(label),
                matching,
                context,
                leaf=False,
            )
        apply_root_policy(t1, t2, matching, context.config)
        return matching

    # chain_T(l) for both trees: label -> nodes in left-to-right order.
    chains1 = label_chains(t1)
    chains2 = label_chains(t2)
    leaf_labels = ordered_label_union(t1.leaf_labels(), t2.leaf_labels())
    internal_labels = schema.sort_labels(
        ordered_label_union(t1.internal_labels(), t2.internal_labels())
    )

    for label in leaf_labels:
        _match_label(
            label,
            [n for n in chains1.get(label, ()) if n.is_leaf],
            [n for n in chains2.get(label, ()) if n.is_leaf],
            matching,
            context,
            leaf=True,
        )
    for label in internal_labels:
        _match_label(
            label,
            [n for n in chains1.get(label, ()) if not n.is_leaf],
            [n for n in chains2.get(label, ()) if not n.is_leaf],
            matching,
            context,
            leaf=False,
        )
    apply_root_policy(t1, t2, matching, context.config)
    return matching


def _match_label(
    label: str,
    s1: List[Node],
    s2: List[Node],
    matching: Matching,
    context: CriteriaContext,
    leaf: bool,
) -> None:
    """Steps 2a-2e of Figure 11 for one label chain."""
    if not s1 or not s2:
        return

    if leaf:
        equal = lambda x, y: context.leaves_equal(x, y)  # noqa: E731
    else:
        equal = lambda x, y: context.internals_equal(x, y, matching)  # noqa: E731

    # 2c. One LCS pass matches everything that kept its relative order.
    context.stats.lcs_calls += 1
    for x, y in myers_lcs(s1, s2, equal):
        matching.add(x.id, y.id)

    # 2e. Pair remaining unmatched nodes as in Algorithm Match.
    leftovers2 = [y for y in s2 if not matching.has2(y.id)]
    if not leftovers2:
        return
    for x in s1:
        if matching.has1(x.id):
            continue
        for y in leftovers2:
            if matching.has2(y.id):
                continue
            if equal(x, y):
                matching.add(x.id, y.id)
                break


