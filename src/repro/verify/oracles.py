"""Conformance oracles: pure checkers over one diff's inputs and outputs.

The paper's guarantees are checkable end to end, and every oracle here is
the executable form of one of them:

* **matching validity** (§3.1, §5.2) — a matching is partial, one-to-one,
  references only real nodes, never pairs differing labels (the edit model
  has no relabel), and — where the matcher criteria apply — satisfies
  Criterion 1 on leaf pairs.
* **conformance** (§4, §5) — the generated edit script *conforms to* the
  matching: matched nodes are never deleted or re-inserted, every unmatched
  ``T2`` node is inserted exactly once, every unmatched ``T1`` node is
  deleted exactly once, and the generator's total matching ``M'`` extends
  the input matching to cover both trees.
* **replay isomorphism** (§3.1) — applying the script to ``T1`` yields a
  tree isomorphic to ``T2``; this is the paper's definition of a script
  *transforming* one tree into the other.
* **cost accounting** (§3.2) — the reported cost equals the sum of the
  individual operation costs under the result's cost model, and the script
  obeys the conservation law ``#INS - #DEL = |T2| - |T1|``.
* **delta consistency** (§6) — the delta tree's IDN/UPD/INS/DEL/MOV/MRK
  annotation counts agree with the edit script, on top of the §6
  correctness definition in :mod:`repro.deltatree.correctness`.
* **index consistency** — a fresh :class:`~repro.core.index.TreeIndex`
  over the replayed tree agrees with naive recomputation (sizes, leaf
  counts, spans, sibling ranks, containment), so every index-accelerated
  stage still sees correct structure after a round trip.

All oracles are pure: they take trees and results, never mutate them, and
return a list of :class:`Violation` (empty = pass). :func:`verify_result`
runs the whole battery and folds the outcome into a :class:`VerifyReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, TYPE_CHECKING

from ..core.index import TreeIndex
from ..core.isomorphism import first_difference, trees_isomorphic
from ..core.tree import Tree
from ..editscript.cost import DEFAULT_COST_MODEL, CostModel
from ..editscript.generator import EditScriptResult
from ..editscript.operations import Delete, Insert, Move, Update
from ..matching.criteria import CriteriaContext, MatchConfig
from ..matching.matching import Matching

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..pipeline import DiffResult

#: Canonical oracle names, in battery order.
ORACLES = (
    "matching_validity",
    "conformance",
    "replay_isomorphism",
    "cost_accounting",
    "delta_consistency",
    "index_consistency",
)

#: Violation samples retained per report (counters are exact regardless).
MAX_SAMPLES = 20


@dataclass
class Violation:
    """One concrete oracle failure: which invariant broke, and how."""

    oracle: str
    message: str
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = "".join(f" {k}={v!r}" for k, v in sorted(self.details.items()))
        return f"[{self.oracle}] {self.message}{extra}"


class VerifyReport:
    """Per-oracle pass/fail counters plus a bounded sample of violations.

    Reports are mergeable (:meth:`merge`) so a fuzz loop, a differential
    harness, and the serving layer's spot checks can all fold into one
    summary; :class:`repro.service.metrics.ServiceMetrics` absorbs reports
    via :meth:`repro.service.metrics.ServiceMetrics.absorb_verify_report`.
    """

    def __init__(self) -> None:
        self.passes: Dict[str, int] = {}
        self.failures: Dict[str, int] = {}
        self.samples: List[Violation] = []

    # ------------------------------------------------------------------
    def record(self, oracle: str, violations: List[Violation]) -> None:
        """Count one oracle evaluation and retain sample violations."""
        if violations:
            self.failures[oracle] = self.failures.get(oracle, 0) + 1
            for violation in violations:
                if len(self.samples) < MAX_SAMPLES:
                    self.samples.append(violation)
        else:
            self.passes[oracle] = self.passes.get(oracle, 0) + 1

    def merge(self, other: "VerifyReport") -> None:
        for oracle, count in other.passes.items():
            self.passes[oracle] = self.passes.get(oracle, 0) + count
        for oracle, count in other.failures.items():
            self.failures[oracle] = self.failures.get(oracle, 0) + count
        for violation in other.samples:
            if len(self.samples) < MAX_SAMPLES:
                self.samples.append(violation)

    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return not self.failures

    def total_checks(self) -> int:
        return sum(self.passes.values()) + sum(self.failures.values())

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly export (CLI ``--json``, metrics snapshots)."""
        oracles = sorted(set(self.passes) | set(self.failures))
        return {
            "ok": self.ok,
            "oracles": {
                name: {
                    "pass": self.passes.get(name, 0),
                    "fail": self.failures.get(name, 0),
                }
                for name in oracles
            },
            "samples": [
                {"oracle": v.oracle, "message": v.message, "details": v.details}
                for v in self.samples
            ],
        }

    def render(self) -> str:
        """Human-readable summary block (used by ``repro-diff verify``)."""
        lines = ["-- verify report --"]
        for name in sorted(set(self.passes) | set(self.failures)):
            ok = self.passes.get(name, 0)
            bad = self.failures.get(name, 0)
            status = "FAIL" if bad else "ok"
            lines.append(f"{name + ':':<22}{ok:6d} pass {bad:6d} fail  [{status}]")
        for violation in self.samples:
            lines.append(f"  ! {violation}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VerifyReport(ok={self.ok}, checks={self.total_checks()})"


# ---------------------------------------------------------------------------
# Oracle 1: matching validity
# ---------------------------------------------------------------------------
def check_matching_validity(
    t1: Tree,
    t2: Tree,
    matching: Matching,
    config: Optional[MatchConfig] = None,
    check_criterion2: bool = False,
) -> List[Violation]:
    """Validate a (partial) matching between *t1* and *t2*.

    Always checked: pairs reference nodes that exist in their trees, labels
    agree (Lemma in §4: the edit model cannot relabel), and — except for
    the root pair, which ``MatchConfig.always_match_roots`` may force —
    leaves pair with leaves. With a *config*, Criterion 1 (``compare <= f``)
    is checked on every non-root leaf pair; Criterion 2 is opt-in
    (*check_criterion2*) because the §8 repair pass and the root policy may
    legitimately keep pairs below the containment threshold.
    """
    name = "matching_validity"
    out: List[Violation] = []
    root_pair = None
    if t1.root is not None and t2.root is not None:
        root_pair = (t1.root.id, t2.root.id)
    context = CriteriaContext(t1, t2, config) if config is not None else None
    for x_id, y_id in matching.pairs():
        if x_id not in t1:
            out.append(Violation(name, "pair references unknown T1 node", {"t1": x_id}))
            continue
        if y_id not in t2:
            out.append(Violation(name, "pair references unknown T2 node", {"t2": y_id}))
            continue
        x, y = t1.get(x_id), t2.get(y_id)
        if x.label != y.label:
            out.append(
                Violation(
                    name,
                    "matched pair has differing labels",
                    {"pair": (x_id, y_id), "labels": (x.label, y.label)},
                )
            )
            continue
        if (x_id, y_id) == root_pair:
            continue  # the root policy may pair roots regardless of kind
        if x.is_leaf != y.is_leaf:
            out.append(
                Violation(
                    name,
                    "leaf matched to internal node",
                    {"pair": (x_id, y_id)},
                )
            )
            continue
        if context is not None and x.is_leaf:
            if not context.leaves_equal(x, y):
                out.append(
                    Violation(
                        name,
                        "leaf pair violates Criterion 1 (compare > f)",
                        {"pair": (x_id, y_id), "f": context.config.f},
                    )
                )
        elif context is not None and check_criterion2:
            if not context.internals_equal(x, y, matching):
                out.append(
                    Violation(
                        name,
                        "internal pair violates Criterion 2 (common ratio <= t)",
                        {"pair": (x_id, y_id), "t": context.config.t},
                    )
                )
    return out


# ---------------------------------------------------------------------------
# Oracle 2: edit-script conformance to the matching
# ---------------------------------------------------------------------------
def check_conformance(
    t1: Tree,
    t2: Tree,
    edit: EditScriptResult,
    matching: Matching,
) -> List[Violation]:
    """Check that *edit* conforms to *matching* (§4's defining property).

    A script conforms when it never deletes a matched ``T1`` node, inserts
    exactly the unmatched ``T2`` nodes (as fresh identifiers), and extends
    the input matching to a total matching ``M'`` covering both trees.
    """
    name = "conformance"
    out: List[Violation] = []
    t1_ids: Set[Any] = set(t1.node_ids())
    t2_ids: Set[Any] = set(t2.node_ids())
    mprime = edit.matching

    inserted_ids: Set[Any] = set()
    deleted_ids: Set[Any] = set()
    for op in edit.script:
        if isinstance(op, Insert):
            if op.node_id in t1_ids:
                out.append(
                    Violation(
                        name,
                        "insert reuses a T1 identifier",
                        {"op": str(op)},
                    )
                )
            if op.node_id in inserted_ids:
                out.append(Violation(name, "node inserted twice", {"op": str(op)}))
            inserted_ids.add(op.node_id)
        elif isinstance(op, Delete):
            if matching.has1(op.node_id):
                out.append(
                    Violation(
                        name,
                        "script deletes a matched T1 node",
                        {"op": str(op), "partner": matching.partner1(op.node_id)},
                    )
                )
            if op.node_id not in t1_ids and op.node_id not in inserted_ids:
                out.append(
                    Violation(
                        name,
                        "delete targets a node from neither T1 nor the inserts",
                        {"op": str(op)},
                    )
                )
            if op.node_id in deleted_ids:
                out.append(Violation(name, "node deleted twice", {"op": str(op)}))
            deleted_ids.add(op.node_id)

    # Every unmatched T2 node must be inserted exactly once; matched T2
    # nodes must never be re-created.
    unmatched_t2 = {y for y in t2_ids if not matching.has2(y)}
    for y_id in t2_ids:
        partner = mprime.partner2(y_id)
        if partner is None:
            out.append(
                Violation(name, "T2 node missing from the total matching", {"t2": y_id})
            )
            continue
        if y_id in unmatched_t2:
            if partner not in inserted_ids:
                out.append(
                    Violation(
                        name,
                        "unmatched T2 node was not inserted",
                        {"t2": y_id, "mprime_partner": partner},
                    )
                )
        else:
            if partner in inserted_ids:
                out.append(
                    Violation(
                        name,
                        "matched T2 node was re-inserted",
                        {"t2": y_id},
                    )
                )
    # Every unmatched T1 node must be deleted; matched ones must survive.
    for x_id in t1_ids:
        if matching.has1(x_id):
            if x_id in deleted_ids:
                out.append(
                    Violation(name, "matched T1 node was deleted", {"t1": x_id})
                )
        elif x_id not in deleted_ids:
            out.append(
                Violation(name, "unmatched T1 node was not deleted", {"t1": x_id})
            )
    # M' must extend the input matching.
    for x_id, y_id in matching.pairs():
        if not mprime.contains(x_id, y_id):
            out.append(
                Violation(
                    name,
                    "total matching dropped an input pair",
                    {"pair": (x_id, y_id)},
                )
            )
    return out


# ---------------------------------------------------------------------------
# Oracle 3: replay isomorphism
# ---------------------------------------------------------------------------
def check_replay(t1: Tree, t2: Tree, edit: EditScriptResult) -> List[Violation]:
    """Replay the script on *t1*; the result must be isomorphic to *t2*."""
    name = "replay_isomorphism"
    try:
        replayed = edit.replay(t1)
    except Exception as exc:
        return [
            Violation(
                name,
                "script failed to replay",
                {"error": f"{type(exc).__name__}: {exc}"},
            )
        ]
    if not trees_isomorphic(replayed, t2):
        return [
            Violation(
                name,
                "replayed tree is not isomorphic to T2",
                {"first_difference": first_difference(replayed, t2)},
            )
        ]
    return []


# ---------------------------------------------------------------------------
# Oracle 4: cost accounting + the insert/delete conservation law
# ---------------------------------------------------------------------------
def check_cost_accounting(
    t1: Tree,
    t2: Tree,
    edit: EditScriptResult,
    cost_model: Optional[CostModel] = None,
    reported_cost: Optional[float] = None,
) -> List[Violation]:
    """Reported cost == sum of op costs; #INS - #DEL == |T2| - |T1|."""
    name = "cost_accounting"
    out: List[Violation] = []
    model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
    recomputed = sum(model.operation_cost(op) for op in edit.script)
    reported = reported_cost if reported_cost is not None else edit.cost(model)
    if abs(reported - recomputed) > 1e-9:
        out.append(
            Violation(
                name,
                "reported cost differs from the sum of operation costs",
                {"reported": reported, "recomputed": recomputed},
            )
        )
    inserts = len(edit.script.inserts)
    deletes = len(edit.script.deletes)
    if inserts - deletes != len(t2) - len(t1):
        out.append(
            Violation(
                name,
                "conservation law violated: #INS - #DEL != |T2| - |T1|",
                {
                    "inserts": inserts,
                    "deletes": deletes,
                    "t1_nodes": len(t1),
                    "t2_nodes": len(t2),
                },
            )
        )
    summary = edit.script.summary()
    if summary["total"] != len(edit.script):
        out.append(
            Violation(
                name,
                "summary total differs from script length",
                {"summary": summary, "length": len(edit.script)},
            )
        )
    return out


# ---------------------------------------------------------------------------
# Oracle 5: delta-tree annotation consistency
# ---------------------------------------------------------------------------
def check_delta_consistency(
    t1: Tree,
    t2: Tree,
    edit: EditScriptResult,
    matching: Matching,
    delta: Any = None,
) -> List[Violation]:
    """IDN/UPD/INS/DEL/MOV counts in the delta agree with the script.

    Also runs the §6 correctness definition
    (:func:`repro.deltatree.correctness.check_delta_tree`) against both
    endpoints. *delta* is built from *edit* when not supplied.
    """
    from ..deltatree.builder import build_delta_tree
    from ..deltatree.correctness import check_delta_tree

    name = "delta_consistency"
    out: List[Violation] = []
    if delta is None:
        try:
            delta = build_delta_tree(t1, t2, edit)
        except Exception as exc:
            return [
                Violation(
                    name,
                    "delta tree failed to build",
                    {"error": f"{type(exc).__name__}: {exc}"},
                )
            ]
    for problem in check_delta_tree(delta, t1, t2):
        out.append(Violation(name, f"§6 correctness: {problem}"))

    counts = delta.counts()
    t1_ids: Set[Any] = set(t1.node_ids())
    script = edit.script
    expected_ins = len(script.inserts)
    moved_t1 = {op.node_id for op in script.moves if op.node_id in t1_ids}
    updated_t1 = {op.node_id for op in script.updates if op.node_id in t1_ids}
    expected_del = sum(1 for x_id in t1_ids if not matching.has1(x_id))
    expected_upd = len(updated_t1 - moved_t1)

    for tag, expected in (
        ("INS", expected_ins),
        ("MOV", len(moved_t1)),
        ("MRK", len(moved_t1)),
        ("DEL", expected_del),
        ("UPD", expected_upd),
    ):
        actual = counts.get(tag, 0)
        if actual != expected:
            out.append(
                Violation(
                    name,
                    f"{tag} annotation count disagrees with the script",
                    {"tag": tag, "delta": actual, "script": expected},
                )
            )
    # Mirror size: every T2 node appears exactly once outside tombstones.
    mirror = sum(counts.get(tag, 0) for tag in ("IDN", "UPD", "INS", "MOV"))
    if mirror != len(t2):
        out.append(
            Violation(
                name,
                "delta mirror node count differs from |T2|",
                {"mirror": mirror, "t2_nodes": len(t2)},
            )
        )
    return out


# ---------------------------------------------------------------------------
# Oracle 6: TreeIndex consistency (post-replay re-check)
# ---------------------------------------------------------------------------
def check_index_consistency(
    tree: Tree, index: Optional[TreeIndex] = None
) -> List[Violation]:
    """A :class:`TreeIndex` over *tree* must agree with naive recomputation.

    Checks subtree sizes, leaf counts, leaf spans, 1-based sibling ranks,
    preorder-interval containment against the parent chain, and that the
    flat leaf list matches a document-order walk. Run on replayed trees to
    prove the index abstractions survive a full edit round trip.
    """
    name = "index_consistency"
    out: List[Violation] = []
    if index is None:
        index = TreeIndex(tree)
    if len(index) != len(tree):
        out.append(
            Violation(
                name,
                "index node count differs from the tree",
                {"index": len(index), "tree": len(tree)},
            )
        )
    for node in tree.preorder():
        if node.id not in index:
            out.append(
                Violation(name, "tree node missing from the index", {"node": node.id})
            )
            continue
        if index.subtree_size(node.id) != node.subtree_size():
            out.append(
                Violation(
                    name,
                    "subtree size disagrees with a direct walk",
                    {"node": node.id},
                )
            )
        if index.leaf_count(node.id) != node.leaf_count():
            out.append(
                Violation(
                    name,
                    "leaf count disagrees with a direct walk",
                    {"node": node.id},
                )
            )
        span_leaves = [leaf.id for leaf in index.leaves_of(node.id)]
        walked = [leaf.id for leaf in node.leaves()]
        if span_leaves != walked:
            out.append(
                Violation(
                    name,
                    "leaf span disagrees with the subtree's leaves",
                    {"node": node.id},
                )
            )
        for position, child in enumerate(node.children, start=1):
            if child.id not in index:
                continue  # already reported by the child's own iteration
            if index.child_rank(child.id) != position:
                out.append(
                    Violation(
                        name,
                        "child rank disagrees with the sibling position",
                        {"node": child.id, "rank": index.child_rank(child.id)},
                    )
                )
        # Containment: the interval test must agree with the parent chain.
        parent = node.parent
        if parent is not None and not index.is_under(node.id, parent.id):
            out.append(
                Violation(
                    name,
                    "interval containment misses a direct parent",
                    {"node": node.id, "parent": parent.id},
                )
            )
        if parent is not None and index.is_under(parent.id, node.id):
            out.append(
                Violation(
                    name,
                    "interval containment inverts a parent/child pair",
                    {"node": node.id, "parent": parent.id},
                )
            )
    return out


# ---------------------------------------------------------------------------
# The battery
# ---------------------------------------------------------------------------
def verify_result(
    t1: Tree,
    t2: Tree,
    result: "DiffResult",
    config: Optional[MatchConfig] = None,
    check_delta: bool = True,
    check_criterion2: bool = False,
    report: Optional[VerifyReport] = None,
) -> VerifyReport:
    """Run every oracle against one :class:`~repro.pipeline.DiffResult`.

    Appends into *report* when given (fuzz loops reuse one across
    iterations); returns the report either way.
    """
    if report is None:
        report = VerifyReport()
    report.record(
        "matching_validity",
        check_matching_validity(
            t1, t2, result.matching, config, check_criterion2=check_criterion2
        ),
    )
    report.record(
        "conformance", check_conformance(t1, t2, result.edit, result.matching)
    )
    report.record("replay_isomorphism", check_replay(t1, t2, result.edit))
    report.record(
        "cost_accounting",
        check_cost_accounting(
            t1, t2, result.edit, result.cost_model, reported_cost=result.cost()
        ),
    )
    if check_delta:
        report.record(
            "delta_consistency",
            check_delta_consistency(
                t1, t2, result.edit, result.matching, delta=result.delta
            ),
        )
    try:
        replayed = result.edit.replay(t1)
    except Exception:
        # Unreplayable scripts were already reported by the replay oracle.
        pass
    else:
        report.record("index_consistency", check_index_consistency(replayed))
    return report
