"""Seeded differential fuzzing of the whole diff stack.

Every iteration derives its own ``random.Random`` from the run seed and
the iteration number, generates a tree pair from one of three workloads
(mutated versions, unrelated random trees, flat documents), pushes it
through the :class:`~repro.pipeline.DiffPipeline` under every configured
algorithm, and runs the full oracle battery from
:mod:`repro.verify.oracles` plus the crosschecks from
:mod:`repro.verify.differential`.

On a violation the failing pair is *shrunk* by greedy subtree deletion —
repeatedly rebuild the pair without one subtree and keep the reduction
whenever the failure persists — and the minimized pair is written as a
JSON repro file (``format: repro-diff/1``) that :func:`run_repro` can
replay exactly.

The pipeline under test is injected as a ``runner`` callable, so tests
and the CLI can swap in deliberately broken runners
(:data:`INJECTED_BUGS`) and watch the harness catch them.
"""

from __future__ import annotations

import dataclasses
import json
import os
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..core.arena import ArenaOverlay
from ..core.index import LegacyTreeIndex, TreeIndex
from ..core.isomorphism import trees_isomorphic
from ..core.serialization import tree_from_dict, tree_to_dict
from ..core.tree import Tree
from ..editscript.generator import _Generator
from ..editscript.script import EditScript
from ..matching.criteria import MatchConfig
from ..simtest.clock import SYSTEM_CLOCK
from ..workload.mutations import MutationEngine, MutationMix
from ..workload.random_trees import (
    DEFAULT_WORDS,
    RandomTreeSpec,
    random_flat_tree,
    random_tree,
)
from .differential import differential_check
from .oracles import VerifyReport, Violation, verify_result

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..pipeline import DiffResult

#: A runner takes ``(t1, t2, algorithm)`` and returns a ``DiffResult``.
Runner = Callable[[Tree, Tree, str], "DiffResult"]

REPRO_FORMAT = "repro-diff/1"

#: Large odd multiplier decorrelates per-iteration seeds across runs whose
#: base seeds are close together (0, 1, 2, ...).
_SEED_STRIDE = 1_000_003

#: Workloads cycled through by iteration number.
WORKLOADS = ("mutation", "random", "flat")

#: Some unicode / whitespace-heavy values so the fuzzer exercises the
#: compare functions beyond plain ASCII words.
_UNICODE_WORDS = DEFAULT_WORDS + [
    "naïve",
    "héllo",
    "日本語テスト",
    "emoji🙂",
    "tab\tseparated",
    "  padded  ",
    "",
]

_FLAT_MIX = MutationMix(move_subtree=0.0, insert_subtree=0.0, delete_subtree=0.0)


@dataclass
class FuzzConfig:
    """Parameters of one fuzz run (all deterministic given ``seed``)."""

    seed: int = 0
    iterations: int = 100
    max_nodes: int = 60
    algorithms: Tuple[str, ...] = ("fast", "simple")
    match: Optional[MatchConfig] = None
    differential: bool = True
    max_zs_nodes: int = 20
    shrink: bool = True
    repro_dir: Optional[str] = None
    workloads: Tuple[str, ...] = WORKLOADS
    max_failures: int = 1
    #: Optional wall-clock budget in seconds; the loop stops cleanly after
    #: the iteration during which the budget runs out. Measured on the
    #: injectable clock passed to :func:`run_fuzz`, so simulated runs can
    #: exercise the cutoff without waiting.
    time_budget_s: Optional[float] = None


@dataclass
class FuzzFailure:
    """One oracle violation, after shrinking."""

    iteration: int
    workload: str
    violations: List[str]
    t1: Tree
    t2: Tree
    original_nodes: int
    shrunk_nodes: int
    repro_path: Optional[str] = None


@dataclass
class FuzzReport:
    """Outcome of a fuzz run: aggregate oracle counters plus failures."""

    report: VerifyReport
    iterations_run: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    #: True when the run stopped on ``time_budget_s`` rather than finishing.
    budget_exhausted: bool = False
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures and self.report.ok


# ---------------------------------------------------------------------------
# Runners (the system under test, injectable for bug-detection tests)
# ---------------------------------------------------------------------------
def default_runner(t1: Tree, t2: Tree, algorithm: str) -> "DiffResult":
    """The real pipeline, with the delta stage on so every oracle runs."""
    from ..pipeline import DiffConfig, DiffPipeline

    pipeline = DiffPipeline(DiffConfig(algorithm=algorithm, build_delta=True))
    return pipeline.run(t1, t2)


def skip_align_runner(t1: Tree, t2: Tree, algorithm: str) -> "DiffResult":
    """Deliberately broken: the generator never runs ``AlignChildren``.

    Misordered siblings survive, so replay produces a tree that is not
    isomorphic to ``T2`` whenever the diff involves reordering — the
    classic bug class the harness must catch (and shrink).
    """
    original = _Generator._align_children
    _Generator._align_children = lambda self, *args, **kwargs: None
    try:
        return default_runner(t1, t2, algorithm)
    finally:
        _Generator._align_children = original


def drop_op_runner(t1: Tree, t2: Tree, algorithm: str) -> "DiffResult":
    """Deliberately broken: silently drops the script's last operation."""
    result = default_runner(t1, t2, algorithm)
    ops = list(result.edit.script)
    if not ops:
        return result
    edit = dataclasses.replace(result.edit, script=EditScript(ops[:-1]))
    return dataclasses.replace(result, edit=edit)


#: Named injectable bugs for ``repro-diff fuzz --inject-bug`` and tests.
INJECTED_BUGS: Dict[str, Runner] = {
    "skip-align": skip_align_runner,
    "drop-op": drop_op_runner,
}


# ---------------------------------------------------------------------------
# Pair generation
# ---------------------------------------------------------------------------
def generate_pair(
    rng: random.Random, workload: str, max_nodes: int
) -> Tuple[Tree, Tree]:
    """One (T1, T2) pair for *workload*, bounded by *max_nodes* per tree."""
    if workload == "flat":
        leaves = rng.randint(1, max(1, min(12, max_nodes - 1)))
        t1 = random_flat_tree(rng, leaves)
        edits = rng.randint(0, max(1, leaves // 2) + 1)
        t2 = MutationEngine(rng, _FLAT_MIX).mutate(t1, edits).tree
        return t1, t2
    if workload == "random":
        return (
            _bounded_random_tree(rng, max_nodes),
            _bounded_random_tree(rng, max_nodes),
        )
    if workload == "mutation":
        base = _bounded_random_tree(rng, max_nodes)
        edits = rng.randint(1, 8)
        return base, MutationEngine(rng).mutate(base, edits).tree
    raise ValueError(f"unknown workload: {workload!r}")


def _bounded_random_tree(rng: random.Random, max_nodes: int) -> Tree:
    vocabulary: Sequence[str] = (
        _UNICODE_WORDS if rng.random() < 0.3 else DEFAULT_WORDS
    )
    spec = RandomTreeSpec(
        max_depth=rng.randint(2, 4),
        max_children=rng.randint(1, 4),
        words_per_leaf=rng.randint(1, 5),
        vocabulary=vocabulary,
    )
    tree = random_tree(rng, spec)
    if len(tree) > max_nodes:
        # Retry once with a spec whose worst case (1 + 3 + 9 nodes) fits.
        tree = random_tree(
            rng, RandomTreeSpec(max_depth=2, max_children=3, vocabulary=vocabulary)
        )
    return tree


def iteration_rng(seed: int, iteration: int) -> random.Random:
    """The iteration's private generator; shared by fuzz and repro replay."""
    return random.Random(seed * _SEED_STRIDE + iteration)


# ---------------------------------------------------------------------------
# The oracle battery for one pair (also the shrinker's failure predicate)
# ---------------------------------------------------------------------------
def check_pair(
    t1: Tree,
    t2: Tree,
    config: FuzzConfig,
    runner: Runner,
    report: Optional[VerifyReport] = None,
) -> VerifyReport:
    """Run every configured algorithm + oracle + crosscheck on one pair."""
    if report is None:
        report = VerifyReport()
    results: Dict[str, "DiffResult"] = {}
    try:
        for algorithm in config.algorithms:
            result = runner(t1, t2, algorithm)
            results[algorithm] = result
            verify_result(t1, t2, result, config=config.match, report=report)
        if config.differential:
            outcome = differential_check(
                t1,
                t2,
                config=config.match,
                max_zs_nodes=config.max_zs_nodes,
                results=results,
            )
            report.record("differential", outcome.violations)
        report.record("arena", _arena_check(t1, t2, results))
    except Exception as exc:
        report.record(
            "pipeline",
            [
                Violation(
                    "pipeline",
                    "diff raised instead of producing a result",
                    {"error": f"{type(exc).__name__}: {exc}"},
                )
            ],
        )
    return report


def _pair_fails(t1: Tree, t2: Tree, config: FuzzConfig, runner: Runner) -> bool:
    return not check_pair(t1, t2, config, runner).ok


# ---------------------------------------------------------------------------
# Arena representation crosschecks (the object core's differential twin)
# ---------------------------------------------------------------------------
def _arena_check(
    t1: Tree, t2: Tree, results: Dict[str, "DiffResult"]
) -> List[Violation]:
    """Differential oracles between the object and arena representations.

    Three families, run on every fuzzed pair:

    * Node graph → :class:`~repro.core.arena.TreeArena` → Node graph
      round-trips to an isomorphic tree with identical preorder ids;
    * the arena-backed :class:`~repro.core.index.TreeIndex` agrees with the
      object-walking :class:`~repro.core.index.LegacyTreeIndex` on every
      rank, size, leaf count, child rank, and leaf ordering;
    * each generated script replays through a copy-on-write
      :class:`~repro.core.arena.ArenaOverlay` to a tree isomorphic to T2,
      matching the object-path ``replay``.
    """
    from ..editscript.generator import DUMMY_ROOT_LABEL

    violations: List[Violation] = []
    for name, tree in (("t1", t1), ("t2", t2)):
        arena = tree.to_arena()
        round_tripped = Tree.from_arena(arena)
        if not trees_isomorphic(tree, round_tripped):
            violations.append(
                Violation(
                    "arena",
                    "node graph -> arena -> node graph round-trip broke isomorphism",
                    {"tree": name},
                )
            )
        preorder_ids = [node.id for node in tree.preorder()]
        if list(round_tripped.node_ids()) != preorder_ids:
            violations.append(
                Violation(
                    "arena",
                    "arena round-trip changed node identifiers or their order",
                    {"tree": name},
                )
            )
        fast = TreeIndex(tree)
        legacy = LegacyTreeIndex(tree)
        for node_id in preorder_ids:
            checks = [
                ("rank", fast.rank(node_id), legacy.rank(node_id)),
                (
                    "subtree_size",
                    fast.subtree_size(node_id),
                    legacy.subtree_size(node_id),
                ),
                ("leaf_count", fast.leaf_count(node_id), legacy.leaf_count(node_id)),
            ]
            if node_id != tree.root.id:
                checks.append(
                    ("child_rank", fast.child_rank(node_id), legacy.child_rank(node_id))
                )
            for what, got, want in checks:
                if got != want:
                    violations.append(
                        Violation(
                            "arena",
                            f"TreeIndex and LegacyTreeIndex disagree on {what}",
                            {"tree": name, "node": node_id, "fast": got, "legacy": want},
                        )
                    )
        fast_leaves = [n.id for n in fast.leaves_of(tree.root.id)]
        legacy_leaves = [n.id for n in legacy.leaves_of(tree.root.id)]
        if fast_leaves != legacy_leaves:
            violations.append(
                Violation(
                    "arena",
                    "TreeIndex and LegacyTreeIndex disagree on leaf ordering",
                    {"tree": name},
                )
            )
    for algorithm, result in results.items():
        edit = result.edit
        try:
            overlay = ArenaOverlay(t1.to_arena())
            if edit.wrapped:
                overlay.wrap_root(edit.dummy_t1_id, DUMMY_ROOT_LABEL)
            edit.script.replay_on_overlay(overlay)
            if edit.wrapped:
                overlay.strip_root()
            replayed = Tree.from_arena(overlay.flatten())
        except Exception as exc:
            violations.append(
                Violation(
                    "arena",
                    "overlay replay of the edit script raised",
                    {"algorithm": algorithm, "error": f"{type(exc).__name__}: {exc}"},
                )
            )
            continue
        if not trees_isomorphic(replayed, t2):
            violations.append(
                Violation(
                    "arena",
                    "overlay replay produced a tree not isomorphic to T2",
                    {"algorithm": algorithm},
                )
            )
    return violations


# ---------------------------------------------------------------------------
# Shrinking: greedy subtree deletion to a local minimum
# ---------------------------------------------------------------------------
def _without_subtree(tree: Tree, target_id: Any) -> Optional[Tree]:
    """A rebuilt copy of *tree* minus the subtree rooted at *target_id*."""
    if tree.root is None or tree.root.id == target_id:
        return None

    def convert(node) -> tuple:
        children = [
            convert(child) for child in node.children if child.id != target_id
        ]
        return (node.label, node.value, children)

    return Tree.from_obj(convert(tree.root))


def shrink_pair(
    t1: Tree,
    t2: Tree,
    fails: Callable[[Tree, Tree], bool],
    max_attempts: int = 2000,
) -> Tuple[Tree, Tree]:
    """Greedily drop subtrees from either tree while the failure persists.

    Preorder tries large subtrees before their descendants, so whole
    irrelevant sections vanish in one step; the loop restarts after every
    successful deletion and stops at a fixpoint (or the attempt cap).
    """
    current = [t1, t2]
    attempts = 0
    changed = True
    while changed and attempts < max_attempts:
        changed = False
        for side in (0, 1):
            tree = current[side]
            for node in list(tree.preorder()):
                if tree.root is not None and node.id == tree.root.id:
                    continue
                reduced = _without_subtree(tree, node.id)
                if reduced is None:
                    continue
                attempts += 1
                candidate = list(current)
                candidate[side] = reduced
                if fails(candidate[0], candidate[1]):
                    current = candidate
                    changed = True
                    break
                if attempts >= max_attempts:
                    break
            if changed or attempts >= max_attempts:
                break
    return current[0], current[1]


# ---------------------------------------------------------------------------
# Repro files
# ---------------------------------------------------------------------------
def write_repro(
    path: str,
    t1: Tree,
    t2: Tree,
    config: FuzzConfig,
    iteration: int,
    workload: str,
    violations: List[str],
) -> str:
    payload = {
        "format": REPRO_FORMAT,
        "seed": config.seed,
        "iteration": iteration,
        "workload": workload,
        "algorithms": list(config.algorithms),
        "violations": violations,
        "config": {
            "f": config.match.f if config.match is not None else None,
            "t": config.match.t if config.match is not None else None,
            "differential": config.differential,
            "max_zs_nodes": config.max_zs_nodes,
        },
        "t1": tree_to_dict(t1),
        "t2": tree_to_dict(t2),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, ensure_ascii=False)
    return path


def load_repro(path: str) -> Tuple[Tree, Tree, Dict[str, Any]]:
    """Read a repro file back into its tree pair and metadata."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != REPRO_FORMAT:
        raise ValueError(f"{path}: not a {REPRO_FORMAT} repro file")
    return tree_from_dict(payload["t1"]), tree_from_dict(payload["t2"]), payload


def run_repro(path: str, runner: Optional[Runner] = None) -> VerifyReport:
    """Re-run the oracle battery on a stored repro pair."""
    t1, t2, payload = load_repro(path)
    raw = payload.get("config", {})
    match = None
    if raw.get("f") is not None and raw.get("t") is not None:
        match = MatchConfig(f=raw["f"], t=raw["t"])
    config = FuzzConfig(
        seed=payload.get("seed", 0),
        algorithms=tuple(payload.get("algorithms", ("fast", "simple"))),
        match=match,
        differential=raw.get("differential", True),
        max_zs_nodes=raw.get("max_zs_nodes", 20),
    )
    return check_pair(t1, t2, config, runner or default_runner)


# ---------------------------------------------------------------------------
# The fuzz loop
# ---------------------------------------------------------------------------
def run_fuzz(
    config: FuzzConfig,
    runner: Optional[Runner] = None,
    on_iteration: Optional[Callable[[int], None]] = None,
    clock: Optional[Any] = None,
) -> FuzzReport:
    """Run the seeded fuzz loop; deterministic for a given *config*.

    *clock* (a :class:`repro.simtest.clock.Clock`) is only read, never
    slept on: it stamps ``elapsed_s`` and enforces ``time_budget_s``.
    Pairs and oracles stay a pure function of the seed either way.
    """
    runner = runner or default_runner
    active_clock = clock if clock is not None else SYSTEM_CLOCK
    started = active_clock.monotonic()
    fuzz_report = FuzzReport(report=VerifyReport())
    for i in range(config.iterations):
        if (
            config.time_budget_s is not None
            and active_clock.monotonic() - started >= config.time_budget_s
        ):
            fuzz_report.budget_exhausted = True
            break
        rng = iteration_rng(config.seed, i)
        workload = config.workloads[i % len(config.workloads)]
        t1, t2 = generate_pair(rng, workload, config.max_nodes)
        iteration_report = check_pair(t1, t2, config, runner)
        fuzz_report.report.merge(iteration_report)
        fuzz_report.iterations_run = i + 1
        if on_iteration is not None:
            on_iteration(i)
        if iteration_report.ok:
            continue

        original_nodes = len(t1) + len(t2)
        if config.shrink:
            t1, t2 = shrink_pair(
                t1, t2, lambda a, b: _pair_fails(a, b, config, runner)
            )
        violations = [
            str(v) for v in check_pair(t1, t2, config, runner).samples
        ]
        failure = FuzzFailure(
            iteration=i,
            workload=workload,
            violations=violations,
            t1=t1,
            t2=t2,
            original_nodes=original_nodes,
            shrunk_nodes=len(t1) + len(t2),
        )
        if config.repro_dir is not None:
            os.makedirs(config.repro_dir, exist_ok=True)
            failure.repro_path = write_repro(
                os.path.join(
                    config.repro_dir,
                    f"repro-seed{config.seed}-iter{i}.json",
                ),
                t1,
                t2,
                config,
                i,
                workload,
                violations,
            )
        fuzz_report.failures.append(failure)
        if len(fuzz_report.failures) >= config.max_failures:
            break
    fuzz_report.elapsed_s = active_clock.monotonic() - started
    return fuzz_report
