"""Differential checking: Match vs FastMatch vs the baselines.

Differential testing compares independent implementations on the same
input; disagreement localizes a bug without needing a ground truth. Three
relations are checkable here, each stated in its *sound* form:

* **Algorithm agreement** — Match (§5.2) and FastMatch (§5.3) must both
  produce scripts that transform ``T1`` into ``T2``; their costs may
  differ (FastMatch trades optimality for speed) but both must be valid.

* **Zhang–Shasha lower bound** — the ZS algorithm computes the *optimal*
  edit distance under a relabel/insert/delete model. Our scripts live in
  a richer model (subtree moves), so their cost is **not** directly
  comparable: a single unit-cost move can beat many ZS deletes+inserts.
  The sound relation prices each of our operations *in ZS terms* —
  insert/delete 1, update 1 if the value changed, move ``2 × |subtree|``
  at the moment the move applies (a ZS delete+reinsert of every node) —
  giving a valid ZS edit sequence whose cost must dominate the optimum:
  ``zs_distance(T1, T2) <= zs_script_bound(T1, edit)``. Exact ZS is
  ``O(n^2 m^2)`` so the check is gated to small trees (≤ ~30 nodes).

* **Flat-diff dominance** — on *flat* documents (a valueless root over
  same-labeled string leaves) the tree differ must be at least as good at
  preserving content as a line diff: FastMatch's per-label LCS pass works
  under fuzzy equality, a superset of the exact line equality the flat
  baseline uses, so it matches at least an exact-LCS worth of leaves and
  hence ``#DEL <= flat deleted_lines`` and ``#INS <= flat
  inserted_lines``. (This holds for FastMatch only: Algorithm Match's
  maximal matching guarantees just half the LCS. And it says nothing
  about updates/moves, which the flat view cannot express.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from ..baselines.flat_diff import flat_diff
from ..baselines.zhang_shasha import zhang_shasha_distance
from ..core.tree import Tree
from ..editscript.generator import EditScriptResult, _wrap_with_dummy_root
from ..editscript.operations import Delete, Insert, Move, Update
from ..editscript.script import EditScript
from ..matching.criteria import MatchConfig
from .oracles import Violation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..pipeline import DiffResult

#: Default node ceiling for the exact Zhang–Shasha reference (O(n^2 m^2)).
DEFAULT_MAX_ZS_NODES = 30

_EPSILON = 1e-9


@dataclass
class DifferentialOutcome:
    """Everything one differential run learned about a tree pair."""

    violations: List[Violation] = field(default_factory=list)
    costs: Dict[str, float] = field(default_factory=dict)
    zs_distance: Optional[float] = None
    zs_bounds: Dict[str, float] = field(default_factory=dict)
    flat_changes: Optional[int] = None

    @property
    def ok(self) -> bool:
        return not self.violations


# ---------------------------------------------------------------------------
# Zhang–Shasha lower bound
# ---------------------------------------------------------------------------
def zs_script_bound(t1: Tree, edit: EditScriptResult) -> float:
    """Price *edit* as a Zhang–Shasha edit sequence on the same trees.

    Replays the script operation by operation (moves must be priced at the
    subtree size *when they apply*, which earlier inserts may have grown).
    The result is the cost of one valid relabel/insert/delete realization
    of the script, hence an upper bound on the optimal ZS distance.
    """
    work = t1.copy()
    if edit.wrapped:
        work = _wrap_with_dummy_root(work, edit.dummy_t1_id)
    bound = 0.0
    for op in edit.script:
        if isinstance(op, (Insert, Delete)):
            bound += 1.0
        elif isinstance(op, Update):
            if op.old_value != op.value:
                bound += 1.0
        elif isinstance(op, Move):
            bound += 2.0 * work.get(op.node_id).subtree_size()
        work = EditScript([op]).apply_to(work, in_place=True)
    return bound


def zs_lower_bound_check(
    t1: Tree,
    t2: Tree,
    edit: EditScriptResult,
    algorithm: str = "?",
    zs: Optional[float] = None,
) -> List[Violation]:
    """``zs_distance <= zs_script_bound`` (pass a precomputed *zs* to reuse).

    When the generator dummy-wrapped the trees the script transforms
    ``wrap(T1)`` into ``wrap(T2)``, so the reference distance is taken on
    wrapped copies too.
    """
    if edit.wrapped:
        a = _wrap_with_dummy_root(t1.copy(), edit.dummy_t1_id)
        b = _wrap_with_dummy_root(t2.copy(), edit.dummy_t2_id)
        zs = zhang_shasha_distance(a, b)
    elif zs is None:
        zs = zhang_shasha_distance(t1, t2)
    bound = zs_script_bound(t1, edit)
    if zs > bound + _EPSILON:
        return [
            Violation(
                "differential",
                "script beats the optimal Zhang-Shasha distance in ZS terms",
                {"algorithm": algorithm, "zs": zs, "bound": bound},
            )
        ]
    return []


# ---------------------------------------------------------------------------
# Flat-diff dominance (flat documents, FastMatch only)
# ---------------------------------------------------------------------------
def is_flat_pair(t1: Tree, t2: Tree) -> bool:
    """True when both trees are flat documents the dominance claim covers.

    Flat means: a valueless root (same label on both sides, so the roots
    match and never enter the delete/insert counts) whose children are all
    leaves sharing one label, every leaf carrying a string value — i.e. the
    tree view and the flattened line view contain the same information.
    """

    def flat(tree: Tree) -> Optional[str]:
        root = tree.root
        if root is None or root.is_leaf or root.value is not None:
            return None
        labels = {child.label for child in root.children}
        if len(labels) != 1:
            return None
        if not all(
            child.is_leaf and isinstance(child.value, str)
            for child in root.children
        ):
            return None
        return root.label

    label1, label2 = flat(t1), flat(t2)
    if label1 is None or label2 is None or label1 != label2:
        return False
    leaf_labels = {c.label for c in t1.root.children} | {
        c.label for c in t2.root.children
    }
    return len(leaf_labels) == 1


def flat_dominance_check(
    t1: Tree, t2: Tree, edit: EditScriptResult
) -> List[Violation]:
    """FastMatch on a flat pair deletes/inserts no more lines than GNU diff.

    Only call on :func:`is_flat_pair` inputs with a FastMatch-produced
    script; the LCS-superset argument in the module docstring does not
    apply to Algorithm Match.
    """
    flat = flat_diff(t1, t2)
    out: List[Violation] = []
    deletes = len(edit.script.deletes)
    inserts = len(edit.script.inserts)
    if deletes > flat.deleted_lines:
        out.append(
            Violation(
                "differential",
                "tree diff deletes more leaves than the flat baseline",
                {"tree": deletes, "flat": flat.deleted_lines},
            )
        )
    if inserts > flat.inserted_lines:
        out.append(
            Violation(
                "differential",
                "tree diff inserts more leaves than the flat baseline",
                {"tree": inserts, "flat": flat.inserted_lines},
            )
        )
    return out


# ---------------------------------------------------------------------------
# The crosscheck harness
# ---------------------------------------------------------------------------
def differential_check(
    t1: Tree,
    t2: Tree,
    config: Optional[MatchConfig] = None,
    max_zs_nodes: int = DEFAULT_MAX_ZS_NODES,
    results: Optional[Dict[str, "DiffResult"]] = None,
) -> DifferentialOutcome:
    """Run Match and FastMatch on the same pair and crosscheck them.

    *results* may carry precomputed ``DiffResult``s per algorithm (the fuzz
    loop reuses the ones it already verified); missing algorithms are run
    through a fresh :class:`~repro.pipeline.DiffPipeline`.
    """
    from ..pipeline import DiffConfig, DiffPipeline

    outcome = DifferentialOutcome()
    results = dict(results) if results else {}
    for algorithm in ("fast", "simple"):
        if algorithm not in results:
            pipeline = DiffPipeline(DiffConfig(algorithm=algorithm, match=config))
            results[algorithm] = pipeline.run(t1, t2)
        result = results[algorithm]
        outcome.costs[algorithm] = result.cost()
        if not result.edit.verify(t1, t2):
            outcome.violations.append(
                Violation(
                    "differential",
                    "script does not transform T1 into T2",
                    {"algorithm": algorithm},
                )
            )

    small = len(t1) <= max_zs_nodes and len(t2) <= max_zs_nodes
    if small and len(t1) > 0 and len(t2) > 0:
        outcome.zs_distance = zhang_shasha_distance(t1, t2)
        for algorithm, result in results.items():
            outcome.zs_bounds[algorithm] = zs_script_bound(t1, result.edit)
            outcome.violations.extend(
                zs_lower_bound_check(
                    t1, t2, result.edit, algorithm, zs=outcome.zs_distance
                )
            )

    if is_flat_pair(t1, t2):
        outcome.flat_changes = flat_diff(t1, t2).total_changes
        outcome.violations.extend(flat_dominance_check(t1, t2, results["fast"].edit))
    return outcome
