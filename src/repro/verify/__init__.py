"""Verification subsystem: oracles, differential checks, and fuzzing.

``repro.verify`` turns the paper's guarantees into executable checks:

* :mod:`~repro.verify.oracles` — pure per-result invariant checkers and
  the :class:`VerifyReport` accumulator;
* :mod:`~repro.verify.differential` — Match vs FastMatch vs baseline
  crosschecks, including the Zhang–Shasha optimality lower bound;
* :mod:`~repro.verify.fuzz` — the seeded fuzz loop with shrinking and
  JSON repro files, exposed on the CLI as ``repro-diff verify`` and
  ``repro-diff fuzz``.
"""

from .differential import (
    DifferentialOutcome,
    differential_check,
    flat_dominance_check,
    is_flat_pair,
    zs_lower_bound_check,
    zs_script_bound,
)
from .fuzz import (
    INJECTED_BUGS,
    FuzzConfig,
    FuzzFailure,
    FuzzReport,
    Runner,
    check_pair,
    default_runner,
    generate_pair,
    load_repro,
    run_fuzz,
    run_repro,
    shrink_pair,
    write_repro,
)
from .oracles import (
    MAX_SAMPLES,
    ORACLES,
    VerifyReport,
    Violation,
    check_conformance,
    check_cost_accounting,
    check_delta_consistency,
    check_index_consistency,
    check_matching_validity,
    check_replay,
    verify_result,
)

__all__ = [
    "DifferentialOutcome",
    "differential_check",
    "flat_dominance_check",
    "is_flat_pair",
    "zs_lower_bound_check",
    "zs_script_bound",
    "INJECTED_BUGS",
    "FuzzConfig",
    "FuzzFailure",
    "FuzzReport",
    "Runner",
    "check_pair",
    "default_runner",
    "generate_pair",
    "load_repro",
    "run_fuzz",
    "run_repro",
    "shrink_pair",
    "write_repro",
    "MAX_SAMPLES",
    "ORACLES",
    "VerifyReport",
    "Violation",
    "check_conformance",
    "check_cost_accounting",
    "check_delta_consistency",
    "check_index_consistency",
    "check_matching_validity",
    "check_replay",
    "verify_result",
]
