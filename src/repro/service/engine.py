"""DiffEngine: concurrent, cached, measured tree diffing.

The paper's warehouse scenario (§1) receives periodic snapshot dumps and
must compute deltas for *many* pairs, most of them near-identical. The
engine wraps one shared :class:`repro.pipeline.DiffPipeline` with the three
things that workload needs:

1. **Merkle short-circuits** — equal root digests mean the snapshots are
   isomorphic, so the job completes with an empty script without running
   any matching (:mod:`repro.service.digest`).
2. **Result caching** — scripts are canonicalized and cached by content
   digests, so re-diffing content the service has already seen is a
   dictionary lookup (:mod:`repro.service.cache`).
3. **Fan-out with isolation** — jobs run on a thread pool with per-job
   timeout, bounded retry, and per-job error capture: one malformed
   document fails its own job, never the batch.

CPython's GIL serializes pure-Python compute, so the thread pool alone
overlaps only digesting/caching with compute. For real multi-core scaling
pass ``executor="process"``: orchestration (digests, cache) stays in
threads, while the heavy ``tree_diff`` call is shipped to a
``ProcessPoolExecutor`` as serialized trees. Process mode rebuilds a
default :class:`~repro.matching.criteria.MatchConfig` in the children from
``(f, t, flags)``, so custom comparator registries require thread mode.
"""

from __future__ import annotations

import math
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.isomorphism import trees_isomorphic
from ..core.serialization import tree_from_dict, tree_to_dict
from ..core.tree import Tree
from ..editscript.script import EditScript
from ..matching.criteria import MatchConfig
from ..obs.trace import Tracer, synthesize_stage_spans
from ..pipeline import DiffConfig, DiffPipeline
from .cache import (
    ScriptCache,
    UncacheableScriptError,
    canonicalize_script,
    instantiate_script,
)
from .digest import cached_digests, tree_fingerprint
from .metrics import ServiceMetrics

#: A job input: a materialized tree, or a zero-argument loader called inside
#: the job so that parse failures are captured per-job.
TreeSource = Union[Tree, Callable[[], Tree]]


@dataclass
class JobResult:
    """Outcome of one diff job, including provenance and timing."""

    job_id: str
    status: str = "ok"  #: ``"ok"`` | ``"error"`` | ``"timeout"``
    #: Where the script came from: ``"computed"``, ``"cache"``, ``"digest"``
    #: (short-circuit on equal fingerprints), or ``None`` on failure.
    source: Optional[str] = None
    script: Optional[EditScript] = None
    wrapped: bool = False
    dummy_id: Any = None
    operations: int = 0
    cost: float = 0.0
    wall_ms: float = 0.0
    attempts: int = 0
    error: Optional[str] = None
    old_digest: Optional[str] = None
    new_digest: Optional[str] = None
    summary: Dict[str, int] = field(default_factory=dict)
    #: Per-pipeline-stage wall milliseconds for computed jobs (empty for
    #: cache/digest hits and failures); from the pipeline's Trace.
    stage_ms: Dict[str, float] = field(default_factory=dict)
    #: Outcome of the engine's oracle spot check: ``True``/``False`` when
    #: this job was sampled (``verify_fraction``), ``None`` when it wasn't.
    verified: Optional[bool] = None
    #: Trace id of the request this job ran under (``None`` when untraced).
    trace_id: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def apply_to(self, old_tree: Tree) -> Tree:
        """Replay the script on a copy of *old_tree* (handles dummy roots)."""
        if self.script is None:
            raise ValueError(f"job {self.job_id} has no script (status={self.status})")
        from ..editscript.generator import _strip_dummy_root, _wrap_with_dummy_root

        work = old_tree.copy()
        if self.wrapped:
            work = _wrap_with_dummy_root(work, self.dummy_id)
        work = self.script.apply_to(work, in_place=True)
        if self.wrapped:
            work = _strip_dummy_root(work)
        return work

    def verify(self, old_tree: Tree, new_tree: Tree) -> bool:
        """True when replaying the script on *old_tree* yields *new_tree*."""
        return trees_isomorphic(self.apply_to(old_tree), new_tree)


def config_key(
    config: Optional[MatchConfig], algorithm: str, postprocess: bool
) -> str:
    """Stable cache-key component for the matching configuration."""
    config = config if config is not None else MatchConfig()
    return (
        f"f={config.f};t={config.t}"
        f";mei={config.match_empty_internals};amr={config.always_match_roots}"
        f";reg={type(config.registry).__name__}"
        f";alg={algorithm};post={postprocess}"
    )


def _process_diff(request: Dict[str, Any]) -> Dict[str, Any]:
    """Process-pool worker: rebuild the pair, diff, return a canonical payload.

    Module-level so it pickles; receives plain dicts (not Tree objects) to
    keep the wire format explicit and version-independent. The payload is
    wrapped together with the run's per-stage timings so the parent engine
    can report them without shipping the whole Trace across the pipe.
    """
    old = tree_from_dict(request["old"])
    new = tree_from_dict(request["new"])
    config = MatchConfig(
        f=request["f"],
        t=request["t"],
        match_empty_internals=request["mei"],
        always_match_roots=request["amr"],
    )
    pipeline = DiffPipeline(
        DiffConfig(
            algorithm=request["algorithm"],
            match=config,
            postprocess=request["postprocess"],
        )
    )
    result = pipeline.run(old, new)
    payload = canonicalize_script(
        result.script, old, result.edit.wrapped, result.edit.dummy_t1_id
    )
    return {"payload": payload, "stage_ms": result.trace.stage_ms()}


class DiffEngine:
    """Serving layer: fan tree pairs out, memoize, and measure.

    Parameters
    ----------
    workers:
        Concurrent jobs (and process-pool width in process mode).
    config, algorithm, postprocess:
        The :class:`~repro.pipeline.DiffConfig` parameters applied to every
        job; validated eagerly (a bad algorithm raises
        :class:`~repro.core.errors.ConfigError` here, not per job).
    cache:
        A :class:`ScriptCache`, an int capacity for a fresh one, or ``None``
        to disable result caching (digest short-circuits still apply).
    metrics:
        Shared :class:`ServiceMetrics`; a fresh one is created when omitted.
    timeout:
        Per-job seconds allowed when collecting batch results; a job that
        exceeds it is reported as ``status="timeout"`` (collection-side —
        the worker is not forcibly killed, it just no longer counts).
    retries:
        How many times a *failed* computation is retried before the job is
        reported as ``status="error"``.
    executor:
        ``"thread"`` (default) or ``"process"`` for multi-core compute.
    verify_fraction:
        Fraction of successful jobs (0.0–1.0) to re-check with the
        script-level oracles from :mod:`repro.verify.oracles` (replay
        isomorphism, cost accounting / conservation law). Sampling is
        deterministic — job ``n`` is checked when ``floor(n * fraction)``
        crosses an integer — and outcomes land on
        :attr:`JobResult.verified`, the ``verify_checks`` /
        ``verify_failures`` counters, and the metrics' ``verify`` section.
    """

    def __init__(
        self,
        workers: int = 4,
        config: Optional[MatchConfig] = None,
        algorithm: str = "fast",
        postprocess: bool = True,
        cache: Union[ScriptCache, int, None] = 256,
        metrics: Optional[ServiceMetrics] = None,
        timeout: Optional[float] = None,
        retries: int = 0,
        executor: str = "thread",
        verify_fraction: float = 0.0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if executor not in ("thread", "process"):
            raise ValueError(f"executor must be 'thread' or 'process', got {executor!r}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if not 0.0 <= verify_fraction <= 1.0:
            raise ValueError(
                f"verify_fraction must be in [0.0, 1.0], got {verify_fraction}"
            )
        self.workers = workers
        self.config = config
        self.algorithm = algorithm
        self.postprocess = postprocess
        # One pipeline serves every job: run() keeps all per-run state in
        # its Trace, so concurrent worker threads can share the instance.
        # Raises ConfigError up front on a bad algorithm/config.
        self._pipeline = DiffPipeline(
            DiffConfig(algorithm=algorithm, match=config, postprocess=postprocess)
        )
        if isinstance(cache, int):
            cache = ScriptCache(cache) if cache > 0 else None
        self.cache = cache
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.timeout = timeout
        self.retries = retries
        self.executor = executor
        self._config_key = config_key(config, algorithm, postprocess)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._procs: Optional[ProcessPoolExecutor] = None
        self.verify_fraction = verify_fraction
        self._verify_lock = threading.Lock()
        self._verify_seen = 0
        #: Optional :class:`repro.obs.Tracer`; jobs that carry a trace
        #: context open an ``engine`` span with stage children under it.
        self.tracer = tracer
        #: Fallback trace context applied when a job carries none (the CLI
        #: uses this to hang a whole batch under one root span).
        self.default_trace: Optional[Tuple[str, Optional[str]]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "DiffEngine":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the worker pools (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._procs is not None:
            self._procs.shutdown(wait=True)
            self._procs = None

    def _thread_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-diff"
            )
        return self._pool

    def _process_pool(self) -> ProcessPoolExecutor:
        if self._procs is None:
            self._procs = ProcessPoolExecutor(max_workers=self.workers)
        return self._procs

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @staticmethod
    def fingerprint(tree: Tree) -> str:
        """Merkle fingerprint of a snapshot (see :mod:`repro.service.digest`)."""
        return tree_fingerprint(tree)

    def diff(
        self,
        old: TreeSource,
        new: TreeSource,
        job_id: str = "diff",
        trace: Optional[Tuple[str, Optional[str]]] = None,
    ) -> JobResult:
        """Run one job synchronously in the calling thread."""
        return self._run_job(job_id, old, new, trace)

    def submit(
        self,
        old: TreeSource,
        new: TreeSource,
        job_id: str = "job",
        trace: Optional[Tuple[str, Optional[str]]] = None,
    ) -> "Future[JobResult]":
        """Schedule one job on the pool; the future resolves to a JobResult.

        Failures are captured *inside* the result, so ``future.result()``
        only raises on timeout (when the caller passes one) or shutdown.
        ``trace`` is an optional ``(trace_id, parent_span_id)`` context.
        """
        return self._thread_pool().submit(self._run_job, job_id, old, new, trace)

    def map_pairs(
        self,
        pairs: Iterable[Union[Tuple[TreeSource, TreeSource], Tuple[TreeSource, TreeSource, str]]],
    ) -> List[JobResult]:
        """Diff every ``(old, new[, job_id])`` pair; one result per pair, in order.

        Every pair yields exactly one :class:`JobResult`; malformed inputs
        or compute failures surface as ``status="error"`` results rather
        than exceptions.
        """
        jobs: List[Tuple[str, TreeSource, TreeSource]] = []
        for index, pair in enumerate(pairs):
            if len(pair) == 3:
                old, new, job_id = pair  # type: ignore[misc]
            else:
                old, new = pair  # type: ignore[misc]
                job_id = f"pair-{index}"
            jobs.append((str(job_id), old, new))
        if not jobs:
            return []
        pool = self._thread_pool()
        futures = [pool.submit(self._run_job, *job) for job in jobs]
        results: List[JobResult] = []
        for (job_id, _, _), future in zip(jobs, futures):
            try:
                results.append(future.result(timeout=self.timeout))
            except FutureTimeoutError:
                self.metrics.incr("jobs_timed_out")
                results.append(
                    JobResult(
                        job_id=job_id,
                        status="timeout",
                        wall_ms=(self.timeout or 0.0) * 1000.0,
                        error=f"job exceeded {self.timeout}s collection timeout",
                    )
                )
        return results

    def diff_corpus(self, snapshots: Sequence[Tree]) -> List[JobResult]:
        """Diff consecutive snapshots of a version chain (N trees → N-1 jobs)."""
        return self.map_pairs(
            (snapshots[i], snapshots[i + 1], f"rev-{i}->{i + 1}")
            for i in range(len(snapshots) - 1)
        )

    # ------------------------------------------------------------------
    # Job execution
    # ------------------------------------------------------------------
    def _run_job(
        self,
        job_id: str,
        old: TreeSource,
        new: TreeSource,
        trace: Optional[Tuple[str, Optional[str]]] = None,
    ) -> JobResult:
        start = time.perf_counter()
        self.metrics.incr("jobs_submitted")
        result = JobResult(job_id=job_id)
        if trace is None:
            trace = self.default_trace
        span = None
        if self.tracer is not None and trace is not None:
            span = self.tracer.start_span(
                "engine",
                kind="engine",
                trace_id=trace[0],
                parent_id=trace[1],
                meta={"job": job_id},
            )
            result.trace_id = trace[0]
        try:
            old_tree = old() if callable(old) else old
            new_tree = new() if callable(new) else new
            if not isinstance(old_tree, Tree) or not isinstance(new_tree, Tree):
                raise TypeError("job inputs must be Tree objects or loaders returning them")
            self._diff_into(result, old_tree, new_tree)
            if self._should_verify():
                result.verified = self._spot_check(result, old_tree, new_tree)
        except Exception as exc:
            result.status = "error"
            result.source = None
            result.script = None
            result.error = f"{type(exc).__name__}: {exc}"
        result.wall_ms = (time.perf_counter() - start) * 1000.0
        if result.status == "ok":
            self.metrics.incr("jobs_succeeded")
            self.metrics.incr("ops_emitted", result.operations)
        else:
            self.metrics.incr("jobs_failed")
        self.metrics.observe_wall(result.wall_ms)
        if span is not None:
            span.annotate(source=result.source, job_status=result.status)
            span.close("ok" if result.status == "ok" else "error")
            if result.stage_ms:
                # The pipeline Trace only knows durations; lay them out
                # back to back inside the engine span's interval.
                synthesize_stage_spans(
                    self.tracer,
                    span.trace_id,
                    span.span_id,
                    result.stage_ms,
                    span.record.start,
                    meta={"job": job_id},
                )
        return result

    def _should_verify(self) -> bool:
        """Deterministic sampling: check job *n* when ``floor(n·f)`` steps."""
        if self.verify_fraction <= 0.0:
            return False
        with self._verify_lock:
            self._verify_seen += 1
            n = self._verify_seen
        return math.floor(n * self.verify_fraction) > math.floor(
            (n - 1) * self.verify_fraction
        )

    def _spot_check(self, result: JobResult, old_tree: Tree, new_tree: Tree) -> bool:
        """Script-level oracles on a served result (replay + accounting).

        Cache and digest hits carry no matching, so only the oracles that
        need the script alone run here; the full battery lives in
        :func:`repro.verify.oracles.verify_result`.
        """
        from ..verify.oracles import VerifyReport, Violation

        report = VerifyReport()
        replay_violations = []
        try:
            if not result.verify(old_tree, new_tree):
                replay_violations.append(
                    Violation(
                        "replay_isomorphism",
                        "served script does not transform old into new",
                        {"job": result.job_id, "source": result.source},
                    )
                )
        except Exception as exc:
            replay_violations.append(
                Violation(
                    "replay_isomorphism",
                    "served script failed to replay",
                    {"job": result.job_id, "error": f"{type(exc).__name__}: {exc}"},
                )
            )
        report.record("replay_isomorphism", replay_violations)

        accounting = []
        script = result.script
        if script is not None:
            if len(script.inserts) - len(script.deletes) != len(new_tree) - len(old_tree):
                accounting.append(
                    Violation(
                        "cost_accounting",
                        "conservation law violated: #INS - #DEL != |new| - |old|",
                        {"job": result.job_id},
                    )
                )
            if abs(result.cost - script.cost()) > 1e-9:
                accounting.append(
                    Violation(
                        "cost_accounting",
                        "served cost differs from the script's cost",
                        {
                            "job": result.job_id,
                            "served": result.cost,
                            "script": script.cost(),
                        },
                    )
                )
        report.record("cost_accounting", accounting)

        self.metrics.absorb_verify_report(report)
        self.metrics.incr("verify_checks")
        if not report.ok:
            self.metrics.incr("verify_failures")
        return report.ok

    def _diff_into(self, result: JobResult, old_tree: Tree, new_tree: Tree) -> None:
        old_index = cached_digests(old_tree)
        new_index = cached_digests(new_tree)
        result.old_digest = old_index.root_hex
        result.new_digest = new_index.root_hex

        # 1. Merkle short-circuit: identical snapshots need no matching.
        if old_index.root == new_index.root:
            self.metrics.incr("digest_short_circuits")
            result.source = "digest"
            result.script = EditScript()
            result.summary = result.script.summary()
            result.attempts = 0
            return

        # 2. Cache lookup by content digests + config.
        key = (result.old_digest, result.new_digest, self._config_key)
        if self.cache is not None:
            payload = self.cache.get(key)
            if payload is not None:
                self.metrics.incr("cache_hits")
                script, wrapped, dummy_id = instantiate_script(payload, old_tree)
                result.source = "cache"
                result.script = script
                result.wrapped = wrapped
                result.dummy_id = dummy_id
                result.operations = len(script)
                result.cost = payload.get("cost", script.cost())
                result.summary = dict(payload.get("summary", script.summary()))
                return
            self.metrics.incr("cache_misses")

        # 3. Compute (with bounded retry), then populate the cache.
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            result.attempts = attempt + 1
            if attempt:
                self.metrics.incr("jobs_retried")
            try:
                payload, stage_ms = self._compute(old_tree, new_tree)
                break
            except Exception as exc:
                last_error = exc
        else:
            raise last_error  # type: ignore[misc]

        result.stage_ms = stage_ms
        for stage, milliseconds in stage_ms.items():
            self.metrics.observe_stage(stage, milliseconds)
        script, wrapped, dummy_id = self._bind(payload, old_tree)
        result.source = "computed"
        result.script = script
        result.wrapped = wrapped
        result.dummy_id = dummy_id
        result.operations = len(script)
        result.cost = payload["cost"]
        result.summary = dict(payload["summary"])
        if self.cache is not None:
            self.cache.put(key, payload)

    def _compute(
        self, old_tree: Tree, new_tree: Tree
    ) -> Tuple[Dict[str, Any], Dict[str, float]]:
        """Produce ``(canonical payload, per-stage wall ms)`` for one pair.

        Timings travel beside the payload, never inside it: the payload is
        what gets cached, and a cache entry must not embed one particular
        run's latencies.
        """
        if self.executor == "process":
            config = self.config if self.config is not None else MatchConfig()
            request = {
                "old": tree_to_dict(old_tree),
                "new": tree_to_dict(new_tree),
                "f": config.f,
                "t": config.t,
                "mei": config.match_empty_internals,
                "amr": config.always_match_roots,
                "algorithm": self.algorithm,
                "postprocess": self.postprocess,
            }
            response = self._process_pool().submit(_process_diff, request).result()
            return response["payload"], response["stage_ms"]
        diffed = self._pipeline.run(old_tree, new_tree)
        stage_ms = diffed.trace.stage_ms() if diffed.trace is not None else {}
        try:
            payload = canonicalize_script(
                diffed.script,
                old_tree,
                diffed.edit.wrapped,
                diffed.edit.dummy_t1_id,
            )
        except UncacheableScriptError:
            # Fall back to an uncanonicalized payload bound to this pair's
            # real identifiers; still correct for this job, never cached.
            payload = {
                "records": diffed.script.to_dicts(),
                "wrapped": diffed.edit.wrapped,
                "dummy_id": diffed.edit.dummy_t1_id,
                "cost": diffed.script.cost(),
                "summary": diffed.script.summary(),
                "_unportable": True,
            }
        return payload, stage_ms

    def _bind(self, payload: Dict[str, Any], old_tree: Tree) -> Tuple[EditScript, bool, Any]:
        if payload.get("_unportable"):
            return (
                EditScript.from_dicts(payload["records"]),
                bool(payload["wrapped"]),
                payload.get("dummy_id"),
            )
        return instantiate_script(payload, old_tree)
