"""Content-addressed Merkle fingerprints for subtrees.

The serving layer (:mod:`repro.service`) needs a cheap way to recognize
that two snapshots — or two subtrees — are identical without running any
matching algorithm. Each node gets a digest of ``(label, value, child
digests)``, computed bottom-up in one post-order pass, so:

* equal **root** digests imply the trees are isomorphic (identical up to
  node identifiers, Section 3.1's equivalence) and the engine can
  short-circuit to an empty edit script;
* equal **subtree** digests give an O(1) ``equal``-subtree fast path that
  matching layers can consult instead of walking both subtrees.

The converse direction is exact for the value types the library uses in
practice (strings, numbers of one type, ``None``): the encoding is
injective, so isomorphic trees always hash equal. The one caveat is
cross-type equality — Python says ``1 == 1.0`` but the digests differ —
which only matters if a corpus mixes numeric types for the same logical
value.
"""

from __future__ import annotations

import hashlib
import json
import struct
from typing import Any, Dict, List, Optional

from ..core.arena import TreeArena
from ..core.node import Node
from ..core.tree import Tree

#: Digest width in bytes. 16 bytes (128 bits) keeps indexes small while
#: making accidental collisions on realistic corpora vanishingly unlikely.
DIGEST_SIZE = 16

#: Digest assigned to the empty tree.
EMPTY_TREE_DIGEST = hashlib.blake2b(b"empty-tree", digest_size=DIGEST_SIZE).digest()

_LEN = struct.Struct(">I")


def _encode_field(data: bytes) -> bytes:
    """Length-prefix a field so concatenated fields cannot be ambiguous."""
    return _LEN.pack(len(data)) + data


def _encode_value(value: Any) -> bytes:
    """Deterministic byte encoding of a node value.

    JSON with sorted keys covers the library's interchange types; anything
    non-JSON falls back to ``repr`` with a distinct tag so the two spaces
    cannot collide.
    """
    if value is None:
        return b"\x00"
    try:
        return b"j" + json.dumps(
            value, sort_keys=True, ensure_ascii=False, separators=(",", ":")
        ).encode("utf-8", "surrogatepass")
    except (TypeError, ValueError):
        return b"r" + repr(value).encode("utf-8", "surrogatepass")


def _node_digest(node: Node, child_digests: bytes) -> bytes:
    hasher = hashlib.blake2b(digest_size=DIGEST_SIZE)
    hasher.update(_encode_field(str(node.label).encode("utf-8", "surrogatepass")))
    hasher.update(_encode_field(_encode_value(node.value)))
    hasher.update(child_digests)
    return hasher.digest()


class DigestIndex:
    """Per-subtree Merkle digests for one tree, keyed by node identifier."""

    __slots__ = ("by_id", "root")

    def __init__(self, by_id: Dict[Any, bytes], root: bytes) -> None:
        self.by_id = by_id
        self.root = root

    @property
    def root_hex(self) -> str:
        """Hex fingerprint of the whole tree."""
        return self.root.hex()

    def get(self, node_id: Any) -> bytes:
        """Digest of the subtree rooted at *node_id*."""
        return self.by_id[node_id]

    def subtree_hex(self, node_id: Any) -> str:
        return self.by_id[node_id].hex()

    def subtrees_equal(self, node_id: Any, other: "DigestIndex", other_id: Any) -> bool:
        """O(1) isomorphism check between two indexed subtrees.

        This is the ``equal``-subtree fast path: when it returns True the
        subtrees are identical up to node identifiers, so a matcher may
        pair them wholesale without comparing leaves.
        """
        return self.by_id[node_id] == other.by_id[other_id]

    def __len__(self) -> int:
        return len(self.by_id)


def arena_digests(arena: TreeArena) -> DigestIndex:
    """Compute per-subtree digests directly over arena arrays.

    One reverse-preorder pass (children precede parents); label and value
    encodings are computed once per interned pool entry instead of once
    per node. Byte-identical to the object-path digests.
    """
    n = arena.n
    if n == 0:
        return DigestIndex({}, EMPTY_TREE_DIGEST)
    label_enc = [
        _encode_field(str(label).encode("utf-8", "surrogatepass"))
        for label in arena.label_pool
    ]
    value_enc = [_encode_field(_encode_value(v)) for v in arena.value_pool]
    labels = arena.labels
    values = arena.values
    parents = arena.parent
    blake2b = hashlib.blake2b
    digests: List[Optional[bytes]] = [None] * n
    # Children digests accumulate right-to-left as the reverse pass meets
    # them; reverse once per parent when hashing.
    pending: List[Optional[List[bytes]]] = [None] * n
    for pos in range(n - 1, -1, -1):
        hasher = blake2b(digest_size=DIGEST_SIZE)
        hasher.update(label_enc[labels[pos]])
        hasher.update(value_enc[values[pos]])
        children = pending[pos]
        if children is not None:
            children.reverse()
            hasher.update(b"".join(children))
            pending[pos] = None
        digest = hasher.digest()
        digests[pos] = digest
        parent_pos = parents[pos]
        if parent_pos >= 0:
            parts = pending[parent_pos]
            if parts is None:
                pending[parent_pos] = [digest]
            else:
                parts.append(digest)
    by_id = dict(zip(arena.node_ids, digests))
    return DigestIndex(by_id, digests[0])


def compute_digests(tree: Tree) -> DigestIndex:
    """Compute per-subtree digests in one iterative post-order pass.

    Reads the tree's cached arena snapshot when present (no node graph is
    materialized on the parse/copy/checkout paths); falls back to walking
    node objects otherwise.
    """
    arena = tree.arena_snapshot()
    if arena is not None:
        return arena_digests(arena)
    by_id: Dict[Any, bytes] = {}
    if tree.root is None:
        return DigestIndex(by_id, EMPTY_TREE_DIGEST)
    for node in tree.postorder():
        children = b"".join(by_id[child.id] for child in node.children)
        by_id[node.id] = _node_digest(node, children)
    return DigestIndex(by_id, by_id[tree.root.id])


def attach_digests(tree: Tree) -> DigestIndex:
    """Compute digests and attach the index to the tree as ``tree.digests``.

    The attachment is a plain attribute: any later mutation of the tree
    silently invalidates it, so callers on the mutation path should either
    recompute or use :func:`compute_digests` directly. Serving-layer code
    treats snapshots as immutable, where attachment is safe and lets the
    index be computed once per snapshot.
    """
    index = compute_digests(tree)
    tree.digests = index  # type: ignore[attr-defined]
    return index


def cached_digests(tree: Tree) -> DigestIndex:
    """Return ``tree.digests`` when present, else compute (without attaching)."""
    index: Optional[DigestIndex] = getattr(tree, "digests", None)
    if isinstance(index, DigestIndex):
        return index
    return compute_digests(tree)


def tree_fingerprint(tree: Tree) -> str:
    """Hex Merkle fingerprint of a whole tree (root digest)."""
    return cached_digests(tree).root_hex
