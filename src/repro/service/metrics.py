"""Counters and latency histograms for the serving layer.

The §8 instrumentation (:class:`repro.matching.criteria.MatchingStats`)
counts algorithmic work inside one diff; this module measures the *service*
around it: jobs processed, cache effectiveness, digest short-circuits,
operations emitted, and wall-time percentiles. Everything is thread-safe
(the engine records from worker threads) and exports a plain-dict
:meth:`ServiceMetrics.snapshot` consumed by the CLI and the benchmarks.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

from ..simtest.clock import monotonic_callable
from ..verify.oracles import VerifyReport

#: Counter names the engine maintains; unknown names are allowed (the
#: metrics object is schemaless) but these are always present in snapshots.
STANDARD_COUNTERS = (
    "jobs_submitted",
    "jobs_succeeded",
    "jobs_failed",
    "jobs_timed_out",
    "jobs_retried",
    "cache_hits",
    "cache_misses",
    "digest_short_circuits",
    "ops_emitted",
    "verify_checks",
    "verify_failures",
)


class LatencyHistogram:
    """Wall-time samples with percentile export.

    Keeps a bounded ring of recent samples (plus exact count/total so the
    mean never loses precision); percentiles are computed over the retained
    window, which is the standard recent-window approximation.
    """

    def __init__(
        self,
        max_samples: int = 4096,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self._max = max_samples
        self._samples: List[float] = []
        self._next = 0  # ring cursor once the window is full
        self.count = 0
        self.total = 0.0
        self._clock = clock if clock is not None else time.monotonic
        #: Monotonic stamps of the first/last observation (None until one
        #: lands) — under an injected clock these are virtual times, which
        #: is how the simulation harness asserts *when* latency was seen.
        self.first_at: Optional[float] = None
        self.last_at: Optional[float] = None

    def observe(self, value: float) -> None:
        now = self._clock()
        if self.first_at is None:
            self.first_at = now
        self.last_at = now
        self.count += 1
        self.total += value
        if len(self._samples) < self._max:
            self._samples.append(value)
        else:
            self._samples[self._next] = value
            self._next = (self._next + 1) % self._max

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The *p*-th percentile (0-100) of the retained window."""
        if not self._samples:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        ordered = sorted(self._samples)
        # Nearest-rank on the retained window.
        rank = max(0, min(len(ordered) - 1, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[int(rank)]


class ServiceMetrics:
    """Thread-safe counters + wall-time histograms for the diff engine.

    Besides the whole-job ``wall_ms`` histogram, the metrics keep one
    histogram per pipeline stage (``index``, ``match``, ``postprocess``,
    ``editscript``, ``deltatree``), fed either directly by the engine from
    each job's :class:`~repro.pipeline.Trace` or by subscribing
    :meth:`stage_listener` to a :class:`~repro.pipeline.DiffPipeline`.
    """

    def __init__(self, max_samples: int = 4096, clock: Optional[object] = None) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {name: 0 for name in STANDARD_COUNTERS}
        self._max_samples = max_samples
        # Accepts a Clock object or a bare () -> float monotonic callable;
        # drives the first_at/last_at stamps on every histogram.
        self._clock = monotonic_callable(clock)
        self.wall_ms = LatencyHistogram(max_samples, clock=self._clock)
        self._stages: Dict[str, LatencyHistogram] = {}
        self.verify = VerifyReport()

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def observe_wall(self, milliseconds: float) -> None:
        with self._lock:
            self.wall_ms.observe(milliseconds)

    def observe_stage(self, stage: str, milliseconds: float) -> None:
        """Record one pipeline-stage wall time under its stage name."""
        with self._lock:
            histogram = self._stages.get(stage)
            if histogram is None:
                histogram = self._stages[stage] = LatencyHistogram(
                    self._max_samples, clock=self._clock
                )
            histogram.observe(milliseconds)

    def stage_listener(self):
        """A span listener wiring a pipeline's trace into these metrics.

        Pass the result to :class:`~repro.pipeline.DiffPipeline` (the
        ``listeners`` argument or ``subscribe``): every stage span is then
        recorded here as it closes.
        """

        def on_span(span) -> None:
            self.observe_stage(span.name, span.wall_ms)

        return on_span

    def absorb_verify_report(self, report: VerifyReport) -> None:
        """Fold a :class:`~repro.verify.oracles.VerifyReport` into the
        metrics (the engine's ``verify_fraction`` spot checks, or any
        external battery run against served results)."""
        with self._lock:
            self.verify.merge(report)

    def stage_snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-stage latency stats (count/mean/p50/p95/p99), JSON-friendly."""
        with self._lock:
            return {
                name: {
                    "count": hist.count,
                    "mean_ms": round(hist.mean(), 3),
                    "p50_ms": round(hist.percentile(50), 3),
                    "p95_ms": round(hist.percentile(95), 3),
                    "p99_ms": round(hist.percentile(99), 3),
                }
                for name, hist in sorted(self._stages.items())
            }

    def reset(self) -> None:
        with self._lock:
            self._counters = {name: 0 for name in STANDARD_COUNTERS}
            self.wall_ms = LatencyHistogram(self.wall_ms._max, clock=self._clock)
            self._stages = {}
            self.verify = VerifyReport()

    def timestamps(self) -> Dict[str, Optional[float]]:
        """First/last observation stamps (clock-relative, virtual under sim)."""
        with self._lock:
            out: Dict[str, Optional[float]] = {
                "wall_first_at": self.wall_ms.first_at,
                "wall_last_at": self.wall_ms.last_at,
            }
            for name, hist in sorted(self._stages.items()):
                out[f"{name}_last_at"] = hist.last_at
            return out

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Export counters and latency stats as a JSON-friendly dict."""
        with self._lock:
            counters = dict(self._counters)
            wall = {
                "count": self.wall_ms.count,
                "mean_ms": round(self.wall_ms.mean(), 3),
                "p50_ms": round(self.wall_ms.percentile(50), 3),
                "p95_ms": round(self.wall_ms.percentile(95), 3),
                "p99_ms": round(self.wall_ms.percentile(99), 3),
                "max_ms": round(self.wall_ms.percentile(100), 3),
            }
        with self._lock:
            verify = self.verify.to_dict()
        return {
            "counters": counters,
            "wall_time": wall,
            "stages": self.stage_snapshot(),
            "verify": verify,
        }

    @staticmethod
    def merge_snapshots(
        snapshots: Dict[str, Dict[str, object]]
    ) -> Dict[str, object]:
        """Module-level :func:`merge_snapshots` exposed on the class."""
        return merge_snapshots(snapshots)

    def render(self, cache_stats: Optional[Dict[str, int]] = None) -> str:
        """Human-readable summary block (used by ``repro-diff batch``)."""
        snap = self.snapshot()
        counters = snap["counters"]
        wall = snap["wall_time"]
        lines = ["-- service metrics --"]
        for name in STANDARD_COUNTERS:
            lines.append(f"{name + ':':<24}{counters.get(name, 0)}")
        for name in sorted(set(counters) - set(STANDARD_COUNTERS)):
            lines.append(f"{name + ':':<24}{counters[name]}")
        lines.append(
            "wall time (ms):         "
            f"n={wall['count']} mean={wall['mean_ms']} "
            f"p50={wall['p50_ms']} p95={wall['p95_ms']} p99={wall['p99_ms']}"
        )
        for stage, stats in snap["stages"].items():
            lines.append(
                f"stage {stage + ':':<18}"
                f"n={stats['count']} mean={stats['mean_ms']} "
                f"p50={stats['p50_ms']} p95={stats['p95_ms']} p99={stats['p99_ms']}"
            )
        verify = snap["verify"]
        if verify["oracles"]:
            status = "ok" if verify["ok"] else "FAIL"
            checked = sum(o["pass"] + o["fail"] for o in verify["oracles"].values())
            failed = sum(o["fail"] for o in verify["oracles"].values())
            lines.append(
                f"verify:                 checks={checked} failures={failed} [{status}]"
            )
        if cache_stats is not None:
            lines.append(
                "cache:                  "
                f"size={cache_stats['size']}/{cache_stats['capacity']} "
                f"hits={cache_stats['hits']} misses={cache_stats['misses']} "
                f"evictions={cache_stats['evictions']}"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Cross-process aggregation (the cluster's /metrics endpoint)
# ---------------------------------------------------------------------------
def _merge_histogram_stats(stats_list):
    """Merge per-worker histogram *snapshots* (not raw samples).

    Counts sum exactly and means merge exactly (count-weighted). True
    percentiles are not recoverable from per-worker percentiles, so p50/p95/
    p99 merge as the count-weighted average — the standard snapshot-level
    approximation — while ``max_ms`` merges exactly as the max.
    """
    total = sum(int(stats.get("count", 0)) for stats in stats_list)
    keys = sorted({key for stats in stats_list for key in stats if key != "count"})
    merged = {"count": total}
    for key in keys:
        values = [
            (int(stats.get("count", 0)), float(stats.get(key, 0.0)))
            for stats in stats_list
            if key in stats
        ]
        if key == "max_ms":
            merged[key] = round(max((v for _, v in values), default=0.0), 3)
        elif total == 0:
            merged[key] = 0.0
        else:
            merged[key] = round(
                sum(count * value for count, value in values) / total, 3
            )
    return merged


def merge_snapshots(snapshots):
    """Merge per-worker :meth:`ServiceMetrics.snapshot` dicts into one view.

    *snapshots* maps a worker id to that worker's snapshot (the payload of
    its ``/metrics`` endpoint, or its final ``METRICS`` dump). The result
    mirrors the single-process snapshot shape — counters summed, wall-time
    and per-stage histograms merged, verify oracle tallies summed, cache
    stats summed — and additionally tags every input under ``workers`` so
    per-shard numbers stay inspectable.
    """
    ordered = {worker_id: snapshots[worker_id] for worker_id in sorted(snapshots)}
    counters: Dict[str, int] = {}
    for snap in ordered.values():
        for name, value in (snap.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + int(value)

    wall = _merge_histogram_stats(
        [snap.get("wall_time") or {} for snap in ordered.values()]
    )
    stage_names = sorted(
        {name for snap in ordered.values() for name in (snap.get("stages") or {})}
    )
    stages = {
        name: _merge_histogram_stats(
            [
                (snap.get("stages") or {}).get(name)
                for snap in ordered.values()
                if name in (snap.get("stages") or {})
            ]
        )
        for name in stage_names
    }

    verify_ok = True
    oracle_names: Dict[str, Dict[str, int]] = {}
    for snap in ordered.values():
        verify = snap.get("verify") or {}
        if not verify.get("ok", True):
            verify_ok = False
        for name, tally in (verify.get("oracles") or {}).items():
            merged_tally = oracle_names.setdefault(name, {"pass": 0, "fail": 0})
            merged_tally["pass"] += int(tally.get("pass", 0))
            merged_tally["fail"] += int(tally.get("fail", 0))

    cache: Optional[Dict[str, int]] = None
    for snap in ordered.values():
        worker_cache = snap.get("cache")
        if not isinstance(worker_cache, dict):
            continue
        if cache is None:
            cache = {key: 0 for key in worker_cache}
        for key, value in worker_cache.items():
            if isinstance(value, (int, float)):
                cache[key] = cache.get(key, 0) + int(value)

    trace: Optional[Dict[str, int]] = None
    for snap in ordered.values():
        worker_trace = snap.get("trace")
        if not isinstance(worker_trace, dict):
            continue
        if trace is None:
            trace = {}
        for key, value in worker_trace.items():
            if isinstance(value, (int, float)):
                trace[key] = trace.get(key, 0) + int(value)

    merged = {
        "counters": counters,
        "wall_time": wall,
        "stages": stages,
        "verify": {"ok": verify_ok, "oracles": oracle_names},
        "cache": cache,
        "workers": ordered,
    }
    if trace is not None:
        merged["trace"] = trace
    return merged
