"""Serving layer: concurrent diffing with Merkle digests, caching, metrics.

The algorithms under :mod:`repro.matching` and :mod:`repro.editscript`
reproduce the paper; this package makes them servable at warehouse scale
(the §1 scenario): :class:`DiffEngine` fans snapshot pairs over a worker
pool, short-circuits identical content via Merkle fingerprints, memoizes
edit scripts by content digest, and exports service metrics.

Quickstart::

    from repro.service import DiffEngine

    engine = DiffEngine(workers=4)
    results = engine.map_pairs([(old_a, new_a), (old_b, new_b)])
    for r in results:
        print(r.job_id, r.status, r.source, r.operations, f"{r.wall_ms:.1f}ms")
    print(engine.metrics.snapshot())
"""

from .cache import ScriptCache, canonicalize_script, instantiate_script
from .digest import (
    DigestIndex,
    attach_digests,
    cached_digests,
    compute_digests,
    tree_fingerprint,
)
from .engine import DiffEngine, JobResult, config_key
from .metrics import LatencyHistogram, ServiceMetrics

__all__ = [
    "DiffEngine",
    "DigestIndex",
    "JobResult",
    "LatencyHistogram",
    "ScriptCache",
    "ServiceMetrics",
    "attach_digests",
    "cached_digests",
    "canonicalize_script",
    "compute_digests",
    "config_key",
    "instantiate_script",
    "tree_fingerprint",
]
