"""Digest-keyed result cache for the diff engine.

Edit scripts reference concrete node identifiers, but the cache is keyed by
content digests — and two isomorphic snapshots generally carry *different*
identifiers. Caching raw scripts would therefore hand back operations that
do not apply to the caller's trees. The fix is a canonical identifier
space:

* every node of ``T1`` becomes ``o<k>`` (its preorder rank),
* the dummy root (when EditScript wrapped the pair) becomes ``d``,
* every freshly inserted node becomes ``n<j>`` in order of appearance.

For ordered trees the isomorphism is positional (the k-th preorder node of
one tree corresponds to the k-th of the other — see
:func:`repro.core.isomorphism.isomorphism_mapping`), so a canonicalized
script re-instantiates exactly onto any tree isomorphic to the one it was
computed from. That makes digest-keyed sharing sound.

:class:`ScriptCache` is a thread-safe bounded LRU over these canonical
payloads with hit/miss/eviction accounting and optional JSON spill-to-disk
for warm restarts.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import ReproError
from ..core.tree import Tree
from ..editscript.script import EditScript

#: Cache key: (old root digest, new root digest, configuration key).
CacheKey = Tuple[str, str, str]


class UncacheableScriptError(ReproError):
    """Raised when a script references identifiers outside T1's space."""


# ---------------------------------------------------------------------------
# Canonical script payloads
# ---------------------------------------------------------------------------
def canonicalize_script(
    script: EditScript,
    t1: Tree,
    wrapped: bool = False,
    dummy_t1_id: Any = None,
    cost: Optional[float] = None,
) -> Dict[str, Any]:
    """Serialize *script* with identifiers rewritten to the canonical space.

    The returned payload is JSON-friendly and independent of the concrete
    node identifiers of the pair it was computed from.
    """
    mapping: Dict[Any, str] = {}
    if wrapped and dummy_t1_id is not None:
        mapping[dummy_t1_id] = "d"
    for rank, node in enumerate(t1.preorder()):
        mapping[node.id] = f"o{rank}"

    fresh = 0
    records: List[Dict[str, Any]] = []
    for record in script.to_dicts():
        record = dict(record)
        parent_id = record.get("parent_id")
        if parent_id is not None:
            try:
                record["parent_id"] = mapping[parent_id]
            except KeyError:
                raise UncacheableScriptError(
                    f"script references unknown parent {parent_id!r}"
                ) from None
        node_id = record["node_id"]
        if node_id not in mapping:
            if record["op"] != "insert":
                raise UncacheableScriptError(
                    f"script references unknown node {node_id!r}"
                )
            mapping[node_id] = f"n{fresh}"
            fresh += 1
        record["node_id"] = mapping[node_id]
        records.append(record)
    return {
        "records": records,
        "wrapped": bool(wrapped),
        "cost": script.cost() if cost is None else cost,
        "summary": script.summary(),
    }


def instantiate_script(
    payload: Dict[str, Any], t1: Tree
) -> Tuple[EditScript, bool, Any]:
    """Rebind a canonical payload onto *t1*'s identifier space.

    Returns ``(script, wrapped, dummy_id)``; when ``wrapped`` is true the
    script must be applied to *t1* wrapped under a dummy root with
    ``dummy_id`` (see :meth:`repro.service.engine.JobResult.apply_to`).
    """
    reverse: Dict[str, Any] = {
        f"o{rank}": node.id for rank, node in enumerate(t1.preorder())
    }
    taken = set(t1.node_ids())

    def fresh_id(canonical: str) -> Any:
        candidate = f"svc:{canonical}"
        while candidate in taken:
            candidate += "_"
        taken.add(candidate)
        return candidate

    wrapped = bool(payload.get("wrapped"))
    dummy_id: Any = None
    if wrapped:
        dummy_id = fresh_id("d")
        reverse["d"] = dummy_id

    records: List[Dict[str, Any]] = []
    for record in payload["records"]:
        record = dict(record)
        for field in ("node_id", "parent_id"):
            canonical = record.get(field)
            if canonical is None:
                continue
            if canonical not in reverse:
                reverse[canonical] = fresh_id(canonical)
            record[field] = reverse[canonical]
        records.append(record)
    return EditScript.from_dicts(records), wrapped, dummy_id


# ---------------------------------------------------------------------------
# The LRU itself
# ---------------------------------------------------------------------------
class ScriptCache:
    """Bounded, thread-safe LRU of canonical script payloads.

    ``faults`` optionally takes an armed
    :class:`~repro.simtest.faults.FaultInjector`; a due
    ``corrupt_cache_entry`` fault makes the next hit behave as if the
    stored payload failed integrity checking — the entry is dropped and
    the lookup misses, so the caller recomputes (the cache self-heals
    rather than serving a poisoned script). ``None`` is a no-op.
    """

    def __init__(self, capacity: int = 256, faults: Optional[Any] = None) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._faults = faults
        self._entries: "OrderedDict[CacheKey, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.puts = 0
        self.corruptions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: CacheKey) -> Optional[Dict[str, Any]]:
        """Return the payload for *key* (refreshing recency) or ``None``."""
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self.misses += 1
                return None
            if self._faults is not None:
                fault = self._faults.fire("corrupt_cache_entry", target=key[0])
                if fault is not None:
                    # Poisoned entry: drop it and miss, forcing a recompute.
                    del self._entries[key]
                    self.corruptions += 1
                    self.misses += 1
                    return None
            self._entries.move_to_end(key)
            self.hits += 1
            return payload

    def put(self, key: CacheKey, payload: Dict[str, Any]) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = payload
            self.puts += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction accounting plus the current size."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "puts": self.puts,
                "corruptions": self.corruptions,
            }

    # ------------------------------------------------------------------
    # Spill-to-disk (warm restarts)
    # ------------------------------------------------------------------
    def save(self, path: str) -> int:
        """Write all entries to *path* as JSON; return the entry count."""
        with self._lock:
            entries = [
                {"key": list(key), "payload": payload}
                for key, payload in self._entries.items()
            ]
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"version": 1, "entries": entries}, handle)
        os.replace(tmp, path)
        return len(entries)

    def warm(self, path: str) -> int:
        """Load entries spilled by :meth:`save`; return how many were loaded.

        Missing files are not an error (a cold start simply stays cold).
        Entries are loaded in LRU order, so recency survives the restart;
        loading does not perturb the hit/miss counters.
        """
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            return 0
        loaded = 0
        with self._lock:
            for entry in data.get("entries", []):
                key = tuple(entry["key"])
                if len(key) != 3:
                    continue
                self._entries[key] = entry["payload"]
                self._entries.move_to_end(key)
                loaded += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return loaded
