"""Diffing semi-structured (OEM/JSON-like) data.

The paper's label-value tree model is borrowed from OEM, the Object
Exchange Model of [PGMW95] ("We have found this label-value model to be
useful for semi-structured data in general"). This module provides the
bridge: lossless, order-preserving conversion between nested Python data
(dicts, lists, scalars — i.e. parsed JSON) and :class:`~repro.core.Tree`,
so JSON documents can be diffed, annotated, and patched with the paper's
machinery.

Encoding
--------
* a dict becomes an ``object`` node whose children are ``member:<key>``
  nodes (one per entry, insertion order preserved) wrapping the value;
* a list becomes an ``array`` node whose children are the encoded items
  (order is significant, as in ordered trees);
* a scalar becomes a ``scalar`` leaf whose value is the scalar (type
  preserved for str/int/float/bool/None via a type tag in the value).

Because member keys live in the *label*, the matching criteria line up
naturally: Criterion 1's "same label" means "same key", and two objects
match when enough of their members match (Criterion 2) — no schema needed.
"""

from __future__ import annotations

from typing import Any, Optional

from .core.errors import ReproError
from .core.node import Node
from .core.tree import Tree
from .pipeline import DiffConfig, DiffPipeline, DiffResult
from .matching.criteria import MatchConfig

LABEL_OBJECT = "object"
LABEL_ARRAY = "array"
LABEL_SCALAR = "scalar"
MEMBER_PREFIX = "member:"


class OemError(ReproError):
    """Raised when data cannot be encoded or decoded."""


def data_to_tree(data: Any) -> Tree:
    """Encode nested dict/list/scalar data as a label-value tree."""
    tree = Tree()
    _encode(data, tree, None)
    return tree


def _encode(data: Any, tree: Tree, parent: Optional[Node]) -> None:
    if isinstance(data, dict):
        node = tree.create_node(LABEL_OBJECT, None, parent=parent)
        for key, value in data.items():
            if not isinstance(key, str):
                raise OemError(f"object keys must be strings, got {key!r}")
            member = tree.create_node(MEMBER_PREFIX + key, None, parent=node)
            _encode(value, tree, member)
    elif isinstance(data, (list, tuple)):
        node = tree.create_node(LABEL_ARRAY, None, parent=parent)
        for item in data:
            _encode(item, tree, node)
    else:
        if not (data is None or isinstance(data, (str, int, float, bool))):
            raise OemError(
                f"unsupported scalar type {type(data).__name__}; "
                f"encode it to str/int/float/bool/None first"
            )
        tree.create_node(LABEL_SCALAR, _tag_scalar(data), parent=parent)


def tree_to_data(tree: Tree) -> Any:
    """Inverse of :func:`data_to_tree`."""
    if tree.root is None:
        raise OemError("cannot decode an empty tree")
    return _decode(tree.root)


def _decode(node: Node) -> Any:
    if node.label == LABEL_OBJECT:
        out = {}
        for member in node.children:
            if not member.label.startswith(MEMBER_PREFIX):
                raise OemError(
                    f"object child has non-member label {member.label!r}"
                )
            if len(member.children) != 1:
                raise OemError(
                    f"member {member.label!r} must wrap exactly one value"
                )
            out[member.label[len(MEMBER_PREFIX):]] = _decode(member.children[0])
        return out
    if node.label == LABEL_ARRAY:
        return [_decode(child) for child in node.children]
    if node.label == LABEL_SCALAR:
        return _untag_scalar(node.value)
    raise OemError(f"unknown OEM label {node.label!r}")


def _tag_scalar(value: Any) -> str:
    """Scalars carry a type tag so 1, 1.0, True, "1", and None stay distinct.

    The tag doubles as the node *value* used by ``compare``: strings keep
    word-level similarity (useful for prose fields), other types compare
    exactly.
    """
    if value is None:
        return "null:"
    if isinstance(value, bool):  # bool before int: bool is an int subclass
        return f"bool:{value}"
    if isinstance(value, int):
        return f"int:{value}"
    if isinstance(value, float):
        return f"float:{value!r}"
    return f"str:{value}"


def _untag_scalar(tagged: Any) -> Any:
    if not isinstance(tagged, str) or ":" not in tagged:
        raise OemError(f"malformed scalar tag {tagged!r}")
    kind, _, body = tagged.partition(":")
    if kind == "null":
        return None
    if kind == "bool":
        return body == "True"
    if kind == "int":
        return int(body)
    if kind == "float":
        return float(body)
    if kind == "str":
        return body
    raise OemError(f"unknown scalar tag {kind!r}")


def _scalar_compare(a: Any, b: Any) -> float:
    """Distance between two *tagged* scalars, computed on decoded values.

    Same-type scalars compare by their natural notion of closeness (word
    LCS for strings, relative distance for numbers); different types are
    maximally distant, preserving the 1-vs-"1" distinction.
    """
    from .compare.generic import default_compare

    try:
        va, vb = _untag_scalar(a), _untag_scalar(b)
    except OemError:
        return 0.0 if a == b else 2.0
    if type(va) is not type(vb):
        return 0.0 if va == vb else 2.0  # 1 == 1.0 is fine; 1 != "1"
    return default_compare(va, vb)


def oem_match_config(f: float = 0.6, t: float = 0.5) -> MatchConfig:
    """A :class:`MatchConfig` tuned for OEM-encoded data.

    Scalar leaves compare on their decoded values (so ``price: 10 -> 12``
    becomes a cheap update rather than a delete/insert pair), while the
    structural thresholds keep their document defaults.
    """
    config = MatchConfig(f=f, t=t)
    config.registry.register(LABEL_SCALAR, _scalar_compare)
    return config


def json_diff(
    old: Any,
    new: Any,
    config: Optional[MatchConfig] = None,
) -> "JsonDiffResult":
    """Diff two nested data values; return the script plus both trees.

    Uses :func:`oem_match_config` when *config* is omitted.
    """
    old_tree = data_to_tree(old)
    new_tree = data_to_tree(new)
    config = config if config is not None else oem_match_config()
    result = DiffPipeline(DiffConfig(match=config)).run(old_tree, new_tree)
    return JsonDiffResult(old_tree=old_tree, new_tree=new_tree, diff=result)


class JsonDiffResult:
    """Result of :func:`json_diff` with patch/verify conveniences."""

    def __init__(self, old_tree: Tree, new_tree: Tree, diff: DiffResult) -> None:
        self.old_tree = old_tree
        self.new_tree = new_tree
        self.diff = diff

    @property
    def script(self):
        return self.diff.script

    def verify(self) -> bool:
        """True when the script transforms the old encoding into the new."""
        return self.diff.verify(self.old_tree, self.new_tree)

    def patch(self, data: Any) -> Any:
        """Apply the delta to a data value equal to the old one."""
        tree = data_to_tree(data)
        patched = self.diff.edit.replay(tree)
        return tree_to_data(patched)
