"""Change detection for graph-structured data (paper §9 future work).

"Generalizing our algorithms to detect changes in data that can be
represented as graphs but not necessarily trees."

This module implements the natural reduction: an ordered, rooted graph
(sharing and cycles allowed) is encoded as an ordered tree by DFS — the
first visit of a node materializes it, and every later edge to an
already-visited node becomes a ``__ref__`` leaf carrying a value-based
signature of its target. Two encodings are then diffed with the standard
pipeline, so node insertions/deletions/updates/moves *and* edge
rewirings (as ref-leaf inserts/deletes) are all captured in one edit
script.

Like the paper's algorithms, matching is value-based: node identifiers are
never compared across versions, and reference signatures are built from
target labels/values so shared structure matches even when ids differ.

Limitations (inherent to the reduction, documented here): nodes unreachable
from the root are invisible, and a node's "home position" is its first DFS
visit — if the first incoming edge changes, the encoding shows a move plus
reference churn rather than a single edge flip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .core.errors import ReproError
from .core.tree import Tree
from .pipeline import DiffConfig, DiffPipeline, DiffResult
from .matching.criteria import MatchConfig

REF_LABEL = "__ref__"


class GraphError(ReproError):
    """Raised for malformed graphs (unknown ids, missing root, ...)."""


@dataclass
class Graph:
    """An ordered, rooted, labeled graph.

    ``nodes`` maps node id -> (label, value); ``edges`` maps node id -> the
    ordered list of successor ids; ``root`` is the DFS entry point. Ids are
    local to one graph version and carry no cross-version meaning.
    """

    root: Any
    nodes: Dict[Any, Tuple[str, Any]] = field(default_factory=dict)
    edges: Dict[Any, List[Any]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_node(self, node_id: Any, label: str, value: Any = None) -> None:
        if node_id in self.nodes:
            raise GraphError(f"duplicate graph node id {node_id!r}")
        self.nodes[node_id] = (label, value)
        self.edges.setdefault(node_id, [])

    def add_edge(self, source: Any, target: Any, position: Optional[int] = None) -> None:
        for node_id in (source, target):
            if node_id not in self.nodes:
                raise GraphError(f"unknown graph node id {node_id!r}")
        successors = self.edges.setdefault(source, [])
        if position is None:
            successors.append(target)
        else:
            successors.insert(position, target)

    def validate(self) -> None:
        if self.root not in self.nodes:
            raise GraphError(f"root {self.root!r} is not a graph node")
        for source, targets in self.edges.items():
            if source not in self.nodes:
                raise GraphError(f"edge source {source!r} is not a node")
            for target in targets:
                if target not in self.nodes:
                    raise GraphError(f"edge target {target!r} is not a node")

    def reachable(self) -> List[Any]:
        """Node ids reachable from the root, in DFS first-visit order."""
        seen: Dict[Any, None] = {}
        stack = [self.root]
        order: List[Any] = []
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen[current] = None
            order.append(current)
            stack.extend(reversed(self.edges.get(current, ())))
        return order


def encode_graph(graph: Graph) -> Tree:
    """Encode a graph as an ordered tree with ``__ref__`` leaves.

    DFS from the root in successor order: the first visit of each node
    creates a tree node; every subsequent edge into it creates a
    ``__ref__`` leaf whose value is the target's signature.
    """
    graph.validate()
    tree = Tree()
    visited: Dict[Any, None] = {}

    def signature(node_id: Any) -> str:
        label, value = graph.nodes[node_id]
        return f"{label}={value!r}" if value is not None else label

    def visit(node_id: Any, parent) -> None:
        label, value = graph.nodes[node_id]
        visited[node_id] = None
        tree_node = tree.create_node(label, value, parent=parent)
        for target in graph.edges.get(node_id, ()):
            if target in visited:
                tree.create_node(REF_LABEL, signature(target), parent=tree_node)
            else:
                visit(target, tree_node)

    visit(graph.root, None)
    return tree


@dataclass
class GraphDiffResult:
    """Diff of two graphs via their tree encodings."""

    old_tree: Tree
    new_tree: Tree
    diff: DiffResult

    @property
    def script(self):
        return self.diff.script

    def verify(self) -> bool:
        return self.diff.verify(self.old_tree, self.new_tree)

    def edge_changes(self) -> Dict[str, int]:
        """Reference churn: inserted/deleted ``__ref__`` leaves.

        These correspond to non-spanning-tree edges appearing or vanishing;
        spanning edges show up as node moves/inserts/deletes instead.
        """
        inserted = sum(
            1 for op in self.script.inserts if op.label == REF_LABEL
        )
        deleted = 0
        for op in self.script.deletes:
            node = self.old_tree.get(op.node_id) if op.node_id in self.old_tree else None
            if node is not None and node.label == REF_LABEL:
                deleted += 1
        return {"ref_inserted": inserted, "ref_deleted": deleted}


def graph_diff(
    old: Graph,
    new: Graph,
    config: Optional[MatchConfig] = None,
) -> GraphDiffResult:
    """Detect changes between two graph versions (value-based matching)."""
    old_tree = encode_graph(old)
    new_tree = encode_graph(new)
    result = DiffPipeline(DiffConfig(match=config)).run(old_tree, new_tree)
    return GraphDiffResult(old_tree=old_tree, new_tree=new_tree, diff=result)
