"""Generic value comparators and a per-label comparator registry.

The paper's cost model (Section 3.2) is parameterized by a ``compare``
function returning a distance in ``[0, 2]``; the "right" function depends on
the node's label (sentences vs. numeric attributes vs. opaque blobs). The
:class:`CompareRegistry` routes each label to its comparator, defaulting to
the word-LCS sentence distance for strings and exact comparison otherwise.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from .sentence import word_lcs_distance

Comparator = Callable[[Any, Any], float]


def exact_compare(a: Any, b: Any) -> float:
    """0.0 for equal values, 2.0 otherwise (keys, ids, opaque payloads)."""
    return 0.0 if a == b else 2.0


def numeric_compare(a: Any, b: Any) -> float:
    """Relative numeric distance scaled to ``[0, 2]``.

    ``|a - b| / max(|a|, |b|)`` clipped to 2; equal values (including both
    zero) are at distance 0. Non-numeric inputs fall back to exact
    comparison.
    """
    try:
        fa, fb = float(a), float(b)
    except (TypeError, ValueError):
        return exact_compare(a, b)
    if fa == fb:
        return 0.0
    scale = max(abs(fa), abs(fb))
    if scale == 0.0:
        return 0.0
    return min(2.0, abs(fa - fb) / scale)


def default_compare(a: Any, b: Any) -> float:
    """Dispatch on value type: strings by word LCS, numbers relatively.

    ``None`` pairs with ``None`` at distance 0 and with anything else at
    distance 2.
    """
    if a is None and b is None:
        return 0.0
    if a is None or b is None:
        return 2.0
    if isinstance(a, str) and isinstance(b, str):
        return word_lcs_distance(a, b)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return numeric_compare(a, b)
    return exact_compare(a, b)


class CompareRegistry:
    """Map node labels to comparators, with a configurable default.

    Example::

        registry = CompareRegistry()
        registry.register("S", SentenceComparator(case_sensitive=False))
        registry.register("price", numeric_compare)
        distance = registry.compare_nodes(node_a, node_b)
    """

    def __init__(self, default: Comparator = default_compare) -> None:
        self._default = default
        self._by_label: Dict[str, Comparator] = {}
        self.calls = 0

    def register(self, label: str, comparator: Comparator) -> None:
        """Route values of nodes labeled *label* through *comparator*."""
        self._by_label[label] = comparator

    def comparator_for(self, label: Optional[str]) -> Comparator:
        """Return the comparator used for a given label."""
        if label is not None and label in self._by_label:
            return self._by_label[label]
        return self._default

    def compare(self, a: Any, b: Any, label: Optional[str] = None) -> float:
        """Compare two raw values under the (optional) label's comparator."""
        self.calls += 1
        return self.comparator_for(label)(a, b)

    def compare_nodes(self, node_a: Any, node_b: Any) -> float:
        """Compare two tree nodes' values; uses ``node_a``'s label for routing."""
        return self.compare(node_a.value, node_b.value, node_a.label)
