"""Word-level sentence comparison (the paper's leaf ``compare`` function).

Section 7: "Our comparison function for leaf nodes — which are sentences —
first computes the LCS of the words in the sentences, then counts the number
of words not in the LCS." We normalize that count to the required ``[0, 2]``
range (Section 3.2) as::

    compare(v1, v2) = (|w1| + |w2| - 2 |LCS(w1, w2)|) / max(|w1|, |w2|)

which is 0 for identical sentences, at most 1 when at least half the words of
the longer sentence survive, and 2 when nothing matches. A value below 1
means "move + update is cheaper than delete + insert", exactly the
consistency property the cost model asks for.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..lcs.myers import lcs_length

_WORD = re.compile(r"[^\s]+")


def tokenize_words(text: str) -> List[str]:
    """Split a sentence into whitespace-delimited words."""
    return _WORD.findall(text)


def word_lcs_distance(a: Optional[str], b: Optional[str]) -> float:
    """Distance in ``[0, 2]`` between two sentence values.

    ``None`` values compare as empty sentences; two empty sentences are at
    distance 0.
    """
    words_a = tokenize_words(a) if a else []
    words_b = tokenize_words(b) if b else []
    if not words_a and not words_b:
        return 0.0
    if not words_a or not words_b:
        return 2.0
    common = lcs_length(words_a, words_b)
    return (len(words_a) + len(words_b) - 2 * common) / max(
        len(words_a), len(words_b)
    )


class SentenceComparator:
    """Callable sentence comparator with optional normalization and caching.

    Parameters
    ----------
    case_sensitive:
        When ``False``, words are lower-cased before comparison.
    strip_punctuation:
        When ``True``, leading/trailing punctuation is removed from each
        word, so ``"end."`` matches ``"end"``.
    cache_size:
        Number of tokenizations memoized (sentences are compared against
        many candidates during matching, so tokenizing once pays off).
    """

    _PUNCT = ".,;:!?()[]{}\"'`"

    def __init__(
        self,
        case_sensitive: bool = True,
        strip_punctuation: bool = False,
        cache_size: int = 4096,
    ) -> None:
        self.case_sensitive = case_sensitive
        self.strip_punctuation = strip_punctuation
        self._cache_size = cache_size
        self._token_cache: dict = {}
        self.calls = 0  # instrumentation hook: number of compare invocations

    def _tokens(self, text: Optional[str]) -> Tuple[str, ...]:
        if not text:
            return ()
        cached = self._token_cache.get(text)
        if cached is not None:
            return cached
        words = tokenize_words(text)
        if not self.case_sensitive:
            words = [w.lower() for w in words]
        if self.strip_punctuation:
            words = [w.strip(self._PUNCT) for w in words]
            words = [w for w in words if w]
        tokens = tuple(words)
        if len(self._token_cache) >= self._cache_size:
            self._token_cache.clear()
        self._token_cache[text] = tokens
        return tokens

    def __call__(self, a: Optional[str], b: Optional[str]) -> float:
        self.calls += 1
        words_a = self._tokens(a)
        words_b = self._tokens(b)
        if not words_a and not words_b:
            return 0.0
        if not words_a or not words_b:
            return 2.0
        if words_a == words_b:
            return 0.0
        common = lcs_length(words_a, words_b)
        return (len(words_a) + len(words_b) - 2 * common) / max(
            len(words_a), len(words_b)
        )
