"""Value comparison functions (the paper's ``compare`` in ``[0, 2]``)."""

from .generic import (
    CompareRegistry,
    Comparator,
    default_compare,
    exact_compare,
    numeric_compare,
)
from .sentence import SentenceComparator, tokenize_words, word_lcs_distance

__all__ = [
    "Comparator",
    "CompareRegistry",
    "SentenceComparator",
    "default_compare",
    "exact_compare",
    "numeric_compare",
    "tokenize_words",
    "word_lcs_distance",
]
