"""Serialization of trees to and from plain data and s-expressions.

Two interchange formats are supported:

* **dict format** — JSON-friendly nested dictionaries carrying identifiers,
  suitable for persisting snapshots ("database dumps" in the paper's legacy
  scenario) and reloading them losslessly.
* **s-expression format** — a compact human-writable text form used in tests
  and example fixtures: ``(D (P (S "a") (S "b")))``.

Both parsers build a :class:`~repro.core.arena.TreeArena` directly — no
intermediate :class:`Node` graph — and return a lazy :class:`Tree` view
over it. A parsed tree that is only indexed, digested, or re-serialized
never allocates node objects at all. The dumpers likewise read a fresh
arena snapshot when one is cached.
"""

from __future__ import annotations

import itertools
import re
from typing import Any, Dict, List, Optional

from .arena import ArenaBuilder, TreeArena
from .errors import ParseError
from .node import Node
from .tree import Tree


# ---------------------------------------------------------------------------
# dict format
# ---------------------------------------------------------------------------
def tree_to_dict(tree: Tree) -> Optional[Dict[str, Any]]:
    """Serialize a tree to nested dicts, preserving node identifiers."""
    arena = tree.arena_snapshot()
    if arena is not None:
        return arena_to_dict(arena)
    if tree.root is None:
        return None

    def dump(node: Node) -> Dict[str, Any]:
        out: Dict[str, Any] = {"id": node.id, "label": node.label}
        if node.value is not None:
            out["value"] = node.value
        if node.children:
            out["children"] = [dump(child) for child in node.children]
        return out

    return dump(tree.root)


def tree_from_dict(data: Optional[Dict[str, Any]]) -> Tree:
    """Inverse of :func:`tree_to_dict`."""
    return Tree.from_arena(arena_from_dict(data))


def arena_to_dict(arena: TreeArena) -> Optional[Dict[str, Any]]:
    """Serialize an arena to nested dicts, preserving node identifiers."""
    if arena.n == 0:
        return None

    def dump(pos: int) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "id": arena.node_ids[pos],
            "label": arena.label_of(pos),
        }
        value = arena.value_of(pos)
        if value is not None:
            out["value"] = value
        children = arena.children_of(pos)
        if children:
            out["children"] = [dump(child) for child in children]
        return out

    return dump(0)


def arena_from_dict(data: Optional[Dict[str, Any]]) -> TreeArena:
    """Parse the dict format straight into an arena (no node objects).

    Explicit identifiers are preserved; missing ones are assigned from a
    counter starting at 1, skipping identifiers already taken — the same
    rule :meth:`Tree.create_node` applies on the object path.
    """
    builder = ArenaBuilder()
    if data is None:
        return builder.finish()
    counter = itertools.count(1)
    stack: List[Any] = [(data, -1)]
    while stack:
        spec, parent_pos = stack.pop()
        node_id = spec.get("id")
        if node_id is None:
            node_id = next(counter)
            while node_id in builder.pos_of:
                node_id = next(counter)
        pos = builder.add(parent_pos, node_id, spec["label"], spec.get("value"))
        for child in reversed(spec.get("children", ())):
            stack.append((child, pos))
    return builder.finish()


def _tree_from_dict_objects(data: Optional[Dict[str, Any]]) -> Tree:
    """The pre-arena object-path parser, kept as a benchmark baseline."""
    tree = Tree()
    if data is None:
        return tree

    def build(spec: Dict[str, Any], parent: Optional[Node]) -> None:
        node = tree.create_node(
            spec["label"],
            spec.get("value"),
            parent=parent,
            node_id=spec.get("id"),
        )
        for child in spec.get("children", ()):
            build(child, node)

    build(data, None)
    return tree


# ---------------------------------------------------------------------------
# s-expression format
# ---------------------------------------------------------------------------
_TOKEN = re.compile(
    r"""
    \s*(?:
        (?P<open>\() |
        (?P<close>\)) |
        (?P<string>"(?:[^"\\]|\\.)*") |
        (?P<atom>[^\s()"]+)
    )
    """,
    re.VERBOSE,
)


def tree_to_sexpr(tree: Tree) -> str:
    """Render a tree as an s-expression (identifiers are dropped)."""
    arena = tree.arena_snapshot()
    if arena is not None:
        return arena_to_sexpr(arena)
    if tree.root is None:
        return "()"

    def dump(node: Node) -> str:
        parts = [node.label]
        if node.value is not None:
            parts.append(_quote(str(node.value)))
        parts.extend(dump(child) for child in node.children)
        return "(" + " ".join(parts) + ")"

    return dump(tree.root)


def arena_to_sexpr(arena: TreeArena) -> str:
    """Render an arena as an s-expression (identifiers are dropped)."""
    if arena.n == 0:
        return "()"

    def dump(pos: int) -> str:
        parts = [arena.label_of(pos)]
        value = arena.value_of(pos)
        if value is not None:
            parts.append(_quote(str(value)))
        parts.extend(dump(child) for child in arena.children_of(pos))
        return "(" + " ".join(parts) + ")"

    return dump(0)


def tree_from_sexpr(text: str) -> Tree:
    """Parse an s-expression such as ``(D (P (S "a") (S "b")))``.

    The first atom of each list is the node's label; an optional quoted
    string is the value; remaining lists are children.
    """
    return Tree.from_arena(arena_from_sexpr(text))


def arena_from_sexpr(text: str) -> TreeArena:
    """Parse the s-expression format straight into an arena.

    Node identifiers are assigned 1..n in preorder, as on the object path.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("empty s-expression")
    expr, rest = _parse_expr(tokens, 0)
    if rest != len(tokens):
        raise ParseError("trailing garbage after s-expression")
    builder = ArenaBuilder()
    if expr == []:
        return builder.finish()
    counter = itertools.count(1)

    def build(node_expr: Any, parent_pos: int) -> None:
        if not isinstance(node_expr, list) or not node_expr:
            raise ParseError(f"expected a (label ...) list, got {node_expr!r}")
        label = node_expr[0]
        if not isinstance(label, str) or label.startswith('"'):
            raise ParseError(f"node label must be a bare atom, got {label!r}")
        rest = node_expr[1:]
        value = None
        if rest and isinstance(rest[0], str) and rest[0].startswith('"'):
            value = _unquote(rest[0])
            rest = rest[1:]
        pos = builder.add(parent_pos, next(counter), label, value)
        for child in rest:
            build(child, pos)

    build(expr, -1)
    return builder.finish()


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError(f"bad token near {remainder[:20]!r}")
        pos = match.end()
        for kind in ("open", "close", "string", "atom"):
            token = match.group(kind)
            if token is not None:
                tokens.append(token)
                break
    return tokens


def _parse_expr(tokens: List[str], pos: int) -> Any:
    if tokens[pos] != "(":
        raise ParseError(f"expected '(' at token {pos}, got {tokens[pos]!r}")
    pos += 1
    items: List[Any] = []
    while pos < len(tokens) and tokens[pos] != ")":
        if tokens[pos] == "(":
            sub, pos = _parse_expr(tokens, pos)
            items.append(sub)
        else:
            items.append(tokens[pos])
            pos += 1
    if pos >= len(tokens):
        raise ParseError("unbalanced parentheses")
    return items, pos + 1


def _quote(value: str) -> str:
    return '"' + value.replace("\\", "\\\\").replace('"', '\\"') + '"'


def _unquote(token: str) -> str:
    body = token[1:-1]
    return body.replace('\\"', '"').replace("\\\\", "\\")
