"""Serialization of trees to and from plain data and s-expressions.

Two interchange formats are supported:

* **dict format** — JSON-friendly nested dictionaries carrying identifiers,
  suitable for persisting snapshots ("database dumps" in the paper's legacy
  scenario) and reloading them losslessly.
* **s-expression format** — a compact human-writable text form used in tests
  and example fixtures: ``(D (P (S "a") (S "b")))``.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional

from .errors import ParseError
from .node import Node
from .tree import Tree


# ---------------------------------------------------------------------------
# dict format
# ---------------------------------------------------------------------------
def tree_to_dict(tree: Tree) -> Optional[Dict[str, Any]]:
    """Serialize a tree to nested dicts, preserving node identifiers."""
    if tree.root is None:
        return None

    def dump(node: Node) -> Dict[str, Any]:
        out: Dict[str, Any] = {"id": node.id, "label": node.label}
        if node.value is not None:
            out["value"] = node.value
        if node.children:
            out["children"] = [dump(child) for child in node.children]
        return out

    return dump(tree.root)


def tree_from_dict(data: Optional[Dict[str, Any]]) -> Tree:
    """Inverse of :func:`tree_to_dict`."""
    tree = Tree()
    if data is None:
        return tree

    def build(spec: Dict[str, Any], parent: Optional[Node]) -> None:
        node = tree.create_node(
            spec["label"],
            spec.get("value"),
            parent=parent,
            node_id=spec.get("id"),
        )
        for child in spec.get("children", ()):
            build(child, node)

    build(data, None)
    return tree


# ---------------------------------------------------------------------------
# s-expression format
# ---------------------------------------------------------------------------
_TOKEN = re.compile(
    r"""
    \s*(?:
        (?P<open>\() |
        (?P<close>\)) |
        (?P<string>"(?:[^"\\]|\\.)*") |
        (?P<atom>[^\s()"]+)
    )
    """,
    re.VERBOSE,
)


def tree_to_sexpr(tree: Tree) -> str:
    """Render a tree as an s-expression (identifiers are dropped)."""
    if tree.root is None:
        return "()"

    def dump(node: Node) -> str:
        parts = [node.label]
        if node.value is not None:
            parts.append(_quote(str(node.value)))
        parts.extend(dump(child) for child in node.children)
        return "(" + " ".join(parts) + ")"

    return dump(tree.root)


def tree_from_sexpr(text: str) -> Tree:
    """Parse an s-expression such as ``(D (P (S "a") (S "b")))``.

    The first atom of each list is the node's label; an optional quoted
    string is the value; remaining lists are children.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("empty s-expression")
    expr, rest = _parse_expr(tokens, 0)
    if rest != len(tokens):
        raise ParseError("trailing garbage after s-expression")
    tree = Tree()
    if expr == []:
        return tree

    def build(node_expr: Any, parent: Optional[Node]) -> None:
        if not isinstance(node_expr, list) or not node_expr:
            raise ParseError(f"expected a (label ...) list, got {node_expr!r}")
        label = node_expr[0]
        if not isinstance(label, str) or label.startswith('"'):
            raise ParseError(f"node label must be a bare atom, got {label!r}")
        rest = node_expr[1:]
        value = None
        if rest and isinstance(rest[0], str) and rest[0].startswith('"'):
            value = _unquote(rest[0])
            rest = rest[1:]
        node = tree.create_node(label, value, parent=parent)
        for child in rest:
            build(child, node)

    build(expr, None)
    return tree


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError(f"bad token near {remainder[:20]!r}")
        pos = match.end()
        for kind in ("open", "close", "string", "atom"):
            token = match.group(kind)
            if token is not None:
                tokens.append(token)
                break
    return tokens


def _parse_expr(tokens: List[str], pos: int) -> Any:
    if tokens[pos] != "(":
        raise ParseError(f"expected '(' at token {pos}, got {tokens[pos]!r}")
    pos += 1
    items: List[Any] = []
    while pos < len(tokens) and tokens[pos] != ")":
        if tokens[pos] == "(":
            sub, pos = _parse_expr(tokens, pos)
            items.append(sub)
        else:
            items.append(tokens[pos])
            pos += 1
    if pos >= len(tokens):
        raise ParseError("unbalanced parentheses")
    return items, pos + 1


def _quote(value: str) -> str:
    return '"' + value.replace("\\", "\\\\").replace('"', '\\"') + '"'


def _unquote(token: str) -> str:
    body = token[1:-1]
    return body.replace('\\"', '"').replace("\\\\", "\\")
