"""Core substrate: ordered labeled-value trees and their invariants."""

from .arena import (
    ArenaBuilder,
    ArenaOverlay,
    TreeArena,
    arenas_isomorphic,
    flatten_root,
)
from .errors import (
    CyclicMoveError,
    DuplicateNodeError,
    EditScriptError,
    InvalidPositionError,
    MatchingError,
    NotALeafError,
    ParseError,
    ReproError,
    RootOperationError,
    SchemaError,
    TreeError,
    UnknownNodeError,
)
from .isomorphism import (
    canonical_form,
    first_difference,
    isomorphism_mapping,
    trees_isomorphic,
)
from .node import Node
from .serialization import (
    tree_from_dict,
    tree_from_sexpr,
    tree_to_dict,
    tree_to_sexpr,
)
from .tree import Tree, map_tree

__all__ = [
    "ArenaBuilder",
    "ArenaOverlay",
    "TreeArena",
    "CyclicMoveError",
    "DuplicateNodeError",
    "EditScriptError",
    "InvalidPositionError",
    "MatchingError",
    "Node",
    "NotALeafError",
    "ParseError",
    "ReproError",
    "RootOperationError",
    "SchemaError",
    "Tree",
    "TreeError",
    "UnknownNodeError",
    "arenas_isomorphic",
    "canonical_form",
    "first_difference",
    "flatten_root",
    "isomorphism_mapping",
    "map_tree",
    "tree_from_dict",
    "tree_from_sexpr",
    "tree_to_dict",
    "tree_to_sexpr",
    "trees_isomorphic",
]
