"""Per-tree structural indexes shared across pipeline stages.

The matching criteria (Section 5.2), FastMatch's label chains (Section 5.3),
and EditScript's FindPos (Figure 9) all consume the same handful of facts
about a tree — leaf counts, contained-leaf sets, label chains, sibling
ranks — and the original wiring recomputed them ad hoc on every comparison
(``node.leaves()`` walks for Criterion 2, parent-chain ascents for
containment, ``children.index`` scans for FindPos).

:class:`TreeIndex` reads them off the tree's struct-of-arrays
:class:`~repro.core.arena.TreeArena` snapshot:

* preorder position doubles as preorder rank, and ``subtree_size`` turns
  "is *n* under *a*?" into one interval comparison;
* ``leaf_count[x]`` — ``|x|``, the Criterion-2 denominator — comes straight
  from the arena's lazy leaf-count array;
* a flat document-order leaf-position array with per-node span starts gives
  contained-leaf iteration without re-walking the subtree;
* ``chain_T(l)`` label chains and first-seen leaf/internal label lists —
  exactly what FastMatch's step 1 builds per run;
* 1-based child ranks — FindPos locates a node among its siblings in O(1);
* subtree Merkle digests, computed lazily by reusing
  :mod:`repro.service.digest`.

Node-facing accessors (:meth:`leaves_of`, :meth:`chains`, ...) bind arena
positions to :class:`Node` objects lazily, so building an index over a
freshly parsed (arena-only) tree allocates no nodes; purely positional
consumers never force them.

An index is a snapshot: it describes the tree *as it was at construction*.
Mutating the tree afterwards silently invalidates it, so mutation-path code
must rebuild (cheap, one pass) or fall back to the naive walks. Consumers
can test membership with :meth:`TreeIndex.owns`, which also detects nodes
created after the snapshot.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from .node import Node
from .tree import Tree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..service.digest import DigestIndex


class TreeIndex:
    """Immutable structural facts about one tree, read from its arena."""

    __slots__ = (
        "tree",
        "arena",
        "_leaf_positions",
        "_leaf_start",
        "_child_ranks",
        "_chain_pos",
        "_leaf_label_list",
        "_internal_label_list",
        "_order",
        "_node_map",
        "_node_chains",
        "_digests",
    )

    def __init__(self, tree: Tree) -> None:
        self.tree = tree
        arena = tree.to_arena()
        self.arena = arena
        n = arena.n
        first_child = arena.first_child
        next_sibling = arena.next_sibling
        labels = arena.labels
        label_pool = arena.label_pool

        leaf_positions = array("i")
        leaf_start = array("i", [0]) * n if n else array("i")
        child_ranks = array("i", [0]) * n if n else array("i")
        chain_pos: Dict[str, List[int]] = {}
        seen_leaf_labels: Dict[str, None] = {}
        seen_internal_labels: Dict[str, None] = {}
        for pos in range(n):
            leaf_start[pos] = len(leaf_positions)
            label = label_pool[labels[pos]]
            chain = chain_pos.get(label)
            if chain is None:
                chain_pos[label] = [pos]
            else:
                chain.append(pos)
            child = first_child[pos]
            if child < 0:
                leaf_positions.append(pos)
                seen_leaf_labels.setdefault(label, None)
            else:
                seen_internal_labels.setdefault(label, None)
                rank = 0
                while child >= 0:
                    rank += 1
                    child_ranks[child] = rank
                    child = next_sibling[child]

        self._leaf_positions = leaf_positions
        self._leaf_start = leaf_start
        self._child_ranks = child_ranks
        self._chain_pos = chain_pos
        self._leaf_label_list = list(seen_leaf_labels)
        self._internal_label_list = list(seen_internal_labels)
        self._order: Optional[List[Node]] = None
        self._node_map: Optional[Dict[Any, Node]] = None
        self._node_chains: Optional[Dict[str, List[Node]]] = None
        self._digests: Optional["DigestIndex"] = None

    # ------------------------------------------------------------------
    # Lazy node binding
    # ------------------------------------------------------------------
    def _nodes_in_order(self) -> List[Node]:
        """Node objects aligned with arena positions (bound on first use)."""
        order = self._order
        if order is None:
            order = self.tree._order_for(self.arena)
            self._order = order
        return order

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.arena.n

    def __contains__(self, node_id: Any) -> bool:
        return node_id in self.arena.pos_of

    def owns(self, node: Node) -> bool:
        """True when *node* is the very object this index was built over.

        Identifier spaces of two trees commonly overlap (both number nodes
        1..n), and nodes created after the snapshot may reuse ids, so the
        check is by object identity, not by id.
        """
        pos = self.arena.pos_of.get(node.id)
        if pos is None:
            return False
        return self._nodes_in_order()[pos] is node

    # ------------------------------------------------------------------
    # Structural facts (pure array arithmetic)
    # ------------------------------------------------------------------
    def rank(self, node_id: Any) -> int:
        """0-based preorder rank of the node (its arena position)."""
        return self.arena.pos_of[node_id]

    def subtree_size(self, node_id: Any) -> int:
        """Number of nodes (including itself) in the node's subtree."""
        arena = self.arena
        return arena.subtree_size[arena.pos_of[node_id]]

    def leaf_count(self, node_id: Any) -> int:
        """``|x|``: number of leaves contained in the node's subtree."""
        arena = self.arena
        return arena.leaf_count[arena.pos_of[node_id]]

    def is_under(self, node_id: Any, ancestor_id: Any) -> bool:
        """True when *ancestor_id* is a proper ancestor of *node_id*.

        One interval comparison instead of a parent-chain ascent: a node
        lies strictly inside an ancestor's preorder interval.
        """
        arena = self.arena
        pos_of = arena.pos_of
        a = pos_of[ancestor_id]
        n = pos_of[node_id]
        return a < n < a + arena.subtree_size[a]

    def leaves_of(self, node_id: Any) -> Sequence[Node]:
        """The leaves contained in the node's subtree, document order."""
        arena = self.arena
        pos = arena.pos_of[node_id]
        start = self._leaf_start[pos]
        stop = start + arena.leaf_count[pos]
        order = self._nodes_in_order()
        return [order[p] for p in self._leaf_positions[start:stop]]

    def leaf_span(self, node_id: Any) -> Tuple[int, int]:
        """``[start, stop)`` of the node's leaves in the flat leaf array."""
        arena = self.arena
        pos = arena.pos_of[node_id]
        start = self._leaf_start[pos]
        return start, start + arena.leaf_count[pos]

    def leaf_position_array(self) -> "array":
        """Arena positions of all leaves, document order (read-only)."""
        return self._leaf_positions

    def child_rank(self, node_id: Any) -> int:
        """1-based position among siblings (the paper's child index)."""
        rank = self._child_ranks[self.arena.pos_of[node_id]]
        if rank == 0:  # the root has no sibling position
            raise KeyError(node_id)
        return rank

    # ------------------------------------------------------------------
    # Label chains (FastMatch step 1)
    # ------------------------------------------------------------------
    def chain(self, label: str) -> Sequence[Node]:
        """``chain_T(l)``: nodes with the label, left-to-right."""
        return self.chains().get(label, ())

    def chains(self) -> Dict[str, List[Node]]:
        """All label chains (shared structure; treat as read-only)."""
        node_chains = self._node_chains
        if node_chains is None:
            order = self._nodes_in_order()
            node_chains = {
                label: [order[pos] for pos in positions]
                for label, positions in self._chain_pos.items()
            }
            self._node_chains = node_chains
        return node_chains

    def leaf_chain(self, label: str) -> List[Node]:
        """Leaf nodes with the label, left-to-right (may be empty)."""
        positions = self._chain_pos.get(label)
        if not positions:
            return []
        first_child = self.arena.first_child
        order = self._nodes_in_order()
        return [order[pos] for pos in positions if first_child[pos] < 0]

    def internal_chain(self, label: str) -> List[Node]:
        """Interior nodes with the label, left-to-right (may be empty)."""
        positions = self._chain_pos.get(label)
        if not positions:
            return []
        first_child = self.arena.first_child
        order = self._nodes_in_order()
        return [order[pos] for pos in positions if first_child[pos] >= 0]

    def node_table(self) -> Dict[Any, Node]:
        """The id → node mapping (shared structure; treat as read-only).

        Hot loops bind ``node_table().get`` once and combine the lookup
        with an identity check instead of calling :meth:`owns` per node.
        """
        node_map = self._node_map
        if node_map is None:
            node_map = dict(zip(self.arena.node_ids, self._nodes_in_order()))
            self._node_map = node_map
        return node_map

    def child_rank_table(self) -> Dict[Any, int]:
        """The id → 1-based sibling rank mapping (root omitted)."""
        child_ranks = self._child_ranks
        return {
            node_id: child_ranks[pos]
            for pos, node_id in enumerate(self.arena.node_ids)
            if child_ranks[pos]
        }

    def leaf_labels(self) -> List[str]:
        """Labels on at least one leaf, in first-seen document order."""
        return list(self._leaf_label_list)

    def internal_labels(self) -> List[str]:
        """Labels on at least one interior node, first-seen order."""
        return list(self._internal_label_list)

    # ------------------------------------------------------------------
    # Subtree digests (lazy; reuses the service layer's Merkle pass)
    # ------------------------------------------------------------------
    @property
    def digests(self) -> "DigestIndex":
        """Per-subtree Merkle digests (see :mod:`repro.service.digest`).

        Computed on first access and memoized; reuses an index already
        attached to the tree by the serving layer when present.
        """
        if self._digests is None:
            from ..service.digest import cached_digests

            self._digests = cached_digests(self.tree)
        return self._digests

    def subtrees_equal(
        self, node_id: Any, other: "TreeIndex", other_id: Any
    ) -> bool:
        """O(1) isomorphism fast path between two indexed subtrees."""
        return self.digests.get(node_id) == other.digests.get(other_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TreeIndex(nodes={self.arena.n}, "
            f"leaves={len(self._leaf_positions)})"
        )


class LegacyTreeIndex:
    """The pre-arena object-walking index, kept as a parity oracle.

    Builds every table by traversing :class:`Node` objects, exactly as
    before the arena refactor. The fuzz harness cross-checks
    :class:`TreeIndex` against it each iteration, and the arena benchmark
    uses it as the object-core baseline.
    """

    __slots__ = (
        "tree",
        "_nodes",
        "_pre_rank",
        "_size",
        "_leaf_count",
        "_leaf_span",
        "_leaves",
        "_chains",
        "_child_rank",
        "_leaf_labels",
        "_internal_labels",
        "_digests",
    )

    def __init__(self, tree: Tree) -> None:
        self.tree = tree
        self._nodes: Dict[Any, Node] = {}
        self._pre_rank: Dict[Any, int] = {}
        self._size: Dict[Any, int] = {}
        self._leaf_count: Dict[Any, int] = {}
        self._leaf_span: Dict[Any, Tuple[int, int]] = {}
        self._leaves: List[Node] = []
        self._chains: Dict[str, List[Node]] = {}
        self._child_rank: Dict[Any, int] = {}
        self._leaf_labels: List[str] = []
        self._internal_labels: List[str] = []
        self._digests: Optional["DigestIndex"] = None
        self._build(tree)

    def _build(self, tree: Tree) -> None:
        # Pass 1 (postorder): subtree sizes and leaf counts by accumulation.
        for node in tree.postorder():
            if node.is_leaf:
                self._size[node.id] = 1
                self._leaf_count[node.id] = 1
            else:
                self._size[node.id] = 1 + sum(
                    self._size[c.id] for c in node.children
                )
                self._leaf_count[node.id] = sum(
                    self._leaf_count[c.id] for c in node.children
                )
        # Pass 2 (preorder): ranks, chains, leaf spans, child ranks. In
        # preorder every leaf under a node is emitted before any node
        # outside its subtree, so the span is [emitted-so-far, +leaf_count).
        seen_leaf_labels: Dict[str, None] = {}
        seen_internal_labels: Dict[str, None] = {}
        for rank, node in enumerate(tree.preorder()):
            self._nodes[node.id] = node
            self._pre_rank[node.id] = rank
            self._chains.setdefault(node.label, []).append(node)
            start = len(self._leaves)
            self._leaf_span[node.id] = (start, start + self._leaf_count[node.id])
            if node.is_leaf:
                self._leaves.append(node)
                seen_leaf_labels.setdefault(node.label, None)
            else:
                seen_internal_labels.setdefault(node.label, None)
            for position, child in enumerate(node.children, start=1):
                self._child_rank[child.id] = position
        self._leaf_labels = list(seen_leaf_labels)
        self._internal_labels = list(seen_internal_labels)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: Any) -> bool:
        return node_id in self._nodes

    def owns(self, node: Node) -> bool:
        return self._nodes.get(node.id) is node

    def rank(self, node_id: Any) -> int:
        return self._pre_rank[node_id]

    def subtree_size(self, node_id: Any) -> int:
        return self._size[node_id]

    def leaf_count(self, node_id: Any) -> int:
        return self._leaf_count[node_id]

    def is_under(self, node_id: Any, ancestor_id: Any) -> bool:
        a = self._pre_rank[ancestor_id]
        n = self._pre_rank[node_id]
        return a < n < a + self._size[ancestor_id]

    def leaves_of(self, node_id: Any) -> Sequence[Node]:
        start, stop = self._leaf_span[node_id]
        return self._leaves[start:stop]

    def child_rank(self, node_id: Any) -> int:
        return self._child_rank[node_id]

    def chain(self, label: str) -> Sequence[Node]:
        return self._chains.get(label, ())

    def chains(self) -> Dict[str, List[Node]]:
        return self._chains

    def node_table(self) -> Dict[Any, Node]:
        return self._nodes

    def child_rank_table(self) -> Dict[Any, int]:
        return self._child_rank

    def leaf_labels(self) -> List[str]:
        return list(self._leaf_labels)

    def internal_labels(self) -> List[str]:
        return list(self._internal_labels)

    @property
    def digests(self) -> "DigestIndex":
        if self._digests is None:
            from ..service.digest import cached_digests

            self._digests = cached_digests(self.tree)
        return self._digests

    def subtrees_equal(
        self, node_id: Any, other: "LegacyTreeIndex", other_id: Any
    ) -> bool:
        return self.digests.get(node_id) == other.digests.get(other_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LegacyTreeIndex(nodes={len(self._nodes)}, "
            f"leaves={len(self._leaves)})"
        )


def build_index(tree: Tree) -> TreeIndex:
    """Construct a fresh :class:`TreeIndex` over *tree*."""
    return TreeIndex(tree)


def attach_index(tree: Tree) -> TreeIndex:
    """Build an index and attach it as ``tree.index`` for later reuse.

    Like :func:`repro.service.digest.attach_digests`, the attachment is a
    plain attribute: later mutation silently invalidates it, so only code
    treating snapshots as immutable should attach.
    """
    index = TreeIndex(tree)
    tree.index = index  # type: ignore[attr-defined]
    return index


def cached_index(tree: Tree) -> Tuple[TreeIndex, bool]:
    """Return ``(index, reused)`` — a still-valid attached index, or fresh.

    A stale attachment (tree mutated or attribute copied across trees) is
    detected by re-checking that the index was built over this very tree
    object and still agrees on the node population; staleness inside an
    unchanged node set is the caller's contract, as with digests.
    """
    index = getattr(tree, "index", None)
    if isinstance(index, TreeIndex) and index.tree is tree and len(index) == len(tree):
        return index, True
    return TreeIndex(tree), False
