"""Per-tree structural indexes shared across pipeline stages.

The matching criteria (Section 5.2), FastMatch's label chains (Section 5.3),
and EditScript's FindPos (Figure 9) all consume the same handful of facts
about a tree — leaf counts, contained-leaf sets, label chains, sibling
ranks — and the original wiring recomputed them ad hoc on every comparison
(``node.leaves()`` walks for Criterion 2, parent-chain ascents for
containment, ``children.index`` scans for FindPos).

:class:`TreeIndex` materializes all of them in two linear passes:

* ``leaf_count[x]`` — ``|x|``, the Criterion-2 denominator;
* preorder ranks + subtree sizes — an interval labeling that turns
  "is *n* under *a*?" into one integer comparison;
* a flat document-order leaf list with per-node spans — contained-leaf
  iteration without re-walking the subtree;
* ``chain_T(l)`` label chains and first-seen leaf/internal label lists —
  exactly what FastMatch's step 1 builds per run;
* 1-based child ranks — FindPos locates a node among its siblings in O(1);
* subtree Merkle digests, computed lazily by reusing
  :mod:`repro.service.digest`.

An index is a snapshot: it describes the tree *as it was at construction*.
Mutating the tree afterwards silently invalidates it, so mutation-path code
must rebuild (cheap, one pass) or fall back to the naive walks. Consumers
can test membership with :meth:`TreeIndex.owns`, which also detects nodes
created after the snapshot.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from .node import Node
from .tree import Tree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..service.digest import DigestIndex


class TreeIndex:
    """Immutable structural facts about one tree, built in linear time."""

    __slots__ = (
        "tree",
        "_nodes",
        "_pre_rank",
        "_size",
        "_leaf_count",
        "_leaf_span",
        "_leaves",
        "_chains",
        "_child_rank",
        "_leaf_labels",
        "_internal_labels",
        "_digests",
    )

    def __init__(self, tree: Tree) -> None:
        self.tree = tree
        self._nodes: Dict[Any, Node] = {}
        self._pre_rank: Dict[Any, int] = {}
        self._size: Dict[Any, int] = {}
        self._leaf_count: Dict[Any, int] = {}
        self._leaf_span: Dict[Any, Tuple[int, int]] = {}
        self._leaves: List[Node] = []
        self._chains: Dict[str, List[Node]] = {}
        self._child_rank: Dict[Any, int] = {}
        self._leaf_labels: List[str] = []
        self._internal_labels: List[str] = []
        self._digests: Optional["DigestIndex"] = None
        self._build(tree)

    def _build(self, tree: Tree) -> None:
        # Pass 1 (postorder): subtree sizes and leaf counts by accumulation.
        for node in tree.postorder():
            if node.is_leaf:
                self._size[node.id] = 1
                self._leaf_count[node.id] = 1
            else:
                self._size[node.id] = 1 + sum(
                    self._size[c.id] for c in node.children
                )
                self._leaf_count[node.id] = sum(
                    self._leaf_count[c.id] for c in node.children
                )
        # Pass 2 (preorder): ranks, chains, leaf spans, child ranks. In
        # preorder every leaf under a node is emitted before any node
        # outside its subtree, so the span is [emitted-so-far, +leaf_count).
        seen_leaf_labels: Dict[str, None] = {}
        seen_internal_labels: Dict[str, None] = {}
        for rank, node in enumerate(tree.preorder()):
            self._nodes[node.id] = node
            self._pre_rank[node.id] = rank
            self._chains.setdefault(node.label, []).append(node)
            start = len(self._leaves)
            self._leaf_span[node.id] = (start, start + self._leaf_count[node.id])
            if node.is_leaf:
                self._leaves.append(node)
                seen_leaf_labels.setdefault(node.label, None)
            else:
                seen_internal_labels.setdefault(node.label, None)
            for position, child in enumerate(node.children, start=1):
                self._child_rank[child.id] = position
        self._leaf_labels = list(seen_leaf_labels)
        self._internal_labels = list(seen_internal_labels)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: Any) -> bool:
        return node_id in self._nodes

    def owns(self, node: Node) -> bool:
        """True when *node* is the very object this index was built over.

        Identifier spaces of two trees commonly overlap (both number nodes
        1..n), and nodes created after the snapshot may reuse ids, so the
        check is by object identity, not by id.
        """
        return self._nodes.get(node.id) is node

    # ------------------------------------------------------------------
    # Structural facts
    # ------------------------------------------------------------------
    def rank(self, node_id: Any) -> int:
        """0-based preorder rank of the node."""
        return self._pre_rank[node_id]

    def subtree_size(self, node_id: Any) -> int:
        """Number of nodes (including itself) in the node's subtree."""
        return self._size[node_id]

    def leaf_count(self, node_id: Any) -> int:
        """``|x|``: number of leaves contained in the node's subtree."""
        return self._leaf_count[node_id]

    def is_under(self, node_id: Any, ancestor_id: Any) -> bool:
        """True when *ancestor_id* is a proper ancestor of *node_id*.

        One interval comparison instead of a parent-chain ascent: a node
        lies strictly inside an ancestor's preorder interval.
        """
        a = self._pre_rank[ancestor_id]
        n = self._pre_rank[node_id]
        return a < n < a + self._size[ancestor_id]

    def leaves_of(self, node_id: Any) -> Sequence[Node]:
        """The leaves contained in the node's subtree, document order."""
        start, stop = self._leaf_span[node_id]
        return self._leaves[start:stop]

    def child_rank(self, node_id: Any) -> int:
        """1-based position among siblings (the paper's child index)."""
        return self._child_rank[node_id]

    # ------------------------------------------------------------------
    # Label chains (FastMatch step 1)
    # ------------------------------------------------------------------
    def chain(self, label: str) -> Sequence[Node]:
        """``chain_T(l)``: nodes with the label, left-to-right."""
        return self._chains.get(label, ())

    def chains(self) -> Dict[str, List[Node]]:
        """All label chains (shared structure; treat as read-only)."""
        return self._chains

    def node_table(self) -> Dict[Any, Node]:
        """The id → node mapping (shared structure; treat as read-only).

        Hot loops bind ``node_table().get`` once and combine the lookup
        with an identity check instead of calling :meth:`owns` per node.
        """
        return self._nodes

    def child_rank_table(self) -> Dict[Any, int]:
        """The id → 1-based sibling rank mapping (treat as read-only)."""
        return self._child_rank

    def leaf_labels(self) -> List[str]:
        """Labels on at least one leaf, in first-seen document order."""
        return list(self._leaf_labels)

    def internal_labels(self) -> List[str]:
        """Labels on at least one interior node, first-seen order."""
        return list(self._internal_labels)

    # ------------------------------------------------------------------
    # Subtree digests (lazy; reuses the service layer's Merkle pass)
    # ------------------------------------------------------------------
    @property
    def digests(self) -> "DigestIndex":
        """Per-subtree Merkle digests (see :mod:`repro.service.digest`).

        Computed on first access and memoized; reuses an index already
        attached to the tree by the serving layer when present.
        """
        if self._digests is None:
            from ..service.digest import cached_digests

            self._digests = cached_digests(self.tree)
        return self._digests

    def subtrees_equal(
        self, node_id: Any, other: "TreeIndex", other_id: Any
    ) -> bool:
        """O(1) isomorphism fast path between two indexed subtrees."""
        return self.digests.get(node_id) == other.digests.get(other_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TreeIndex(nodes={len(self._nodes)}, leaves={len(self._leaves)})"


def build_index(tree: Tree) -> TreeIndex:
    """Construct a fresh :class:`TreeIndex` over *tree*."""
    return TreeIndex(tree)


def attach_index(tree: Tree) -> TreeIndex:
    """Build an index and attach it as ``tree.index`` for later reuse.

    Like :func:`repro.service.digest.attach_digests`, the attachment is a
    plain attribute: later mutation silently invalidates it, so only code
    treating snapshots as immutable should attach.
    """
    index = TreeIndex(tree)
    tree.index = index  # type: ignore[attr-defined]
    return index


def cached_index(tree: Tree) -> Tuple[TreeIndex, bool]:
    """Return ``(index, reused)`` — a still-valid attached index, or fresh.

    A stale attachment (tree mutated or attribute copied across trees) is
    detected by re-checking that the index was built over this very tree
    object and still agrees on the node population; staleness inside an
    unchanged node set is the caller's contract, as with digests.
    """
    index = getattr(tree, "index", None)
    if isinstance(index, TreeIndex) and index.tree is tree and len(index) == len(tree):
        return index, True
    return TreeIndex(tree), False
