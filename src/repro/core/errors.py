"""Exception hierarchy for the :mod:`repro` library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. More specific subclasses are raised close to the point of
failure with actionable messages.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TreeError(ReproError):
    """Base class for structural errors on ordered trees."""


class UnknownNodeError(TreeError):
    """A node identifier does not exist in the tree."""

    def __init__(self, node_id: object) -> None:
        super().__init__(f"unknown node id: {node_id!r}")
        self.node_id = node_id


class DuplicateNodeError(TreeError):
    """A node identifier is already present in the tree."""

    def __init__(self, node_id: object) -> None:
        super().__init__(f"duplicate node id: {node_id!r}")
        self.node_id = node_id


class InvalidPositionError(TreeError):
    """A child position is out of the legal 1..m+1 range."""

    def __init__(self, position: int, limit: int) -> None:
        super().__init__(
            f"invalid child position {position}; must be between 1 and {limit}"
        )
        self.position = position
        self.limit = limit


class NotALeafError(TreeError):
    """An operation that requires a leaf was applied to an interior node."""

    def __init__(self, node_id: object) -> None:
        super().__init__(
            f"node {node_id!r} has children; the paper's DEL operation only "
            f"deletes leaves (move or delete its descendants first)"
        )
        self.node_id = node_id


class CyclicMoveError(TreeError):
    """A move would make a node a descendant of itself."""

    def __init__(self, node_id: object, target_id: object) -> None:
        super().__init__(
            f"cannot move node {node_id!r} under {target_id!r}: the target is "
            f"inside the moved subtree"
        )
        self.node_id = node_id
        self.target_id = target_id


class RootOperationError(TreeError):
    """An operation (delete/move) was attempted on the root node."""

    def __init__(self, operation: str, node_id: object) -> None:
        super().__init__(f"cannot {operation} the root node {node_id!r}")
        self.operation = operation
        self.node_id = node_id


class ConfigError(ReproError, ValueError):
    """A diff configuration is invalid (unknown algorithm, bad threshold...).

    Raised eagerly at configuration-construction time so every front end
    (library, CLI, service) rejects bad inputs before any work is done.
    Subclasses :class:`ValueError` so callers that predate the typed error
    keep working.
    """


class EditScriptError(ReproError):
    """An edit script is malformed or cannot be applied."""


class MatchingError(ReproError):
    """A matching is malformed (not one-to-one, unknown nodes, ...)."""


class SchemaError(ReproError):
    """A label schema is inconsistent (e.g. unresolvable label cycle)."""


class ParseError(ReproError):
    """A document could not be parsed into a tree."""

    def __init__(self, message: str, line: int = 0) -> None:
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line
