"""Ordered labeled-value trees (the paper's data model, Section 3.1).

A :class:`Tree` owns a set of :class:`~repro.core.node.Node` objects indexed
by identifier and exposes exactly the four primitive mutations of the paper's
edit model (Section 3.2):

* :meth:`Tree.insert` — ``INS((x, l, v), y, k)``: new *leaf* as k-th child.
* :meth:`Tree.delete` — ``DEL(x)``: remove a *leaf*.
* :meth:`Tree.update` — ``UPD(x, val)``: replace a node's value.
* :meth:`Tree.move`   — ``MOV(x, y, k)``: re-parent a whole subtree.

Positions are 1-based, matching the paper. Structural invariants (leaf-only
insert/delete, no cyclic moves, position bounds) are enforced eagerly so a
buggy edit script fails loudly instead of corrupting the tree.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from .errors import (
    CyclicMoveError,
    DuplicateNodeError,
    InvalidPositionError,
    NotALeafError,
    RootOperationError,
    TreeError,
    UnknownNodeError,
)
from .node import Node

#: Nested-structure shorthand accepted by :meth:`Tree.from_obj`:
#: ``(label,)``, ``(label, value)`` or ``(label, value, [children...])``.
NestedSpec = Tuple[Any, ...]


class Tree:
    """An ordered tree of labeled, valued nodes with unique identifiers."""

    def __init__(self) -> None:
        self.root: Optional[Node] = None
        self._nodes: Dict[Any, Node] = {}
        self._id_counter = itertools.count(1)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_obj(cls, spec: NestedSpec) -> "Tree":
        """Build a tree from nested ``(label, value, children)`` tuples.

        Example::

            Tree.from_obj(
                ("D", None, [
                    ("P", None, [("S", "a"), ("S", "b")]),
                ])
            )

        Node identifiers are assigned automatically in preorder.
        """
        tree = cls()

        def build(node_spec: NestedSpec, parent: Optional[Node]) -> None:
            label, value, children = _unpack_spec(node_spec)
            node = tree.create_node(label, value, parent=parent)
            for child_spec in children:
                build(child_spec, node)

        build(spec, None)
        return tree

    def create_node(
        self,
        label: str,
        value: Any = None,
        parent: Optional[Node] = None,
        position: Optional[int] = None,
        node_id: Any = None,
    ) -> Node:
        """Create a node and attach it to the tree.

        Unlike :meth:`insert` (the paper's ``INS``), this builder may attach
        a node anywhere, including as the root, and is intended for initial
        tree construction rather than for edit scripts.

        Parameters
        ----------
        label, value:
            The new node's label and value.
        parent:
            Parent node; ``None`` makes the node the root (only legal when
            the tree is empty).
        position:
            1-based position among the parent's children; appended at the
            end when omitted.
        node_id:
            Explicit identifier; generated when omitted.
        """
        if node_id is None:
            node_id = self._fresh_id()
        elif node_id in self._nodes:
            raise DuplicateNodeError(node_id)

        node = Node(node_id, label, value)
        if parent is None:
            if self.root is not None:
                raise TreeError(
                    "tree already has a root; pass a parent for the new node"
                )
            self.root = node
        else:
            parent = self._resolve(parent)
            if position is None:
                position = len(parent.children) + 1
            self._attach(node, parent, position)
        self._nodes[node_id] = node
        return node

    def _fresh_id(self) -> int:
        while True:
            node_id = next(self._id_counter)
            if node_id not in self._nodes:
                return node_id

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, node_id: Any) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def get(self, node_id: Any) -> Node:
        """Return the node with identifier *node_id* or raise."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def node_ids(self) -> Iterator[Any]:
        """Yield all node identifiers (unordered)."""
        return iter(self._nodes)

    def _resolve(self, node_or_id: Any) -> Node:
        if isinstance(node_or_id, Node):
            if self._nodes.get(node_or_id.id) is not node_or_id:
                raise UnknownNodeError(node_or_id.id)
            return node_or_id
        return self.get(node_or_id)

    # ------------------------------------------------------------------
    # Traversals
    # ------------------------------------------------------------------
    def preorder(self) -> Iterator[Node]:
        """Preorder traversal of the whole tree (empty tree yields nothing)."""
        if self.root is None:
            return iter(())
        return self.root.preorder()

    def postorder(self) -> Iterator[Node]:
        """Postorder traversal of the whole tree."""
        if self.root is None:
            return iter(())
        return self.root.postorder()

    def bfs(self) -> Iterator[Node]:
        """Breadth-first (level-order) traversal, as used by EditScript."""
        if self.root is None:
            return
        queue: List[Node] = [self.root]
        index = 0
        while index < len(queue):
            node = queue[index]
            index += 1
            yield node
            queue.extend(node.children)

    def leaves(self) -> Iterator[Node]:
        """All leaves of the tree in document (left-to-right) order."""
        if self.root is None:
            return iter(())
        return self.root.leaves()

    def nodes_with_label(self, label: str) -> Iterator[Node]:
        """Yield nodes with the given label in in-order (preorder) sequence.

        This realizes the paper's ``chain_T(l)`` used by FastMatch: "all
        nodes with a given label l in tree T are chained together from left
        to right" in the order of an in-order traversal with siblings
        visited left-to-right (preorder gives the same left-to-right order
        for same-label chains).
        """
        for node in self.preorder():
            if node.label == label:
                yield node

    def labels(self) -> Dict[str, int]:
        """Return a mapping of label -> number of nodes carrying it."""
        counts: Dict[str, int] = {}
        for node in self.preorder():
            counts[node.label] = counts.get(node.label, 0) + 1
        return counts

    def leaf_labels(self) -> List[str]:
        """Labels that appear on at least one leaf."""
        seen: Dict[str, None] = {}
        for node in self.leaves():
            seen.setdefault(node.label, None)
        return list(seen)

    def internal_labels(self) -> List[str]:
        """Labels that appear on at least one interior node."""
        seen: Dict[str, None] = {}
        for node in self.preorder():
            if not node.is_leaf:
                seen.setdefault(node.label, None)
        return list(seen)

    def height(self) -> int:
        """Length (in edges) of the longest root-to-leaf path; -1 if empty."""
        if self.root is None:
            return -1
        best = 0
        for node in self.preorder():
            if node.is_leaf:
                best = max(best, node.depth())
        return best

    # ------------------------------------------------------------------
    # The four edit-model mutations (Section 3.2)
    # ------------------------------------------------------------------
    def insert(
        self,
        node_id: Any,
        label: str,
        value: Any,
        parent_id: Any,
        position: int,
    ) -> Node:
        """Apply ``INS((node_id, label, value), parent_id, position)``.

        Inserts a new *leaf* node as the ``position``-th child of the parent
        (1-based; ``len(children)+1`` appends).
        """
        if node_id in self._nodes:
            raise DuplicateNodeError(node_id)
        parent = self.get(parent_id)
        node = Node(node_id, label, value)
        self._attach(node, parent, position)
        self._nodes[node_id] = node
        return node

    def delete(self, node_id: Any) -> Node:
        """Apply ``DEL(node_id)``: remove a leaf node.

        Deleting an interior node is illegal in the paper's model — its
        descendants must be moved or deleted first — and raises
        :class:`NotALeafError`.
        """
        node = self.get(node_id)
        if node.children:
            raise NotALeafError(node_id)
        if node.parent is None:
            raise RootOperationError("delete", node_id)
        node.parent.children.remove(node)
        node.parent = None
        del self._nodes[node_id]
        return node

    def update(self, node_id: Any, value: Any) -> Node:
        """Apply ``UPD(node_id, value)``: replace the node's value."""
        node = self.get(node_id)
        node.value = value
        return node

    def move(self, node_id: Any, parent_id: Any, position: int) -> Node:
        """Apply ``MOV(node_id, parent_id, position)``.

        The whole subtree rooted at *node_id* becomes the ``position``-th
        child of *parent_id*. Position bounds are checked against the
        parent's child list *after* detaching the node, so moving a node to
        the end of its own parent uses ``len(children)`` (not ``+1``) when it
        is already a child there — callers can simply pass the target rank
        among the post-detach siblings, which is what the paper's FindPos
        computes.
        """
        node = self.get(node_id)
        target = self.get(parent_id)
        if node.parent is None:
            raise RootOperationError("move", node_id)
        if node is target or node.is_ancestor_of(target):
            raise CyclicMoveError(node_id, parent_id)
        node.parent.children.remove(node)
        node.parent = None
        self._attach(node, target, position)
        return node

    def _attach(self, node: Node, parent: Node, position: int) -> None:
        limit = len(parent.children) + 1
        if not 1 <= position <= limit:
            raise InvalidPositionError(position, limit)
        parent.children.insert(position - 1, node)
        node.parent = parent

    # ------------------------------------------------------------------
    # Copying and snapshots
    # ------------------------------------------------------------------
    def copy(self) -> "Tree":
        """Return a deep structural copy preserving node identifiers."""
        clone = Tree()
        if self.root is None:
            return clone
        mapping: Dict[Any, Node] = {}
        root = Node(self.root.id, self.root.label, self.root.value)
        clone.root = root
        clone._nodes[root.id] = root
        mapping[self.root.id] = root
        for node in self.preorder():
            if node is self.root:
                continue
            twin = Node(node.id, node.label, node.value)
            parent_twin = mapping[node.parent.id]
            parent_twin.children.append(twin)
            twin.parent = parent_twin
            clone._nodes[twin.id] = twin
            mapping[node.id] = twin
        # Keep freshly generated ids disjoint from any numeric ids present.
        numeric = [n for n in self._nodes if isinstance(n, int)]
        if numeric:
            clone._id_counter = itertools.count(max(numeric) + 1)
        return clone

    def to_obj(self) -> Optional[NestedSpec]:
        """Inverse of :meth:`from_obj` (identifiers are not preserved)."""
        if self.root is None:
            return None

        def dump(node: Node) -> NestedSpec:
            return (node.label, node.value, [dump(child) for child in node.children])

        return dump(self.root)

    # ------------------------------------------------------------------
    # Pretty-printing
    # ------------------------------------------------------------------
    def pretty(self, show_ids: bool = True, max_value_len: int = 40) -> str:
        """Return an indented one-node-per-line rendering of the tree."""
        if self.root is None:
            return "<empty tree>"
        lines: List[str] = []

        def render(node: Node, indent: int) -> None:
            parts = [node.label]
            if show_ids:
                parts.append(f"#{node.id}")
            if node.value is not None:
                text = str(node.value)
                if len(text) > max_value_len:
                    text = text[: max_value_len - 3] + "..."
                parts.append(f"({text})")
            lines.append("  " * indent + " ".join(parts))
            for child in node.children:
                render(child, indent + 1)

        render(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tree(nodes={len(self._nodes)})"


def _unpack_spec(spec: NestedSpec) -> Tuple[str, Any, Iterable[NestedSpec]]:
    """Normalize the ``(label[, value[, children]])`` shorthand."""
    if isinstance(spec, str):
        return spec, None, ()
    if not isinstance(spec, (tuple, list)) or not spec:
        raise TreeError(f"bad tree spec: {spec!r}")
    label = spec[0]
    value = spec[1] if len(spec) >= 2 else None
    children = spec[2] if len(spec) >= 3 else ()
    # Allow ("P", [children]) — a value that is a list means children.
    if isinstance(value, (list, tuple)) and len(spec) == 2:
        children, value = value, None
    return label, value, children


def map_tree(tree: Tree, fn: Callable[[Node], Tuple[str, Any]]) -> Tree:
    """Return a new tree where each node's (label, value) is ``fn(node)``.

    Structure and identifiers are preserved; useful for normalization passes
    (e.g. lower-casing sentence values before matching).
    """
    clone = tree.copy()
    for node in clone.preorder():
        node.label, node.value = fn(node)
    return clone
