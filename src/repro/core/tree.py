"""Ordered labeled-value trees (the paper's data model, Section 3.1).

A :class:`Tree` owns a set of :class:`~repro.core.node.Node` objects indexed
by identifier and exposes exactly the four primitive mutations of the paper's
edit model (Section 3.2):

* :meth:`Tree.insert` — ``INS((x, l, v), y, k)``: new *leaf* as k-th child.
* :meth:`Tree.delete` — ``DEL(x)``: remove a *leaf*.
* :meth:`Tree.update` — ``UPD(x, val)``: replace a node's value.
* :meth:`Tree.move`   — ``MOV(x, y, k)``: re-parent a whole subtree.

Positions are 1-based, matching the paper. Structural invariants (leaf-only
insert/delete, no cyclic moves, position bounds) are enforced eagerly so a
buggy edit script fails loudly instead of corrupting the tree.

Storage model
-------------
Since the arena refactor a tree is a *view* over an immutable
:class:`~repro.core.arena.TreeArena` snapshot. Trees built from an arena
(:meth:`Tree.from_arena` — the parse, copy and store-checkout paths) keep
only the arena until some caller actually needs :class:`Node` objects; pure
array consumers (``TreeIndex``, digests, serialization dumps) never force
the node graph into existence. The first node-touching access materializes
all nodes in one preorder pass. Mutations work on the node graph and
invalidate the snapshot; :meth:`Tree.to_arena` re-flattens on demand and
caches the result until the next mutation. This mirrors the existing
staleness contract of ``tree.index`` / ``tree.digests`` attachments.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from .arena import TreeArena, flatten_root
from .errors import (
    CyclicMoveError,
    DuplicateNodeError,
    InvalidPositionError,
    NotALeafError,
    RootOperationError,
    TreeError,
    UnknownNodeError,
)
from .node import Node

#: Nested-structure shorthand accepted by :meth:`Tree.from_obj`:
#: ``(label,)``, ``(label, value)`` or ``(label, value, [children...])``.
NestedSpec = Tuple[Any, ...]


class Tree:
    """An ordered tree of labeled, valued nodes with unique identifiers."""

    def __init__(self) -> None:
        self._root: Optional[Node] = None
        self._node_map: Optional[Dict[Any, Node]] = {}
        self._id_counter: Optional[Iterator[int]] = itertools.count(1)
        #: Cached immutable snapshot; valid only while ``_arena_fresh``.
        self._arena: Optional[TreeArena] = None
        self._arena_fresh = False
        #: Node binding of the last materialize/flatten: ``_arena_order[p]``
        #: is the Node at preorder position ``p`` of ``_order_arena``. Kept
        #: across mutations so a stale TreeIndex keeps resolving the node
        #: objects it was built over (the pre-arena staleness semantics).
        self._order_arena: Optional[TreeArena] = None
        self._arena_order: Optional[List[Node]] = None
        #: Detaches where the sibling-slot hint missed and a full scan ran.
        self.detach_fallback_scans = 0

    # ------------------------------------------------------------------
    # Arena view plumbing
    # ------------------------------------------------------------------
    @classmethod
    def from_arena(cls, arena: TreeArena) -> "Tree":
        """Wrap an arena snapshot without building any :class:`Node`.

        The node graph is materialized lazily on first access; callers that
        only read arrays (indexes, digests, serialization) never pay for it.
        """
        tree = cls()
        tree._node_map = None
        tree._arena = arena
        tree._arena_fresh = True
        tree._id_counter = None  # lazily seeded past the arena's numeric ids
        return tree

    def to_arena(self) -> TreeArena:
        """Return a fresh struct-of-arrays snapshot (cached until mutation)."""
        if self._arena_fresh:
            assert self._arena is not None
            return self._arena
        arena, order = flatten_root(self._root)
        self._arena = arena
        self._arena_fresh = True
        self._order_arena = arena
        self._arena_order = order
        return arena

    def arena_snapshot(self) -> Optional[TreeArena]:
        """The cached fresh arena, or ``None`` — never flattens or builds."""
        return self._arena if self._arena_fresh else None

    def _touch(self) -> None:
        """Invalidate the arena snapshot after a mutation."""
        self._arena = None
        self._arena_fresh = False

    def _materialize(self) -> None:
        if self._node_map is not None:
            return
        assert self._arena is not None
        root, node_map, order = _nodes_from_arena(self._arena)
        self._root = root
        self._node_map = node_map
        self._order_arena = self._arena
        self._arena_order = order

    def _order_for(self, arena: TreeArena) -> List[Node]:
        """Nodes aligned with *arena* positions (for index node binding).

        Returns this tree's own nodes when *arena* is (or was) its snapshot;
        otherwise builds a detached node graph from the arena.
        """
        if arena is self._order_arena and self._arena_order is not None:
            return self._arena_order
        if arena is self._arena:
            self._materialize()
            assert self._arena_order is not None
            return self._arena_order
        _, _, order = _nodes_from_arena(arena)
        return order

    @property
    def root(self) -> Optional[Node]:
        if self._node_map is None:
            self._materialize()
        return self._root

    @root.setter
    def root(self, node: Optional[Node]) -> None:
        if self._node_map is None:
            self._materialize()
        self._root = node
        self._touch()

    @property
    def _nodes(self) -> Dict[Any, Node]:
        if self._node_map is None:
            self._materialize()
        assert self._node_map is not None
        return self._node_map

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_obj(cls, spec: NestedSpec) -> "Tree":
        """Build a tree from nested ``(label, value, children)`` tuples.

        Example::

            Tree.from_obj(
                ("D", None, [
                    ("P", None, [("S", "a"), ("S", "b")]),
                ])
            )

        Node identifiers are assigned automatically in preorder.
        """
        tree = cls()

        def build(node_spec: NestedSpec, parent: Optional[Node]) -> None:
            label, value, children = _unpack_spec(node_spec)
            node = tree.create_node(label, value, parent=parent)
            for child_spec in children:
                build(child_spec, node)

        build(spec, None)
        return tree

    def create_node(
        self,
        label: str,
        value: Any = None,
        parent: Optional[Node] = None,
        position: Optional[int] = None,
        node_id: Any = None,
    ) -> Node:
        """Create a node and attach it to the tree.

        Unlike :meth:`insert` (the paper's ``INS``), this builder may attach
        a node anywhere, including as the root, and is intended for initial
        tree construction rather than for edit scripts.

        Parameters
        ----------
        label, value:
            The new node's label and value.
        parent:
            Parent node; ``None`` makes the node the root (only legal when
            the tree is empty).
        position:
            1-based position among the parent's children; appended at the
            end when omitted.
        node_id:
            Explicit identifier; generated when omitted.
        """
        if node_id is None:
            node_id = self._fresh_id()
        elif node_id in self._nodes:
            raise DuplicateNodeError(node_id)

        node = Node(node_id, label, value)
        if parent is None:
            if self.root is not None:
                raise TreeError(
                    "tree already has a root; pass a parent for the new node"
                )
            self._root = node
        else:
            parent = self._resolve(parent)
            if position is None:
                position = len(parent.children) + 1
            self._attach(node, parent, position)
        self._nodes[node_id] = node
        self._touch()
        return node

    def _fresh_id(self) -> int:
        if self._id_counter is None:
            # Arena-backed trees seed lazily: continue past the largest
            # numeric id present (same rule the deep copy always used).
            numeric = [i for i in self.node_ids() if isinstance(i, int)]
            self._id_counter = itertools.count(max(numeric) + 1 if numeric else 1)
        while True:
            node_id = next(self._id_counter)
            if node_id not in self:
                return node_id

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, node_id: Any) -> bool:
        if self._node_map is None:
            assert self._arena is not None
            return node_id in self._arena.pos_of
        return node_id in self._node_map

    def __len__(self) -> int:
        if self._node_map is None:
            assert self._arena is not None
            return self._arena.n
        return len(self._node_map)

    def get(self, node_id: Any) -> Node:
        """Return the node with identifier *node_id* or raise."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def node_ids(self) -> Iterator[Any]:
        """Yield all node identifiers (unordered)."""
        if self._node_map is None:
            assert self._arena is not None
            return iter(self._arena.node_ids)
        return iter(self._node_map)

    def _resolve(self, node_or_id: Any) -> Node:
        if isinstance(node_or_id, Node):
            if self._nodes.get(node_or_id.id) is not node_or_id:
                raise UnknownNodeError(node_or_id.id)
            return node_or_id
        return self.get(node_or_id)

    # ------------------------------------------------------------------
    # Traversals
    # ------------------------------------------------------------------
    def preorder(self) -> Iterator[Node]:
        """Preorder traversal of the whole tree (empty tree yields nothing)."""
        if self.root is None:
            return iter(())
        return self.root.preorder()

    def postorder(self) -> Iterator[Node]:
        """Postorder traversal of the whole tree."""
        if self.root is None:
            return iter(())
        return self.root.postorder()

    def bfs(self) -> Iterator[Node]:
        """Breadth-first (level-order) traversal, as used by EditScript."""
        if self.root is None:
            return
        queue: List[Node] = [self.root]
        index = 0
        while index < len(queue):
            node = queue[index]
            index += 1
            yield node
            queue.extend(node.children)

    def leaves(self) -> Iterator[Node]:
        """All leaves of the tree in document (left-to-right) order."""
        if self.root is None:
            return iter(())
        return self.root.leaves()

    def nodes_with_label(self, label: str) -> Iterator[Node]:
        """Yield nodes with the given label in in-order (preorder) sequence.

        This realizes the paper's ``chain_T(l)`` used by FastMatch: "all
        nodes with a given label l in tree T are chained together from left
        to right" in the order of an in-order traversal with siblings
        visited left-to-right (preorder gives the same left-to-right order
        for same-label chains).
        """
        for node in self.preorder():
            if node.label == label:
                yield node

    def labels(self) -> Dict[str, int]:
        """Return a mapping of label -> number of nodes carrying it."""
        counts: Dict[str, int] = {}
        for node in self.preorder():
            counts[node.label] = counts.get(node.label, 0) + 1
        return counts

    def leaf_labels(self) -> List[str]:
        """Labels that appear on at least one leaf."""
        seen: Dict[str, None] = {}
        for node in self.leaves():
            seen.setdefault(node.label, None)
        return list(seen)

    def internal_labels(self) -> List[str]:
        """Labels that appear on at least one interior node."""
        seen: Dict[str, None] = {}
        for node in self.preorder():
            if not node.is_leaf:
                seen.setdefault(node.label, None)
        return list(seen)

    def height(self) -> int:
        """Length (in edges) of the longest root-to-leaf path; -1 if empty."""
        if self.root is None:
            return -1
        best = 0
        for node in self.preorder():
            if node.is_leaf:
                best = max(best, node.depth())
        return best

    # ------------------------------------------------------------------
    # The four edit-model mutations (Section 3.2)
    # ------------------------------------------------------------------
    def insert(
        self,
        node_id: Any,
        label: str,
        value: Any,
        parent_id: Any,
        position: int,
    ) -> Node:
        """Apply ``INS((node_id, label, value), parent_id, position)``.

        Inserts a new *leaf* node as the ``position``-th child of the parent
        (1-based; ``len(children)+1`` appends).
        """
        if node_id in self._nodes:
            raise DuplicateNodeError(node_id)
        parent = self.get(parent_id)
        node = Node(node_id, label, value)
        self._attach(node, parent, position)
        self._nodes[node_id] = node
        self._touch()
        return node

    def delete(self, node_id: Any) -> Node:
        """Apply ``DEL(node_id)``: remove a leaf node.

        Deleting an interior node is illegal in the paper's model — its
        descendants must be moved or deleted first — and raises
        :class:`NotALeafError`.
        """
        node = self.get(node_id)
        if node.children:
            raise NotALeafError(node_id)
        if node.parent is None:
            raise RootOperationError("delete", node_id)
        self._detach(node)
        del self._nodes[node_id]
        self._touch()
        return node

    def update(self, node_id: Any, value: Any) -> Node:
        """Apply ``UPD(node_id, value)``: replace the node's value."""
        node = self.get(node_id)
        node.value = value
        self._touch()
        return node

    def move(self, node_id: Any, parent_id: Any, position: int) -> Node:
        """Apply ``MOV(node_id, parent_id, position)``.

        The whole subtree rooted at *node_id* becomes the ``position``-th
        child of *parent_id*. Position bounds are checked against the
        parent's child list *after* detaching the node, so moving a node to
        the end of its own parent uses ``len(children)`` (not ``+1``) when it
        is already a child there — callers can simply pass the target rank
        among the post-detach siblings, which is what the paper's FindPos
        computes.
        """
        node = self.get(node_id)
        target = self.get(parent_id)
        if node.parent is None:
            raise RootOperationError("move", node_id)
        if node is target or node.is_ancestor_of(target):
            raise CyclicMoveError(node_id, parent_id)
        self._detach(node)
        self._attach(node, target, position)
        self._touch()
        return node

    def _attach(self, node: Node, parent: Node, position: int) -> None:
        limit = len(parent.children) + 1
        if not 1 <= position <= limit:
            raise InvalidPositionError(position, limit)
        parent.children.insert(position - 1, node)
        node.parent = parent
        node._slot = position - 1

    def _detach(self, node: Node) -> None:
        """Unlink *node* from its parent by known index, not a full scan.

        ``list.remove(node)`` compares from position 0, so detaching the
        last of *m* siblings costs O(m) — quadratic over a delete phase.
        Every attach records the node's slot; removals of earlier siblings
        shift it by at most a few places between consecutive detaches in
        the common edit-script patterns, so a tiny probe window around the
        hint (plus both ends, for bulk front/back sweeps) finds the node in
        O(1). A full scan remains as fallback and is counted so tests can
        assert the hint actually hits.
        """
        parent = node.parent
        siblings = parent.children
        count = len(siblings)
        slot = node._slot
        if 0 <= slot < count and siblings[slot] is node:
            index = slot
        else:
            index = -1
            for probe in (slot - 1, slot + 1, slot - 2, slot + 2, 0, count - 1):
                if 0 <= probe < count and siblings[probe] is node:
                    index = probe
                    break
            if index < 0:
                index = siblings.index(node)
                self.detach_fallback_scans += 1
        del siblings[index]
        node.parent = None

    # ------------------------------------------------------------------
    # Copying and snapshots
    # ------------------------------------------------------------------
    def copy(self) -> "Tree":
        """Return an independent copy preserving node identifiers.

        Flattens to the (cached) arena snapshot and wraps it in a new lazy
        view — the copy shares the immutable arrays and allocates no nodes
        until one side actually needs them.
        """
        return Tree.from_arena(self.to_arena())

    def to_obj(self) -> Optional[NestedSpec]:
        """Inverse of :meth:`from_obj` (identifiers are not preserved)."""
        if self.root is None:
            return None

        def dump(node: Node) -> NestedSpec:
            return (node.label, node.value, [dump(child) for child in node.children])

        return dump(self.root)

    # ------------------------------------------------------------------
    # Pretty-printing
    # ------------------------------------------------------------------
    def pretty(self, show_ids: bool = True, max_value_len: int = 40) -> str:
        """Return an indented one-node-per-line rendering of the tree."""
        if self.root is None:
            return "<empty tree>"
        lines: List[str] = []

        def render(node: Node, indent: int) -> None:
            parts = [node.label]
            if show_ids:
                parts.append(f"#{node.id}")
            if node.value is not None:
                text = str(node.value)
                if len(text) > max_value_len:
                    text = text[: max_value_len - 3] + "..."
                parts.append(f"({text})")
            lines.append("  " * indent + " ".join(parts))
            for child in node.children:
                render(child, indent + 1)

        render(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tree(nodes={len(self)})"


def _nodes_from_arena(arena: TreeArena) -> Tuple[Optional[Node], Dict[Any, Node], List[Node]]:
    """Build a node graph from an arena in one preorder pass.

    Returns ``(root, node_map, order)`` where ``order[p]`` is the node at
    preorder position ``p``. Parents precede children in preorder, so each
    node's parent object already exists when the node is created.
    """
    node_ids = arena.node_ids
    labels = arena.labels
    values = arena.values
    parents = arena.parent
    label_pool = arena.label_pool
    value_pool = arena.value_pool
    order: List[Node] = []
    node_map: Dict[Any, Node] = {}
    for pos in range(arena.n):
        node = Node(node_ids[pos], label_pool[labels[pos]], value_pool[values[pos]])
        parent_pos = parents[pos]
        if parent_pos >= 0:
            parent_node = order[parent_pos]
            node.parent = parent_node
            node._slot = len(parent_node.children)
            parent_node.children.append(node)
        order.append(node)
        node_map[node.id] = node
    return (order[0] if order else None), node_map, order


def _unpack_spec(spec: NestedSpec) -> Tuple[str, Any, Iterable[NestedSpec]]:
    """Normalize the ``(label[, value[, children]])`` shorthand."""
    if isinstance(spec, str):
        return spec, None, ()
    if not isinstance(spec, (tuple, list)) or not spec:
        raise TreeError(f"bad tree spec: {spec!r}")
    label = spec[0]
    value = spec[1] if len(spec) >= 2 else None
    children = spec[2] if len(spec) >= 3 else ()
    # Allow ("P", [children]) — a value that is a list means children.
    if isinstance(value, (list, tuple)) and len(spec) == 2:
        children, value = value, None
    return label, value, children


def map_tree(tree: Tree, fn: Callable[[Node], Tuple[str, Any]]) -> Tree:
    """Return a new tree where each node's (label, value) is ``fn(node)``.

    Structure and identifiers are preserved; useful for normalization passes
    (e.g. lower-casing sentence values before matching).
    """
    clone = tree.copy()
    for node in clone.preorder():
        node.label, node.value = fn(node)
    # The in-place rewrites bypassed the mutation API; drop the snapshot
    # the copy shared with the source tree.
    clone._touch()
    return clone
