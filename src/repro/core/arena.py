"""Struct-of-arrays tree storage: the arena core.

The paper's algorithms (FastMatch, edit-script generation, the Criterion-2
leaf comparisons) are linear-ish passes over node sequences, but a
pointer-based :class:`~repro.core.node.Node` graph pays one Python object
plus a children list per node — at service scale the dominant cost is
allocation and pointer-chasing, not algorithmic work.

:class:`TreeArena` flattens a whole tree into six parallel arrays indexed by
**preorder position**:

=================  ====================================================
``node_ids[p]``     the node's identifier (arbitrary Python object)
``labels[p]``       index into ``label_pool`` (interned label)
``values[p]``       index into ``value_pool`` (interned value)
``parent[p]``       preorder position of the parent, ``-1`` for the root
``first_child[p]``  position of the first child, ``-1`` for leaves
``next_sibling[p]`` position of the next sibling, ``-1`` for last children
``subtree_size[p]`` number of nodes in the subtree rooted at ``p``
=================  ====================================================

Preorder indexing gives the two identities every consumer leans on:

* the subtree rooted at ``p`` is exactly the contiguous slice
  ``[p, p + subtree_size[p])`` — ancestor tests are two comparisons;
* a node ``q`` lies under ``p`` iff ``p <= q < p + subtree_size[p]``.

An arena is **immutable** once built. Edits are expressed through
:class:`ArenaOverlay`, a copy-on-write layer that implements the paper's
four primitives (INS/DEL/UPD/MOV) against an arena without touching it and
can be re-flattened into a fresh arena with :meth:`ArenaOverlay.flatten`.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .errors import (
    CyclicMoveError,
    DuplicateNodeError,
    InvalidPositionError,
    NotALeafError,
    RootOperationError,
    TreeError,
    UnknownNodeError,
)


class Interner:
    """Deduplicating append-only pool of labels or values.

    Values are deduplicated by ``(type, value)`` so ``1``, ``1.0`` and
    ``True`` (equal and hash-equal in Python) keep distinct pool slots —
    digests and serialization distinguish them, so the pool must too.
    Unhashable values (lists, dicts) are stored without deduplication.
    """

    __slots__ = ("pool", "_ids")

    def __init__(self) -> None:
        self.pool: List[Any] = []
        self._ids: Dict[Any, int] = {}

    def intern(self, value: Any) -> int:
        """Return the pool index for *value*, adding it if new."""
        try:
            idx = self._ids.get((value.__class__, value))
        except TypeError:  # unhashable: append without dedup
            self.pool.append(value)
            return len(self.pool) - 1
        if idx is None:
            idx = len(self.pool)
            self._ids[(value.__class__, value)] = idx
            self.pool.append(value)
        return idx

    def __len__(self) -> int:
        return len(self.pool)


class ArenaBuilder:
    """Incremental preorder construction of a :class:`TreeArena`.

    Nodes must be added in preorder: the root first (``parent_pos=-1``),
    then each node after its parent and after its earlier siblings'
    subtrees. :meth:`add` returns the new node's preorder position, which
    callers pass back as ``parent_pos`` for its children.
    """

    __slots__ = (
        "node_ids", "labels", "values", "parent", "first_child",
        "next_sibling", "pos_of", "_label_pool", "_value_pool", "_last_child",
    )

    def __init__(self) -> None:
        self.node_ids: List[Any] = []
        self.labels = array("i")
        self.values = array("i")
        self.parent = array("i")
        self.first_child = array("i")
        self.next_sibling = array("i")
        self.pos_of: Dict[Any, int] = {}
        self._label_pool = Interner()
        self._value_pool = Interner()
        self._last_child = array("i")

    def add(self, parent_pos: int, node_id: Any, label: str, value: Any) -> int:
        """Append one node; return its preorder position."""
        if node_id in self.pos_of:
            raise DuplicateNodeError(node_id)
        pos = len(self.node_ids)
        if parent_pos < 0:
            if pos != 0:
                raise TreeError("arena root must be the first node added")
            parent_pos = -1
        elif not 0 <= parent_pos < pos:
            raise TreeError(
                f"parent position {parent_pos} out of preorder range"
            )
        self.node_ids.append(node_id)
        self.pos_of[node_id] = pos
        self.labels.append(self._label_pool.intern(label))
        self.values.append(self._value_pool.intern(value))
        self.parent.append(parent_pos)
        self.first_child.append(-1)
        self.next_sibling.append(-1)
        self._last_child.append(-1)
        if parent_pos >= 0:
            last = self._last_child[parent_pos]
            if last < 0:
                self.first_child[parent_pos] = pos
            else:
                self.next_sibling[last] = pos
            self._last_child[parent_pos] = pos
        return pos

    def finish(self) -> "TreeArena":
        """Seal the builder into an immutable arena (computes sizes)."""
        n = len(self.node_ids)
        parent = self.parent
        if n:
            subtree_size = array("i", [1]) * n
            for pos in range(n - 1, 0, -1):
                subtree_size[parent[pos]] += subtree_size[pos]
        else:
            subtree_size = array("i")
        return TreeArena(
            node_ids=self.node_ids,
            labels=self.labels,
            values=self.values,
            parent=parent,
            first_child=self.first_child,
            next_sibling=self.next_sibling,
            subtree_size=subtree_size,
            label_pool=self._label_pool.pool,
            value_pool=self._value_pool.pool,
            pos_of=self.pos_of,
        )


class TreeArena:
    """Immutable struct-of-arrays snapshot of one ordered tree.

    Instances come from :class:`ArenaBuilder`, :func:`flatten_root`, or
    :meth:`ArenaOverlay.flatten`; consumers (TreeIndex, digests,
    serialization, the matchers) read the arrays directly.
    """

    __slots__ = (
        "n", "node_ids", "labels", "values", "parent", "first_child",
        "next_sibling", "subtree_size", "label_pool", "value_pool",
        "pos_of", "_leaf_count",
    )

    def __init__(
        self,
        node_ids: List[Any],
        labels: "array",
        values: "array",
        parent: "array",
        first_child: "array",
        next_sibling: "array",
        subtree_size: "array",
        label_pool: List[str],
        value_pool: List[Any],
        pos_of: Dict[Any, int],
    ) -> None:
        self.n = len(node_ids)
        self.node_ids = node_ids
        self.labels = labels
        self.values = values
        self.parent = parent
        self.first_child = first_child
        self.next_sibling = next_sibling
        self.subtree_size = subtree_size
        self.label_pool = label_pool
        self.value_pool = value_pool
        self.pos_of = pos_of
        self._leaf_count: Optional["array"] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "TreeArena":
        return ArenaBuilder().finish()

    @classmethod
    def from_root(cls, root: Any) -> "TreeArena":
        """Flatten a :class:`Node` subtree (or any duck-typed node graph)."""
        arena, _ = flatten_root(root)
        return arena

    @classmethod
    def from_tree(cls, tree: Any) -> "TreeArena":
        """Flatten a :class:`Tree`, bypassing any cached snapshot."""
        arena, _ = flatten_root(tree.root)
        return arena

    def to_tree(self) -> Any:
        """Materialize a :class:`~repro.core.tree.Tree` view over this arena."""
        from .tree import Tree  # local import: tree.py imports this module

        return Tree.from_arena(self)

    # ------------------------------------------------------------------
    # Per-position accessors
    # ------------------------------------------------------------------
    def label_of(self, pos: int) -> str:
        return self.label_pool[self.labels[pos]]

    def value_of(self, pos: int) -> Any:
        return self.value_pool[self.values[pos]]

    def id_of(self, pos: int) -> Any:
        return self.node_ids[pos]

    def is_leaf(self, pos: int) -> bool:
        return self.first_child[pos] < 0

    def children_of(self, pos: int) -> List[int]:
        """Positions of *pos*'s children, left to right."""
        out: List[int] = []
        child = self.first_child[pos]
        next_sibling = self.next_sibling
        while child >= 0:
            out.append(child)
            child = next_sibling[child]
        return out

    def is_under(self, pos: int, ancestor_pos: int) -> bool:
        """True when *pos* lies inside the subtree rooted at *ancestor_pos*.

        A node counts as under itself, matching ``TreeIndex.is_under``.
        """
        return (
            ancestor_pos <= pos
            < ancestor_pos + self.subtree_size[ancestor_pos]
        )

    # ------------------------------------------------------------------
    # Derived arrays
    # ------------------------------------------------------------------
    @property
    def leaf_count(self) -> "array":
        """Per-position leaf counts (the paper's ``|x|``), computed lazily.

        One reverse-preorder pass: leaves contribute 1, every other
        position accumulates its children (children always follow their
        parent in preorder, so walking positions high-to-low sees each
        child before its parent is read).
        """
        counts = self._leaf_count
        if counts is None:
            n = self.n
            first_child = self.first_child
            parent = self.parent
            counts = array("i", [0]) * n if n else array("i")
            for pos in range(n - 1, 0, -1):
                if first_child[pos] < 0:
                    counts[pos] += 1
                counts[parent[pos]] += counts[pos]
            if n and first_child[0] < 0:
                counts[0] += 1
            self._leaf_count = counts
        return counts

    def leaf_positions(self) -> Iterator[int]:
        """Preorder positions of all leaves, in document order."""
        first_child = self.first_child
        return (pos for pos in range(self.n) if first_child[pos] < 0)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TreeArena(n={self.n}, labels={len(self.label_pool)}, "
            f"values={len(self.value_pool)})"
        )


def flatten_root(root: Any) -> Tuple[TreeArena, List[Any]]:
    """Flatten a node graph into an arena.

    Returns ``(arena, order)`` where ``order`` is the preorder list of the
    source nodes, aligned with arena positions — callers that keep the node
    objects alive (the lazy :class:`Tree` view) use it to map positions back
    to nodes without a second traversal.
    """
    builder = ArenaBuilder()
    order: List[Any] = []
    if root is None:
        return builder.finish(), order
    stack: List[Tuple[Any, int]] = [(root, -1)]
    while stack:
        node, parent_pos = stack.pop()
        pos = builder.add(parent_pos, node.id, node.label, node.value)
        order.append(node)
        children = node.children
        for child in reversed(children):
            stack.append((child, pos))
    return builder.finish(), order


def arenas_isomorphic(a: TreeArena, b: TreeArena) -> bool:
    """Structural equality of two arenas (ids ignored), array-at-a-time.

    Two arenas flattened from isomorphic trees have identical ``parent``
    arrays (preorder position is a structural invariant), so shape checks
    are single array comparisons; only labels and values need per-position
    pool lookups.
    """
    if a.n != b.n:
        return False
    if a.n == 0:
        return True
    if a.parent != b.parent or a.first_child != b.first_child:
        return False
    a_labels, b_labels = a.labels, b.labels
    a_label_pool, b_label_pool = a.label_pool, b.label_pool
    label_memo: Dict[int, int] = {}
    a_values, b_values = a.values, b.values
    a_value_pool, b_value_pool = a.value_pool, b.value_pool
    for pos in range(a.n):
        la, lb = a_labels[pos], b_labels[pos]
        known = label_memo.get(la)
        if known is None:
            if a_label_pool[la] != b_label_pool[lb]:
                return False
            label_memo[la] = lb
        elif known != lb and a_label_pool[la] != b_label_pool[lb]:
            return False
        va = a_value_pool[a_values[pos]]
        vb = b_value_pool[b_values[pos]]
        if va is not vb and va != vb:
            return False
    return True


class ArenaOverlay:
    """Copy-on-write edit layer over an immutable :class:`TreeArena`.

    The overlay implements the paper's four edit primitives with the same
    validation and error surface as :class:`~repro.core.tree.Tree` — a
    script that replays cleanly on a ``Tree`` replays cleanly here and vice
    versa — but never mutates the base arena. Internally nodes are tracked
    by *ref*: base preorder positions (``>= 0``) for surviving base nodes,
    negative integers for nodes inserted through the overlay. Only the
    child lists of touched parents are copied.

    :meth:`flatten` seals the edited shape into a fresh arena. Label and
    value pools of the base are re-interned, so pools stay deduplicated.
    """

    __slots__ = (
        "base", "root_ref", "_children", "_parent", "_values", "_new",
        "_deleted", "_ref_by_id", "_n_new",
    )

    def __init__(self, base: TreeArena) -> None:
        self.base = base
        self.root_ref: Optional[int] = 0 if base.n else None
        #: ref -> copied child-ref list (only parents touched by an edit)
        self._children: Dict[int, List[int]] = {}
        #: ref -> parent ref override (None marks a detached/root ref)
        self._parent: Dict[int, Optional[int]] = {}
        #: ref -> updated value
        self._values: Dict[int, Any] = {}
        #: new ref -> (node_id, label, value)
        self._new: Dict[int, Tuple[Any, str, Any]] = {}
        #: deleted base positions
        self._deleted: set = set()
        #: ids of overlay-inserted nodes -> their (negative) ref
        self._ref_by_id: Dict[Any, int] = {}
        self._n_new = 0

    # ------------------------------------------------------------------
    # Ref resolution and per-ref accessors
    # ------------------------------------------------------------------
    def _resolve(self, node_id: Any) -> int:
        ref = self._ref_by_id.get(node_id)
        if ref is not None:
            return ref
        pos = self.base.pos_of.get(node_id)
        if pos is None or pos in self._deleted:
            raise UnknownNodeError(node_id)
        return pos

    def _known(self, node_id: Any) -> bool:
        if node_id in self._ref_by_id:
            return True
        pos = self.base.pos_of.get(node_id)
        return pos is not None and pos not in self._deleted

    def id_of(self, ref: int) -> Any:
        return self._new[ref][0] if ref < 0 else self.base.node_ids[ref]

    def label_of(self, ref: int) -> str:
        return self._new[ref][1] if ref < 0 else self.base.label_of(ref)

    def value_of(self, ref: int) -> Any:
        if ref in self._values:
            return self._values[ref]
        return self._new[ref][2] if ref < 0 else self.base.value_of(ref)

    def children_of(self, ref: int) -> List[int]:
        """Current child refs of *ref* (a fresh list when derived from base)."""
        children = self._children.get(ref)
        if children is not None:
            return children
        return [] if ref < 0 else self.base.children_of(ref)

    def parent_of(self, ref: int) -> Optional[int]:
        if ref in self._parent:
            return self._parent[ref]
        if ref < 0:  # new refs always carry an explicit parent entry
            raise UnknownNodeError(self.id_of(ref))
        pos = self.base.parent[ref]
        return pos if pos >= 0 else None

    def _cow_children(self, ref: int) -> List[int]:
        children = self._children.get(ref)
        if children is None:
            children = [] if ref < 0 else self.base.children_of(ref)
            self._children[ref] = children
        return children

    def _is_inside(self, ref: int, ancestor_ref: int) -> bool:
        """True when *ref* is *ancestor_ref* or lies under it (overlay view)."""
        node: Optional[int] = ref
        while node is not None:
            if node == ancestor_ref:
                return True
            node = self.parent_of(node)
        return False

    # ------------------------------------------------------------------
    # The four edit primitives (Tree-compatible semantics and errors)
    # ------------------------------------------------------------------
    def insert(
        self, node_id: Any, label: str, value: Any, parent_id: Any, position: int
    ) -> int:
        """``INS((node_id, label, value), parent_id, position)``."""
        if self._known(node_id):
            raise DuplicateNodeError(node_id)
        parent_ref = self._resolve(parent_id)
        self._n_new += 1
        ref = -self._n_new
        self._new[ref] = (node_id, label, value)
        self._ref_by_id[node_id] = ref
        self._attach(ref, parent_ref, position)
        return ref

    def delete(self, node_id: Any) -> int:
        """``DEL(node_id)``: remove a leaf."""
        ref = self._resolve(node_id)
        if self.children_of(ref):
            raise NotALeafError(node_id)
        parent_ref = self.parent_of(ref)
        if parent_ref is None:
            raise RootOperationError("delete", node_id)
        self._cow_children(parent_ref).remove(ref)
        self._parent.pop(ref, None)
        self._values.pop(ref, None)
        self._children.pop(ref, None)
        if ref < 0:
            del self._new[ref]
            del self._ref_by_id[node_id]
        else:
            self._deleted.add(ref)
        return ref

    def update(self, node_id: Any, value: Any) -> int:
        """``UPD(node_id, value)``."""
        ref = self._resolve(node_id)
        self._values[ref] = value
        return ref

    def move(self, node_id: Any, parent_id: Any, position: int) -> int:
        """``MOV(node_id, parent_id, position)``.

        As in :meth:`Tree.move`, position bounds are checked against the
        target's child list *after* detaching the node.
        """
        ref = self._resolve(node_id)
        target_ref = self._resolve(parent_id)
        old_parent = self.parent_of(ref)
        if old_parent is None:
            raise RootOperationError("move", node_id)
        if self._is_inside(target_ref, ref):
            raise CyclicMoveError(node_id, parent_id)
        self._cow_children(old_parent).remove(ref)
        self._parent[ref] = None
        self._attach(ref, target_ref, position)
        return ref

    def _attach(self, ref: int, parent_ref: int, position: int) -> None:
        children = self._cow_children(parent_ref)
        limit = len(children) + 1
        if not 1 <= position <= limit:
            raise InvalidPositionError(position, limit)
        children.insert(position - 1, ref)
        self._parent[ref] = parent_ref

    # ------------------------------------------------------------------
    # Dummy-root support (edit-script generator wrap/strip)
    # ------------------------------------------------------------------
    def wrap_root(self, dummy_id: Any, label: str) -> int:
        """Push a synthetic root above the current root; return its ref."""
        if self.root_ref is None:
            raise TreeError("cannot wrap an empty overlay")
        if self._known(dummy_id):
            raise DuplicateNodeError(dummy_id)
        self._n_new += 1
        ref = -self._n_new
        self._new[ref] = (dummy_id, label, None)
        self._ref_by_id[dummy_id] = ref
        self._children[ref] = [self.root_ref]
        self._parent[self.root_ref] = ref
        self._parent[ref] = None
        self.root_ref = ref
        return ref

    def strip_root(self) -> None:
        """Remove a synthetic root, promoting its sole child."""
        ref = self.root_ref
        if ref is None:
            raise TreeError("cannot strip the root of an empty overlay")
        children = self.children_of(ref)
        if len(children) != 1:
            raise TreeError(
                f"cannot strip root with {len(children)} children"
            )
        child = children[0]
        self._parent[child] = None
        self._parent.pop(ref, None)
        self._values.pop(ref, None)
        self._children.pop(ref, None)
        if ref < 0:
            node_id = self._new.pop(ref)[0]
            del self._ref_by_id[node_id]
        else:
            self._deleted.add(ref)
        self.root_ref = child

    # ------------------------------------------------------------------
    # Sealing
    # ------------------------------------------------------------------
    def flatten(self) -> TreeArena:
        """Re-flatten the edited shape into a fresh immutable arena."""
        builder = ArenaBuilder()
        if self.root_ref is None:
            return builder.finish()
        stack: List[Tuple[int, int]] = [(self.root_ref, -1)]
        while stack:
            ref, parent_pos = stack.pop()
            pos = builder.add(
                parent_pos, self.id_of(ref), self.label_of(ref),
                self.value_of(ref),
            )
            for child in reversed(self.children_of(ref)):
                stack.append((child, pos))
        return builder.finish()
