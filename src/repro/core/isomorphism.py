"""Tree isomorphism (the paper's notion of edit-script correctness).

Section 3.1: "two trees are isomorphic if they are identical except for node
identifiers." An edit script *transforms* ``T1`` into ``T2`` when applying it
to ``T1`` yields a tree isomorphic to ``T2``. The checker here is the oracle
used throughout the test suite and benchmark harness.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .arena import arenas_isomorphic
from .node import Node
from .tree import Tree


def trees_isomorphic(t1: Tree, t2: Tree) -> bool:
    """True when the two trees are identical up to node identifiers."""
    # Arena fast path: when both trees carry fresh snapshots (the parse,
    # copy and checkout paths), compare arrays without materializing nodes.
    arena1 = t1.arena_snapshot()
    if arena1 is not None:
        arena2 = t2.arena_snapshot()
        if arena2 is not None:
            return arenas_isomorphic(arena1, arena2)
    if t1.root is None or t2.root is None:
        return t1.root is None and t2.root is None
    return _subtrees_equal(t1.root, t2.root)


def _subtrees_equal(a: Node, b: Node) -> bool:
    stack: List[Tuple[Node, Node]] = [(a, b)]
    while stack:
        x, y = stack.pop()
        if x.label != y.label or x.value != y.value:
            return False
        if len(x.children) != len(y.children):
            return False
        stack.extend(zip(x.children, y.children))
    return True


def isomorphism_mapping(t1: Tree, t2: Tree) -> Optional[Dict[Any, Any]]:
    """Return the id->id mapping realizing the isomorphism, or ``None``.

    For ordered trees the isomorphism, when it exists, is unique: the i-th
    node of ``t1`` in preorder corresponds to the i-th node of ``t2``.
    """
    if not trees_isomorphic(t1, t2):
        return None
    return {
        x.id: y.id for x, y in zip(t1.preorder(), t2.preorder())
    }


def first_difference(t1: Tree, t2: Tree) -> Optional[str]:
    """Describe the first structural difference found, or ``None`` if equal.

    Used for diagnostics in tests: a failing isomorphism assertion can print
    *where* the trees diverge.
    """
    if (t1.root is None) != (t2.root is None):
        return "one tree is empty and the other is not"
    if t1.root is None:
        return None
    stack: List[Tuple[Node, Node, str]] = [(t1.root, t2.root, "/")]
    while stack:
        x, y, path = stack.pop()
        here = f"{path}{x.label}"
        if x.label != y.label:
            return f"{here}: label {x.label!r} vs {y.label!r}"
        if x.value != y.value:
            return f"{here}: value {x.value!r} vs {y.value!r}"
        if len(x.children) != len(y.children):
            return (
                f"{here}: child count {len(x.children)} vs {len(y.children)}"
            )
        for i, (cx, cy) in enumerate(zip(x.children, y.children), start=1):
            stack.append((cx, cy, f"{here}[{i}]/"))
    return None


def canonical_form(tree: Tree) -> Tuple:
    """Return a hashable canonical form (ignores node identifiers).

    Two trees have equal canonical forms iff they are isomorphic, so the
    form can key caches and deduplicate workload corpora.
    """
    if tree.root is None:
        return ()

    def encode(node: Node) -> Tuple:
        return (node.label, node.value, tuple(encode(c) for c in node.children))

    return encode(tree.root)
