"""Tree node representation.

The paper's data model (Section 3.1) is an *ordered tree* whose nodes each
carry a *label*, a *value*, and a unique *identifier*. Interior nodes usually
have a null value; leaves carry data (e.g. the text of a sentence).

:class:`Node` instances are always owned by a :class:`repro.core.tree.Tree`;
user code creates them through the tree's mutation API rather than directly.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional


class Node:
    """A single node of an ordered labeled-value tree.

    Attributes
    ----------
    id:
        Identifier unique within the owning tree. Identifiers are opaque to
        the algorithms; the paper stresses that identifiers are *not* stable
        across versions, which is why matching is value-based.
    label:
        The node's label (e.g. ``"D"``, ``"P"``, ``"S"`` for document,
        paragraph, sentence). Labels come from a fixed but arbitrary set.
    value:
        The node's value; ``None`` for typical interior nodes.
    parent:
        The parent :class:`Node`, or ``None`` for the root.
    children:
        Ordered list of child nodes. Treated as read-only by callers; all
        mutation goes through the owning tree.
    """

    __slots__ = ("id", "label", "value", "parent", "children", "_slot")

    def __init__(self, node_id: Any, label: str, value: Any = None) -> None:
        self.id = node_id
        self.label = label
        self.value = value
        self.parent: Optional[Node] = None
        self.children: List[Node] = []
        #: 0-based hint of this node's position in ``parent.children``,
        #: maintained by the owning tree's attach/detach paths. May go
        #: stale when earlier siblings are removed; consumers validate it
        #: (``parent.children[_slot] is node``) before trusting it.
        self._slot = -1

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        """True when the node has no children."""
        return not self.children

    @property
    def is_root(self) -> bool:
        """True when the node has no parent."""
        return self.parent is None

    def child_index(self) -> int:
        """Return this node's 1-based position among its siblings.

        The paper indexes children starting from 1 (``INS((x,l,v), y, k)``
        makes ``x`` the *k*-th child of ``y``), so the library follows suit.
        """
        if self.parent is None:
            raise ValueError(f"root node {self.id!r} has no sibling position")
        siblings = self.parent.children
        slot = self._slot
        if 0 <= slot < len(siblings) and siblings[slot] is self:
            return slot + 1
        slot = siblings.index(self)
        self._slot = slot  # repair the hint for the next lookup
        return slot + 1

    def depth(self) -> int:
        """Number of edges from the root to this node (root has depth 0)."""
        depth = 0
        node = self
        while node.parent is not None:
            node = node.parent
            depth += 1
        return depth

    def ancestors(self) -> Iterator["Node"]:
        """Yield the proper ancestors of this node, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def is_ancestor_of(self, other: "Node") -> bool:
        """True when *other* lies strictly inside this node's subtree."""
        return any(ancestor is self for ancestor in other.ancestors())

    # ------------------------------------------------------------------
    # Subtree traversals (node-local; the Tree class re-exports these)
    # ------------------------------------------------------------------
    def preorder(self) -> Iterator["Node"]:
        """Yield this subtree's nodes in preorder (node before children)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def postorder(self) -> Iterator["Node"]:
        """Yield this subtree's nodes in postorder (children before node)."""
        # Iterative two-stack postorder keeps very deep trees from blowing
        # the recursion limit.
        stack = [self]
        output: List[Node] = []
        while stack:
            node = stack.pop()
            output.append(node)
            stack.extend(node.children)
        return reversed(output)

    def leaves(self) -> Iterator["Node"]:
        """Yield this subtree's leaves in left-to-right order."""
        for node in self.preorder():
            if node.is_leaf:
                yield node

    def leaf_count(self) -> int:
        """Return ``|x|``: the number of leaves in this subtree.

        This is the quantity the paper uses both in Matching Criterion 2 and
        in the weighted edit distance (a move of subtree ``x`` weighs
        ``|x|``).
        """
        return sum(1 for _ in self.leaves())

    def subtree_size(self) -> int:
        """Total number of nodes in this subtree, including this node."""
        return sum(1 for _ in self.preorder())

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        value = "" if self.value is None else f", value={self.value!r}"
        return f"Node(id={self.id!r}, label={self.label!r}{value})"
