"""Worker process supervision: spawn, health-check, restart, roll.

The supervisor owns N ``repro-diff serve`` subprocesses (the single-process
asyncio app from PR 6, each on its own ephemeral port) and keeps the
routing layer's view of them honest:

* **startup** — spawn, parse the ``listening on http://host:port`` banner,
  gate on ``/healthz``, then announce the worker *up* (ring add);
* **crash recovery** — a worker that exits (or flunks health checks) is
  announced *down* immediately (ring remove: its hash arc re-routes to
  live workers — degraded, not down) and respawned after a capped
  exponential backoff, so a crash-looping worker cannot hot-spin the
  supervisor;
* **rolling restart** (SIGHUP) — one worker at a time: announce down,
  SIGTERM (the worker's own :class:`~repro.serve.lifecycle.Lifecycle`
  drains in-flight requests and exits 0), respawn, wait healthy, move on —
  the cluster never loses more than one shard of capacity;
* **final metrics** — each worker's last ``METRICS {json}`` stdout line is
  captured so the cluster can emit one merged dump at shutdown.

Everything runs on the cluster's event loop; subprocess I/O is consumed by
per-worker reader tasks so pipes never fill up and block a worker.
"""

from __future__ import annotations

import asyncio
import json
import signal
from collections import deque
from typing import Any, Callable, Dict, List, Optional

from .protocol import fetch_json

#: Health checks a worker may miss consecutively before it is declared down.
MAX_HEALTH_MISSES = 3


class WorkerStartupError(RuntimeError):
    """A worker failed to bind or to pass its first health check."""


class WorkerHandle:
    """Everything the supervisor knows about one worker process."""

    def __init__(self, worker_id: str) -> None:
        self.worker_id = worker_id
        self.proc: Optional[asyncio.subprocess.Process] = None
        self.port: Optional[int] = None
        self.pid: Optional[int] = None
        #: ``starting`` → ``up`` → (``suspect`` | ``down``) → ``up`` …
        self.state = "stopped"
        self.restarts = 0
        self.health_misses = 0
        self.consecutive_failures = 0  # drives the restart backoff
        self.retry_at = 0.0  # loop time before which no respawn happens
        self.last_exit: Optional[int] = None
        self.final_metrics: Optional[Dict[str, Any]] = None
        #: Final METRICS dumps of previous incarnations (rolling restarts).
        self.retired_metrics: List[Dict[str, Any]] = []
        self.stderr_tail: deque = deque(maxlen=40)
        self._reader_tasks: List[asyncio.Task] = []

    def alive(self) -> bool:
        return self.proc is not None and self.proc.returncode is None

    def info(self) -> Dict[str, Any]:
        """JSON-friendly view used by the cluster ``/healthz`` payload."""
        return {
            "state": self.state,
            "port": self.port,
            "pid": self.pid,
            "restarts": self.restarts,
            "last_exit": self.last_exit,
        }


class Supervisor:
    """Spawn and babysit the worker fleet on the current event loop."""

    def __init__(
        self,
        count: int,
        argv_factory: Callable[[str], List[str]],
        env: Optional[Dict[str, str]] = None,
        backend_host: str = "127.0.0.1",
        health_interval: float = 0.5,
        health_timeout: float = 2.0,
        backoff_base: float = 0.25,
        backoff_cap: float = 5.0,
        startup_timeout: float = 60.0,
        stop_timeout: float = 30.0,
        on_up: Optional[Callable[[WorkerHandle], None]] = None,
        on_down: Optional[Callable[[WorkerHandle], None]] = None,
        clock: Optional[Any] = None,
        faults: Optional[Any] = None,
    ) -> None:
        if count < 1:
            raise ValueError(f"worker count must be >= 1, got {count}")
        self.argv_factory = argv_factory
        self.env = env
        self.backend_host = backend_host
        self.health_interval = health_interval
        self.health_timeout = health_timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.startup_timeout = startup_timeout
        self.stop_timeout = stop_timeout
        self.on_up = on_up
        self.on_down = on_down
        #: Optional injected Clock (simulation/tests); None = the loop clock.
        self.clock = clock
        #: Optional armed FaultInjector; ``worker_crash`` faults targeting a
        #: worker id make the health checker kill that worker (a seeded,
        #: deterministic stand-in for a real crash).
        self.faults = faults
        self.workers: Dict[str, WorkerHandle] = {
            f"w{index}": WorkerHandle(f"w{index}") for index in range(count)
        }
        self._stopping = False
        self._rolling = False
        #: Health ticks actually run (observability for drift tests).
        self.ticks = 0

    def _now(self, loop: asyncio.AbstractEventLoop) -> float:
        return self.clock.monotonic() if self.clock is not None else loop.time()

    async def _sleep_until(self, deadline: float, loop: asyncio.AbstractEventLoop) -> None:
        remaining = deadline - self._now(loop)
        if self.clock is None:
            if remaining > 0:
                await asyncio.sleep(remaining)
        else:
            # Virtual wait: advance the injected clock, then yield once so
            # the rest of the loop observes the new time.
            if remaining > 0:
                self.clock.sleep(remaining)
            await asyncio.sleep(0)

    # ------------------------------------------------------------------
    # Notifications
    # ------------------------------------------------------------------
    def _notify_up(self, handle: WorkerHandle) -> None:
        handle.state = "up"
        handle.health_misses = 0
        handle.consecutive_failures = 0
        if self.on_up is not None:
            self.on_up(handle)

    def _notify_down(self, handle: WorkerHandle, state: str = "down") -> None:
        handle.state = state
        if self.on_down is not None:
            self.on_down(handle)

    def suspect(self, worker_id: str) -> None:
        """Router feedback: a proxied request to this worker just failed.

        The worker is pulled from the ring *now* (no more traffic) and the
        supervise loop re-verifies it on its next tick — a healthy worker
        (transient blip) rejoins, a dead one enters the restart path.
        """
        handle = self.workers.get(worker_id)
        if handle is not None and handle.state == "up":
            self._notify_down(handle, state="suspect")

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn every worker and wait until all are up (or raise)."""
        await asyncio.gather(*(self._spawn(h) for h in self.workers.values()))

    async def _spawn(self, handle: WorkerHandle) -> None:
        handle.state = "starting"
        handle.port = None
        if handle.final_metrics is not None:
            handle.retired_metrics.append(handle.final_metrics)
            handle.final_metrics = None
        if handle._reader_tasks:  # pumps of a previous incarnation
            for task in handle._reader_tasks:
                task.cancel()
            await asyncio.gather(*handle._reader_tasks, return_exceptions=True)
            handle._reader_tasks = []
        argv = self.argv_factory(handle.worker_id)
        handle.proc = await asyncio.create_subprocess_exec(
            *argv,
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.PIPE,
            env=self.env,
        )
        handle.pid = handle.proc.pid
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.startup_timeout
        try:
            while True:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    raise WorkerStartupError(
                        f"{handle.worker_id}: no startup banner within "
                        f"{self.startup_timeout}s"
                    )
                line = await asyncio.wait_for(
                    handle.proc.stdout.readline(), remaining
                )
                if not line:
                    raise WorkerStartupError(
                        f"{handle.worker_id}: exited before binding "
                        f"(stderr: {await self._drain_stderr_once(handle)})"
                    )
                if b"listening on" in line:
                    handle.port = int(line.decode().strip().rsplit(":", 1)[1])
                    break
        except (WorkerStartupError, asyncio.TimeoutError, ValueError) as exc:
            self._kill_quietly(handle)
            raise WorkerStartupError(str(exc)) from exc
        handle._reader_tasks = [
            asyncio.ensure_future(self._pump_stdout(handle)),
            asyncio.ensure_future(self._pump_stderr(handle)),
        ]
        if not await self._await_healthy(handle, deadline):
            self._kill_quietly(handle)
            raise WorkerStartupError(
                f"{handle.worker_id}: bound port {handle.port} but never "
                f"answered /healthz"
            )
        self._notify_up(handle)

    async def _await_healthy(self, handle: WorkerHandle, deadline: float) -> bool:
        loop = asyncio.get_running_loop()
        while loop.time() < deadline:
            if await self._check_health(handle):
                return True
            await asyncio.sleep(0.05)
        return False

    async def _check_health(self, handle: WorkerHandle) -> bool:
        if self.faults is not None:
            if self.faults.fire("worker_crash", target=handle.worker_id):
                # Injected crash: make it real so every downstream path
                # (exit-code capture, ring removal, backoff) is the one
                # production takes.
                self._kill_quietly(handle)
                if handle.proc is not None:
                    await handle.proc.wait()
                return False
        if handle.port is None or not handle.alive():
            return False
        try:
            status, payload = await fetch_json(
                self.backend_host, handle.port, "/healthz", self.health_timeout
            )
        except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError):
            return False
        return status == 200 and payload.get("status") == "ok"

    # ------------------------------------------------------------------
    # Subprocess I/O pumps
    # ------------------------------------------------------------------
    async def _pump_stdout(self, handle: WorkerHandle) -> None:
        proc = handle.proc
        assert proc is not None and proc.stdout is not None
        while True:
            line = await proc.stdout.readline()
            if not line:
                return
            if line.startswith(b"METRICS "):
                try:
                    handle.final_metrics = json.loads(line[len(b"METRICS "):])
                except ValueError:
                    pass

    async def _pump_stderr(self, handle: WorkerHandle) -> None:
        proc = handle.proc
        assert proc is not None and proc.stderr is not None
        while True:
            line = await proc.stderr.readline()
            if not line:
                return
            handle.stderr_tail.append(line.decode("utf-8", "replace").rstrip())

    async def _drain_stderr_once(self, handle: WorkerHandle) -> str:
        try:
            raw = await asyncio.wait_for(handle.proc.stderr.read(4096), 1.0)
        except (asyncio.TimeoutError, AttributeError):
            return ""
        return raw.decode("utf-8", "replace")[-500:]

    def _kill_quietly(self, handle: WorkerHandle) -> None:
        if handle.alive():
            try:
                handle.proc.kill()
            except ProcessLookupError:
                pass

    # ------------------------------------------------------------------
    # The supervision loop
    # ------------------------------------------------------------------
    async def supervise(self) -> None:
        """Health-check loop; runs until cancelled or :meth:`stop`.

        Ticks are scheduled at *absolute* deadlines (``next_tick +=
        interval``) computed from the clock, not by sleeping a fixed
        interval after each pass — so the time spent health-checking and
        restarting does not accumulate as drift, and restart-backoff
        timing stays exact under both the real clock and ``SimClock``.
        A stall longer than one interval (a slow restart, a clock jump)
        skips the missed ticks instead of bursting to catch up.
        """
        loop = asyncio.get_running_loop()
        next_tick = self._now(loop) + self.health_interval
        while not self._stopping:
            await self._sleep_until(next_tick, loop)
            next_tick += self.health_interval
            now = self._now(loop)
            if next_tick <= now:  # stalled past a tick: realign, don't burst
                next_tick = now + self.health_interval
            if self._stopping:
                break
            self.ticks += 1
            if self._rolling:
                continue  # rolling_restart owns worker state transitions
            for handle in self.workers.values():
                if self._stopping:
                    break
                if handle.state in ("up", "suspect"):
                    await self._tick_live(handle)
                elif handle.state == "down" and self._now(loop) >= handle.retry_at:
                    await self._try_restart(handle, loop)

    async def _tick_live(self, handle: WorkerHandle) -> None:
        if not handle.alive():
            handle.last_exit = handle.proc.returncode if handle.proc else None
            self._schedule_restart(handle)
            return
        if await self._check_health(handle):
            if handle.state == "suspect":
                self._notify_up(handle)  # transient blip: rejoin the ring
            handle.health_misses = 0
            return
        handle.health_misses += 1
        if handle.health_misses >= MAX_HEALTH_MISSES or handle.state == "suspect":
            self._schedule_restart(handle, terminate=True)

    def _schedule_restart(self, handle: WorkerHandle, terminate: bool = False) -> None:
        """Announce down and arm the capped-backoff respawn timer."""
        loop = asyncio.get_running_loop()
        if terminate:
            self._kill_quietly(handle)
        backoff = min(
            self.backoff_cap, self.backoff_base * (2.0 ** handle.consecutive_failures)
        )
        handle.consecutive_failures += 1
        handle.retry_at = self._now(loop) + backoff
        self._notify_down(handle)

    async def _try_restart(self, handle: WorkerHandle, loop) -> None:
        try:
            await self._spawn(handle)
        except WorkerStartupError:
            backoff = min(
                self.backoff_cap,
                self.backoff_base * (2.0 ** handle.consecutive_failures),
            )
            handle.consecutive_failures += 1
            handle.state = "down"
            handle.retry_at = self._now(loop) + backoff
        else:
            handle.restarts += 1

    # ------------------------------------------------------------------
    # Rolling restart (SIGHUP)
    # ------------------------------------------------------------------
    async def rolling_restart(self) -> int:
        """Drain and replace workers one at a time; returns workers rolled."""
        if self._rolling or self._stopping:
            return 0
        self._rolling = True
        rolled = 0
        try:
            for worker_id in sorted(self.workers):
                if self._stopping:
                    break
                handle = self.workers[worker_id]
                if handle.state != "up":
                    continue  # crashed workers are the supervise loop's job
                self._notify_down(handle, state="draining")
                await self._terminate(handle)
                await self._spawn(handle)
                handle.restarts += 1
                rolled += 1
        finally:
            self._rolling = False
        return rolled

    async def _terminate(self, handle: WorkerHandle) -> None:
        """SIGTERM one worker and wait for its graceful drain."""
        if not handle.alive():
            return
        try:
            handle.proc.send_signal(signal.SIGTERM)
        except ProcessLookupError:
            return
        try:
            await asyncio.wait_for(handle.proc.wait(), self.stop_timeout)
        except asyncio.TimeoutError:
            self._kill_quietly(handle)
            await handle.proc.wait()
        handle.last_exit = handle.proc.returncode

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    async def stop(self) -> None:
        """SIGTERM the whole fleet and collect the stragglers."""
        self._stopping = True
        live = [h for h in self.workers.values() if h.alive()]
        for handle in live:
            try:
                handle.proc.send_signal(signal.SIGTERM)
            except ProcessLookupError:
                pass
        await asyncio.gather(*(self._reap(h) for h in live))
        for handle in self.workers.values():
            self._notify_down(handle, state="stopped")

    async def _reap(self, handle: WorkerHandle) -> None:
        try:
            await asyncio.wait_for(handle.proc.wait(), self.stop_timeout)
        except asyncio.TimeoutError:
            self._kill_quietly(handle)
            await handle.proc.wait()
        handle.last_exit = handle.proc.returncode
        # Let the pumps hit EOF so final METRICS lines are captured.
        if handle._reader_tasks:
            await asyncio.gather(*handle._reader_tasks, return_exceptions=True)
            handle._reader_tasks = []

    def final_metrics(self) -> Dict[str, Dict[str, Any]]:
        """Per-incarnation final METRICS dumps captured from worker stdout.

        Rolled or crash-replaced incarnations appear as ``w0@0``, ``w0@1``,
        … so a rolling restart does not drop the pre-roll traffic from the
        cluster's merged final dump.
        """
        dumps: Dict[str, Dict[str, Any]] = {}
        for worker_id, handle in sorted(self.workers.items()):
            for index, retired in enumerate(handle.retired_metrics):
                dumps[f"{worker_id}@{index}"] = retired
            if handle.final_metrics is not None:
                dumps[worker_id] = handle.final_metrics
        return dumps

    def info(self) -> Dict[str, Dict[str, Any]]:
        return {
            worker_id: handle.info()
            for worker_id, handle in sorted(self.workers.items())
        }
