"""The asyncio HTTP/1.1 diff service: routing, handlers, serve loop.

A deliberately small, stdlib-only HTTP server (no frameworks, matching the
repo's no-new-runtime-deps rule) that puts :class:`repro.service.DiffEngine`
on the network:

========  ==============  ====================================================
method    path            behavior
========  ==============  ====================================================
POST      ``/v1/diff``    diff one ``{"old": ..., "new": ...}`` snapshot pair
POST      ``/v1/batch``   diff a ``{"pairs": [...]}`` array in one request
POST      ``/v1/verify``  run the conformance-oracle battery on one pair
GET       ``/healthz``    liveness + draining state (never admission-gated)
GET       ``/metrics``    deterministic JSON snapshot of ServiceMetrics
========  ==============  ====================================================

Compute requests pass through :class:`~repro.serve.admission.AdmissionController`
(413 / 429 + ``Retry-After`` / 504 / 503-while-draining; see that module)
and run on the engine's worker pool via ``run_in_executor`` so the event
loop only ever parses, routes, and writes — it never blocks on matching.

Concurrency note: an expired deadline answers the *request* with 504, but
the underlying pool job is not forcibly killed (CPython offers no safe
preemption). The admission slot is returned with the response — the
*engine's* worker pool still bounds actual compute — and shutdown waits
for stragglers: ``engine.close()`` joins its pool after the drain.
"""

from __future__ import annotations

import asyncio
import math
import threading
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

from ..matching.criteria import MatchConfig
from ..obs.export import validate_trace
from ..obs.trace import Tracer, extract_trace_context, is_valid_trace_id
from ..service.engine import DiffEngine
from ..service.metrics import ServiceMetrics
from ..simtest.clock import SYSTEM_CLOCK
from .admission import AdmissionController, Deadline
from .lifecycle import Lifecycle, dump_final_metrics, dump_final_traces
from .protocol import (
    MAX_HEADERS,
    PROTOCOL,
    STATUS_PHRASES,
    HttpError,
    dumps,
    job_result_to_dict,
    pairs_from_batch,
    parse_body,
    parse_request_line,
    read_content_length_body,
    read_headers,
    require_pair,
)

#: Compute endpoints (admission-gated); GET endpoints bypass admission.
COMPUTE_ROUTES = frozenset({"/v1/diff", "/v1/batch", "/v1/verify"})


@dataclass
class ServeConfig:
    """Everything the server needs, CLI-mappable one flag per field."""

    host: str = "127.0.0.1"
    port: int = 8765  #: 0 binds an ephemeral port (reported after start)
    workers: int = 4
    cache_size: int = 256
    algorithm: str = "fast"
    match: Optional[MatchConfig] = None
    postprocess: bool = True
    retries: int = 0
    verify_fraction: float = 0.0
    queue_capacity: int = 16
    rate: float = 0.0  #: per-client tokens/second; 0 disables rate limiting
    burst: float = 10.0
    max_body_bytes: int = 1 << 20
    deadline_ms: float = 30_000.0
    max_batch: int = 64
    drain_timeout: float = 30.0
    #: Server-side sampling for requests that arrive without trace headers;
    #: requests that *carry* a valid ``X-Trace-Id`` are always traced.
    trace_fraction: float = 0.0
    trace_buffer: int = 2048  #: ring-buffer capacity for closed spans
    trace_export: Optional[str] = None  #: JSONL path flushed on drain
    extra: Dict[str, Any] = field(default_factory=dict)


class DiffServer:
    """One engine, one admission controller, one listening socket."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        engine: Optional[DiffEngine] = None,
        metrics: Optional[ServiceMetrics] = None,
        clock: Optional[Any] = None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self.metrics = (
            metrics if metrics is not None else ServiceMetrics(clock=self.clock)
        )
        self.tracer = Tracer(
            fraction=self.config.trace_fraction,
            capacity=self.config.trace_buffer,
            clock=self.clock,
        )
        if engine is not None:
            self.engine = engine
            self.engine.metrics = self.metrics
            self.engine.tracer = self.tracer
        else:
            self.engine = DiffEngine(
                workers=self.config.workers,
                config=self.config.match,
                algorithm=self.config.algorithm,
                postprocess=self.config.postprocess,
                cache=self.config.cache_size,
                metrics=self.metrics,
                retries=self.config.retries,
                verify_fraction=self.config.verify_fraction,
                tracer=self.tracer,
            )
        self.admission = AdmissionController(
            queue_capacity=self.config.queue_capacity,
            rate=self.config.rate,
            burst=self.config.burst,
            max_body_bytes=self.config.max_body_bytes,
            default_deadline_ms=self.config.deadline_ms,
            mean_wall_ms=lambda: self.metrics.wall_ms.mean(),
            clock=self.clock,
        )
        self.lifecycle = Lifecycle(
            drain_timeout=self.config.drain_timeout,
            clock=clock,  # None in production: the loop clock drives drains
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._started = self.clock.monotonic()
        self.port: Optional[int] = None  #: actual bound port once started
        self._job_seq = 0
        # Loop-thread-only state: requests between first byte and last byte
        # (drain waits on this — admission releases before the response is
        # written) and the open connection tasks (cancelled post-drain so
        # idle keep-alive sockets don't outlive the loop noisily).
        self._active_requests = 0
        self._conn_tasks: set = set()

    # ------------------------------------------------------------------
    # Serve loop
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket (resolving port 0 to the real port)."""
        self.lifecycle.bind(asyncio.get_running_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def run(
        self,
        install_signals: bool = True,
        announce: Optional[Callable[[str], None]] = None,
        dump_metrics: bool = True,
    ) -> Dict[str, Any]:
        """Serve until shutdown is requested, drain, return final metrics."""
        if self._server is None:
            await self.start()
        if install_signals:
            self.lifecycle.install_signal_handlers()
        if announce is not None:
            announce(f"http://{self.config.host}:{self.port}")
        try:
            await self.lifecycle.wait_for_shutdown()
            await self.lifecycle.drain(
                self._server,
                lambda: self._active_requests + self.admission.in_flight,
            )
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        finally:
            self._server = None
            self.engine.close()
        if self.config.trace_export:
            dump_final_traces(self.tracer.export_jsonl(), self.config.trace_export)
        snapshot = self.metrics_payload()
        if dump_metrics:
            dump_final_metrics(snapshot)
        return snapshot

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        peer_id = f"{peer[0]}:{peer[1]}" if isinstance(peer, tuple) else "unknown"
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                keep_alive = await self._handle_one_request(reader, writer, peer_id)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            pass  # post-drain cleanup of an idle keep-alive socket
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_one_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter, peer_id: str
    ) -> bool:
        """Read, dispatch, and answer one request; True to keep the socket."""
        request_line = await reader.readline()
        if not request_line.strip():
            return False
        started = self.clock.perf_counter()
        self.metrics.incr("http_requests")
        self._active_requests += 1
        try:
            return await self._process_request(
                reader, writer, peer_id, request_line, started
            )
        finally:
            self._active_requests -= 1

    async def _process_request(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        peer_id: str,
        request_line: bytes,
        started: float,
    ) -> bool:
        keep_alive = True
        status = 500
        body_read = False
        try:
            method, path, version = self._parse_request_line(request_line)
            headers = await self._read_headers(reader)
            wants_close = headers.get("connection", "").lower() == "close"
            keep_alive = version == "HTTP/1.1" and not wants_close
            body = await self._read_body(reader, method, headers)
            body_read = True
            client = headers.get("x-client-id", peer_id)
            status, payload, extra = await self._dispatch(
                method, path, headers, body, client
            )
        except HttpError as exc:
            status, payload, extra = exc.status, exc.body(), {}
            if exc.retry_after is not None:
                extra["Retry-After"] = str(max(1, math.ceil(exc.retry_after)))
            if not body_read:
                # The request body was never consumed (413, bad framing):
                # the socket is mid-stream, so it cannot be reused.
                keep_alive = False
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # never let a handler bug kill the server
            self.metrics.incr("http_internal_errors")
            status = 500
            payload = {
                "error": "internal",
                "message": f"{type(exc).__name__}: {exc}",
                "protocol": PROTOCOL,
            }
            extra = {}
        if self.lifecycle.draining:
            keep_alive = False
        self._count_response(status)
        self.metrics.observe_stage(
            "http", (self.clock.perf_counter() - started) * 1000.0
        )
        await self._respond(writer, status, payload, extra, keep_alive)
        return keep_alive

    @staticmethod
    def _parse_request_line(raw: bytes) -> Tuple[str, str, str]:
        return parse_request_line(raw)

    @staticmethod
    async def _read_headers(reader: asyncio.StreamReader) -> Dict[str, str]:
        return await read_headers(reader, MAX_HEADERS)

    async def _read_body(
        self, reader: asyncio.StreamReader, method: str, headers: Dict[str, str]
    ) -> bytes:
        if method not in ("POST", "PUT"):
            return b""
        try:
            return await read_content_length_body(
                reader, headers, self.admission.max_body_bytes
            )
        except HttpError as exc:
            if exc.status == 413:
                self.metrics.incr("rejected_too_large")
            raise

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        extra_headers: Dict[str, str],
        keep_alive: bool,
    ) -> None:
        body = dumps(payload)
        phrase = STATUS_PHRASES.get(status, "Unknown")
        head = [
            f"HTTP/1.1 {status} {phrase}",
            f"Server: {PROTOCOL}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        head.extend(f"{name}: {value}" for name, value in extra_headers.items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    def _count_response(self, status: int) -> None:
        self.metrics.incr(f"http_responses_{status // 100}xx")

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
        client: str,
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        if path == "/healthz":
            self._require_method(method, "GET", path)
            return 200, self.health_payload(), {}
        if path == "/metrics":
            self._require_method(method, "GET", path)
            return 200, self.metrics_payload(), {}
        if path.startswith("/v1/trace/"):
            self._require_method(method, "GET", path)
            return 200, self.trace_payload(path[len("/v1/trace/"):]), {}
        if path in COMPUTE_ROUTES:
            self._require_method(method, "POST", path)
            data = parse_body(body)
            payload, extra = await self._admitted(path, data, headers, client)
            return 200, payload, extra
        raise HttpError(404, "not_found", f"no route for {path}")

    @staticmethod
    def _require_method(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise HttpError(405, "method_not_allowed", f"{path} only accepts {expected}")

    async def _admitted(
        self, path: str, data: Dict[str, Any], headers: Dict[str, str], client: str
    ) -> Tuple[Dict[str, Any], Dict[str, str]]:
        """The shared admission bracket around every compute endpoint.

        Returns ``(payload, extra response headers)``; a traced request
        echoes its trace id back as ``X-Trace-Id``.
        """
        if self.lifecycle.draining:
            self.metrics.incr("rejected_draining")
            raise HttpError(
                503, "draining", "server is draining; retry elsewhere", retry_after=1.0
            )
        ctx = extract_trace_context(headers)
        if ctx is not None:
            trace_id, parent_id = ctx
        else:
            trace_id, parent_id = self.tracer.maybe_trace(), None
        worker_span = None
        extra: Dict[str, str] = {}
        if trace_id is not None:
            worker_span = self.tracer.start_span(
                "worker",
                kind="worker",
                trace_id=trace_id,
                parent_id=parent_id,
                meta={"path": path, "client": client},
            )
            extra["X-Trace-Id"] = trace_id
        admission_span = (
            worker_span.child("admission", kind="worker")
            if worker_span is not None
            else None
        )
        decision = self.admission.try_admit(client, span=admission_span)
        if admission_span is not None:
            admission_span.close("ok" if decision.admitted else "refused")
        if not decision.admitted:
            if worker_span is not None:
                worker_span.close("refused")
            self.metrics.incr(f"rejected_{decision.reason}")
            raise HttpError(
                429,
                decision.reason,
                f"admission refused ({decision.reason}); retry later",
                retry_after=decision.retry_after,
            )
        deadline = self.admission.deadline(self._requested_deadline(data, headers))
        trace = (trace_id, worker_span.span_id) if worker_span is not None else None
        try:
            if path == "/v1/diff":
                payload = await self._handle_diff(data, deadline, trace)
            elif path == "/v1/batch":
                payload = await self._handle_batch(data, deadline, trace)
            else:
                payload = await self._handle_verify(data, deadline)
        except BaseException:
            if worker_span is not None:
                worker_span.close("error")
            raise
        else:
            if worker_span is not None:
                worker_span.close("ok")
            return payload, extra
        finally:
            self.admission.release()

    @staticmethod
    def _requested_deadline(
        data: Dict[str, Any], headers: Dict[str, str]
    ) -> Optional[float]:
        raw = data.get("deadline_ms", headers.get("x-deadline-ms"))
        if raw is None:
            return None
        try:
            return float(raw)
        except (TypeError, ValueError):
            raise HttpError(400, "bad_deadline", f"deadline_ms {raw!r} is not a number")

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    async def _await_with_deadline(self, awaitable: Awaitable, deadline: Deadline):
        remaining = deadline.remaining()
        if remaining <= 0.0:
            self.metrics.incr("deadline_timeouts")
            raise HttpError(
                504, "deadline", "deadline exhausted before compute started"
            )
        try:
            return await asyncio.wait_for(awaitable, timeout=remaining)
        except asyncio.TimeoutError:
            self.metrics.incr("deadline_timeouts")
            raise HttpError(
                504,
                "deadline",
                f"no result within the {deadline.budget_s * 1000.0:.0f}ms deadline",
            )

    def _next_job_id(self, prefix: str) -> str:
        self._job_seq += 1
        return f"{prefix}-{self._job_seq}"

    async def _handle_diff(
        self,
        data: Dict[str, Any],
        deadline: Deadline,
        trace: Optional[Tuple[str, str]] = None,
    ) -> Dict[str, Any]:
        old, new = require_pair(data)
        job_id = str(data.get("id", self._next_job_id("http")))
        future = asyncio.wrap_future(
            self.engine.submit(old, new, job_id=job_id, trace=trace)
        )
        result = await self._await_with_deadline(future, deadline)
        include_script = bool(data.get("include_script", True))
        return job_result_to_dict(result, include_script=include_script)

    async def _handle_batch(
        self,
        data: Dict[str, Any],
        deadline: Deadline,
        trace: Optional[Tuple[str, str]] = None,
    ) -> Dict[str, Any]:
        pairs = pairs_from_batch(data, self.config.max_batch)
        futures = [
            asyncio.wrap_future(self.engine.submit(old, new, job_id=job_id, trace=trace))
            for old, new, job_id in pairs
        ]
        results = await self._await_with_deadline(asyncio.gather(*futures), deadline)
        include_script = bool(data.get("include_script", True))
        jobs = [job_result_to_dict(r, include_script=include_script) for r in results]
        out = {
            "jobs": jobs,
            "failed": sum(1 for r in results if not r.ok),
            "protocol": PROTOCOL,
        }
        if trace is not None:
            out["trace_id"] = trace[0]
        return out

    async def _handle_verify(
        self, data: Dict[str, Any], deadline: Deadline
    ) -> Dict[str, Any]:
        from ..verify.fuzz import FuzzConfig, check_pair, default_runner

        old, new = require_pair(data)
        algorithm = data.get("algorithm", "both")
        if algorithm not in ("fast", "simple", "both"):
            raise HttpError(400, "bad_algorithm", f"unknown algorithm {algorithm!r}")
        algorithms = ("fast", "simple") if algorithm == "both" else (algorithm,)
        config = FuzzConfig(
            algorithms=algorithms,
            match=self.config.match,
            differential=bool(data.get("differential", False)),
            shrink=False,
        )
        loop = asyncio.get_running_loop()
        report = await self._await_with_deadline(
            loop.run_in_executor(None, check_pair, old, new, config, default_runner),
            deadline,
        )
        self.metrics.absorb_verify_report(report)
        out = report.to_dict()
        out["protocol"] = PROTOCOL
        return out

    # ------------------------------------------------------------------
    # Introspection payloads
    # ------------------------------------------------------------------
    def health_payload(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self.lifecycle.draining else "ok",
            "in_flight": self.admission.in_flight,
            "uptime_s": round(self.clock.monotonic() - self._started, 3),
            "protocol": PROTOCOL,
        }

    def metrics_payload(self) -> Dict[str, Any]:
        snapshot = self.metrics.snapshot()
        snapshot["server"] = dict(self.admission.stats())
        snapshot["server"]["draining"] = self.lifecycle.draining
        cache = self.engine.cache
        snapshot["cache"] = cache.stats() if cache is not None else None
        snapshot["trace"] = self.tracer.stats()
        snapshot["protocol"] = PROTOCOL
        return snapshot

    def trace_payload(self, trace_id: str) -> Dict[str, Any]:
        """The ``GET /v1/trace/<id>`` debug view: this worker's spans."""
        if not is_valid_trace_id(trace_id):
            raise HttpError(400, "bad_trace_id", f"not a trace id: {trace_id!r}")
        trace_id = trace_id.lower()
        spans = self.tracer.trace(trace_id)
        open_spans = self.tracer.open_count(trace_id)
        if not spans and not open_spans:
            raise HttpError(404, "unknown_trace", f"no spans for trace {trace_id}")
        return {
            "trace_id": trace_id,
            "spans": spans,
            "open_spans": open_spans,
            "complete": open_spans == 0 and not validate_trace(spans),
            "protocol": PROTOCOL,
        }


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------
def run_server(
    config: Optional[ServeConfig] = None,
    announce: Optional[Callable[[str], None]] = None,
) -> int:
    """Blocking foreground entry point used by ``repro-diff serve``.

    Installs SIGTERM/SIGINT drain handlers, serves until one arrives,
    drains, prints the final ``METRICS`` line, and returns a process exit
    code (0 = clean drain, 1 = in-flight work abandoned at the timeout).
    """
    server = DiffServer(config)

    async def _main() -> Dict[str, Any]:
        await server.start()
        return await server.run(install_signals=True, announce=announce)

    asyncio.run(_main())
    return 0 if server.lifecycle.drained_clean is not False else 1


class ServerThread:
    """A DiffServer on a background thread — tests and benchmarks.

    ``start()`` returns once the socket is bound (``.port`` is then real);
    ``stop()`` runs the same drain sequence SIGTERM would and returns the
    final metrics snapshot.
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        engine: Optional[DiffEngine] = None,
    ) -> None:
        self.server = DiffServer(config, engine=engine)
        self._ready = threading.Event()
        self._final: Optional[Dict[str, Any]] = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._main, daemon=True)

    @property
    def port(self) -> int:
        port = self.server.port
        assert port is not None, "server not started"
        return port

    def _main(self) -> None:
        async def body() -> None:
            await self.server.start()
            self._ready.set()
            self._final = await self.server.run(
                install_signals=False, dump_metrics=False
            )

        try:
            asyncio.run(body())
        except BaseException as exc:  # surfaced to the joining thread
            self._error = exc
            self._ready.set()

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server failed to start in time")
        if self._error is not None:
            raise RuntimeError(f"server failed to start: {self._error!r}")
        return self

    def stop(self, timeout: float = 10.0) -> Dict[str, Any]:
        self.server.lifecycle.request_shutdown()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("server did not drain in time")
        if self._error is not None:
            raise RuntimeError(f"server crashed: {self._error!r}")
        assert self._final is not None
        return self._final

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *_exc: Any) -> None:
        if self._thread.is_alive():
            self.stop()
