"""Admission control: decide *whether* to run a request before running it.

Overload policy for the diff service, in the order the app applies it:

1. **Max body** — a request larger than ``max_body_bytes`` is refused with
   413 before its body is even read off the socket.
2. **Per-client rate limit** — a token bucket per client identity
   (``X-Client-Id`` header, else the peer address): sustained rate
   ``rate`` tokens/second with burst capacity ``burst``. An empty bucket
   means 429 with ``Retry-After`` set to when the next token accrues.
3. **Bounded queue** — at most ``queue_capacity`` compute requests may be
   in flight (queued or running) at once. When the queue is full the
   request is refused with 429 and a ``Retry-After`` estimated from the
   recent mean job latency — *backpressure*, not buffering: the server
   never accumulates unbounded work it cannot finish.
4. **Deadline** — every admitted request carries a deadline (its own
   ``deadline_ms``, capped by the server default). Work that has not
   produced a result by then is answered 504; a request that already
   spent its whole budget waiting in the queue is answered 504 without
   running at all.

Everything here is synchronous, lock-protected, and clock-injectable so
the policy is unit-testable without sockets or an event loop. Every
``clock=`` parameter accepts either the legacy bare callable
(``() -> float`` monotonic reader) or a full
:class:`repro.simtest.clock.Clock` object — both are normalized through
:func:`repro.simtest.clock.monotonic_callable`, so the simulation harness
can drive admission deadlines and token refill on virtual time.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..simtest.clock import monotonic_callable

Clock = Callable[[], float]


@dataclass
class Decision:
    """Outcome of an admission check."""

    admitted: bool
    reason: str = "ok"  #: ``"ok"`` | ``"rate_limited"`` | ``"queue_full"``
    retry_after: float = 0.0  #: seconds a refused client should wait


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, at most ``burst`` banked."""

    def __init__(self, rate: float, burst: float, clock: Clock = time.monotonic) -> None:
        if rate <= 0.0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1.0:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self._clock = monotonic_callable(clock)
        self._tokens = burst
        self._stamp = self._clock()

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Take *tokens* if available; return 0.0, else seconds until refill."""
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now
        if self._tokens >= tokens:
            self._tokens -= tokens
            return 0.0
        return (tokens - self._tokens) / self.rate


class RateLimiter:
    """Per-client token buckets with a bounded client table (LRU).

    ``rate <= 0`` disables rate limiting entirely (every check admits),
    which is the server default — the bounded queue alone then provides
    global backpressure.
    """

    def __init__(
        self,
        rate: float = 0.0,
        burst: float = 10.0,
        max_clients: int = 1024,
        clock: Clock = time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = burst
        self.max_clients = max_clients
        self._clock = monotonic_callable(clock)
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.rate > 0.0

    def check(self, client: str) -> Decision:
        if not self.enabled:
            return Decision(admitted=True)
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, self._clock)
                self._buckets[client] = bucket
                while len(self._buckets) > self.max_clients:
                    self._buckets.popitem(last=False)
            else:
                self._buckets.move_to_end(client)
            wait = bucket.try_acquire()
        if wait <= 0.0:
            return Decision(admitted=True)
        return Decision(admitted=False, reason="rate_limited", retry_after=wait)


class Deadline:
    """A monotonic budget: how long this request may still take."""

    def __init__(self, budget_s: float, clock: Clock = time.monotonic) -> None:
        self._clock = monotonic_callable(clock)
        self._expires = self._clock() + budget_s
        self.budget_s = budget_s

    def remaining(self) -> float:
        return self._expires - self._clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0


class AdmissionController:
    """The service's bounded in-flight queue plus the checks around it.

    ``try_admit``/``release`` bracket every compute request; the in-flight
    count is what the drain sequence waits on and what ``/healthz``
    reports. ``retry_after`` for queue-full refusals is estimated as the
    time for the backlog to clear at the recent mean job latency — the
    injectable ``mean_wall_ms`` callable is wired to the shared
    :class:`~repro.service.metrics.ServiceMetrics` by the app.
    """

    def __init__(
        self,
        queue_capacity: int = 16,
        rate: float = 0.0,
        burst: float = 10.0,
        max_body_bytes: int = 1 << 20,
        default_deadline_ms: float = 30_000.0,
        mean_wall_ms: Optional[Callable[[], float]] = None,
        clock: Clock = time.monotonic,
    ) -> None:
        if queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {queue_capacity}")
        if max_body_bytes < 1:
            raise ValueError(f"max_body_bytes must be >= 1, got {max_body_bytes}")
        if default_deadline_ms <= 0:
            raise ValueError(
                f"default_deadline_ms must be > 0, got {default_deadline_ms}"
            )
        self.queue_capacity = queue_capacity
        self.max_body_bytes = max_body_bytes
        self.default_deadline_ms = default_deadline_ms
        self._clock = monotonic_callable(clock)
        self.limiter = RateLimiter(rate=rate, burst=burst, clock=self._clock)
        self._mean_wall_ms = mean_wall_ms
        self._lock = threading.Lock()
        self._in_flight = 0

    # ------------------------------------------------------------------
    # Checks (in the order the app applies them)
    # ------------------------------------------------------------------
    def body_allowed(self, content_length: int) -> bool:
        return content_length <= self.max_body_bytes

    def try_admit(self, client: str, span: Optional[Any] = None) -> Decision:
        """Rate-limit then queue check; on success one slot is held.

        ``span`` is an optional open :class:`repro.obs.Span`: the decision
        (and the queue depth it was made against) is annotated onto it so
        a trace shows *why* a request was admitted or refused.
        """
        decision = self.limiter.check(client)
        if decision.admitted:
            with self._lock:
                if self._in_flight >= self.queue_capacity:
                    decision = Decision(
                        admitted=False,
                        reason="queue_full",
                        retry_after=self._queue_retry_after(),
                    )
                else:
                    self._in_flight += 1
                    decision = Decision(admitted=True)
        if span is not None:
            span.annotate(
                decision=decision.reason,
                admitted=decision.admitted,
                in_flight=self.in_flight,
            )
        return decision

    def release(self) -> None:
        """Return the slot taken by a successful :meth:`try_admit`."""
        with self._lock:
            if self._in_flight <= 0:
                raise RuntimeError("release() without a matching try_admit()")
            self._in_flight -= 1

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def deadline(self, requested_ms: Optional[float] = None) -> Deadline:
        """The effective deadline: the request's ask, capped by the server's."""
        budget_ms = self.default_deadline_ms
        if requested_ms is not None and requested_ms > 0:
            budget_ms = min(budget_ms, requested_ms)
        return Deadline(budget_ms / 1000.0, self._clock)

    # ------------------------------------------------------------------
    def _queue_retry_after(self) -> float:
        """Seconds for a full queue to plausibly clear one slot."""
        mean_ms = self._mean_wall_ms() if self._mean_wall_ms is not None else 0.0
        if mean_ms <= 0.0:
            return 1.0
        # The whole backlog at mean latency, clamped to a sane window.
        estimate = (self.queue_capacity * mean_ms) / 1000.0
        return max(0.05, min(estimate, 30.0))

    def stats(self) -> Dict[str, object]:
        """JSON-friendly view for ``/healthz`` and ``/metrics``."""
        return {
            "queue_capacity": self.queue_capacity,
            "in_flight": self.in_flight,
            "rate_limit_enabled": self.limiter.enabled,
            "rate": self.limiter.rate,
            "burst": self.limiter.burst,
            "max_body_bytes": self.max_body_bytes,
            "default_deadline_ms": self.default_deadline_ms,
        }
