"""Wire format of the diff service: JSON payloads and HTTP status mapping.

The service speaks plain HTTP/1.1 with JSON bodies, all of it stdlib. Trees
travel in the dict format of :mod:`repro.core.serialization` (or as
s-expression strings, which parse through the same front door as the CLI),
and every response body is a JSON object serialized deterministically
(``sort_keys=True``) so clients, tests, and logs see byte-stable output.

Errors are modelled as :class:`HttpError` — raised anywhere while handling
a request, rendered once into a JSON error body by the app. Overload
responses (429/503) carry a ``Retry-After`` header that
:class:`repro.serve.client.DiffServiceClient` honors.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import ParseError
from ..core.serialization import tree_from_dict, tree_from_sexpr, tree_to_dict
from ..core.tree import Tree
from ..obs.trace import (  # noqa: F401  (re-exported wire-level helpers)
    SPAN_ID_HEADER,
    TRACE_ID_HEADER,
    extract_trace_context,
    inject_trace_headers,
)

#: Protocol identifier echoed in every response and checked by the client.
PROTOCOL = "repro-serve/1"

#: Reason phrases for the status codes the service emits.
STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Status codes the client treats as transient and retries.
RETRYABLE_STATUSES = frozenset({429, 500, 502, 503, 504})


class HttpError(Exception):
    """A request failure with an HTTP status, JSON-rendered by the app.

    ``retry_after`` (seconds) becomes a ``Retry-After`` header — the
    admission layer sets it on 429/503 so well-behaved clients back off by
    the server's own estimate instead of guessing.
    """

    def __init__(
        self,
        status: int,
        reason: str,
        message: str,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.reason = reason
        self.message = message
        self.retry_after = retry_after

    def body(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "error": self.reason,
            "message": self.message,
            "protocol": PROTOCOL,
        }
        if self.retry_after is not None:
            out["retry_after_s"] = round(self.retry_after, 3)
        return out


def dumps(payload: Any) -> bytes:
    """Deterministic JSON encoding used for every response body."""
    return json.dumps(payload, sort_keys=True).encode("utf-8")


# ---------------------------------------------------------------------------
# Low-level HTTP/1.1 framing, shared by the app, the cluster router, and the
# supervisor's health checks. Everything raises HttpError so callers answer
# protocol violations uniformly.
# ---------------------------------------------------------------------------

#: Upper bound on header lines per request (anti-abuse, not a real limit).
MAX_HEADERS = 100


def parse_request_line(raw: bytes) -> Tuple[str, str, str]:
    """Split ``b"POST /v1/diff HTTP/1.1\\r\\n"`` into (method, path, version)."""
    try:
        text = raw.decode("latin-1").rstrip("\r\n")
        method, target, version = text.split(" ")
    except ValueError:
        raise HttpError(400, "bad_request_line", f"malformed request line: {raw!r}")
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise HttpError(400, "bad_request_line", f"unsupported version {version}")
    return method.upper(), target.split("?", 1)[0], version


def parse_status_line(raw: bytes) -> int:
    """Extract the status code from ``b"HTTP/1.1 200 OK\\r\\n"``."""
    parts = raw.decode("latin-1").split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise HttpError(502, "bad_upstream", f"malformed status line: {raw!r}")
    try:
        return int(parts[1])
    except ValueError:
        raise HttpError(502, "bad_upstream", f"malformed status code in {raw!r}")


async def read_headers(
    reader: asyncio.StreamReader, max_headers: int = MAX_HEADERS
) -> Dict[str, str]:
    """Read header lines up to the blank separator into a lowercased dict."""
    headers: Dict[str, str] = {}
    for _ in range(max_headers):
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            return headers
        name, sep, value = line.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    raise HttpError(400, "bad_headers", f"more than {max_headers} header lines")


async def read_content_length_body(
    reader: asyncio.StreamReader, headers: Dict[str, str], max_body_bytes: int
) -> bytes:
    """Read a Content-Length-framed body (411/400/413/501 on bad framing)."""
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(501, "chunked_unsupported", "send Content-Length, not chunked")
    raw_length = headers.get("content-length")
    if raw_length is None:
        raise HttpError(411, "length_required", "POST requires Content-Length")
    try:
        length = int(raw_length)
        if length < 0:
            raise ValueError
    except ValueError:
        raise HttpError(400, "bad_length", f"invalid Content-Length {raw_length!r}")
    if length > max_body_bytes:
        raise HttpError(
            413,
            "too_large",
            f"body of {length} bytes exceeds the {max_body_bytes}-byte limit",
        )
    return await reader.readexactly(length) if length else b""


async def fetch_json(
    host: str, port: int, path: str, timeout: float = 5.0
) -> Tuple[int, Dict[str, Any]]:
    """One GET against a backend, fully framed: ``(status, decoded body)``.

    The async sibling of :meth:`DiffServiceClient.request_once` for use on
    the serving loop (supervisor health checks, router metrics fan-in).
    Connection failures propagate as ``OSError`` / ``asyncio.TimeoutError``.
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        request = (
            f"GET {path} HTTP/1.1\r\nHost: {host}:{port}\r\n"
            "Accept: application/json\r\nConnection: close\r\n\r\n"
        )
        writer.write(request.encode("latin-1"))
        await writer.drain()
        status_line = await asyncio.wait_for(reader.readline(), timeout)
        status = parse_status_line(status_line)
        headers = await asyncio.wait_for(read_headers(reader), timeout)
        length = int(headers.get("content-length", "0"))
        raw = await asyncio.wait_for(reader.readexactly(length), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    try:
        decoded = json.loads(raw.decode("utf-8")) if raw else {}
    except ValueError:
        decoded = {}
    if not isinstance(decoded, dict):
        decoded = {"value": decoded}
    return status, decoded


def parse_body(raw: bytes) -> Dict[str, Any]:
    """Decode a request body into a JSON object (400 on anything else)."""
    try:
        data = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise HttpError(400, "bad_json", f"request body is not valid JSON: {exc}")
    if not isinstance(data, dict):
        raise HttpError(400, "bad_json", "request body must be a JSON object")
    return data


def tree_from_payload(spec: Any, field: str) -> Tree:
    """Materialize the ``old``/``new`` field of a request into a Tree.

    Accepts the nested-dict format (JSON snapshots) or an s-expression
    string (the compact text form used by fixtures and the CLI).
    """
    try:
        if isinstance(spec, dict):
            return tree_from_dict(spec)
        if isinstance(spec, str):
            return tree_from_sexpr(spec)
    except (ParseError, KeyError, TypeError, ValueError) as exc:
        raise HttpError(400, "bad_tree", f"field {field!r} does not parse: {exc}")
    raise HttpError(
        400, "bad_tree", f"field {field!r} must be a tree dict or s-expression string"
    )


def require_pair(data: Dict[str, Any]) -> Tuple[Tree, Tree]:
    """Extract and parse the mandatory ``old``/``new`` snapshot pair."""
    missing = [field for field in ("old", "new") if field not in data]
    if missing:
        raise HttpError(
            400, "missing_field", f"missing required field(s): {', '.join(missing)}"
        )
    return (
        tree_from_payload(data["old"], "old"),
        tree_from_payload(data["new"], "new"),
    )


def job_result_to_dict(result: Any, include_script: bool = True) -> Dict[str, Any]:
    """JSON-friendly view of a :class:`repro.service.engine.JobResult`."""
    out: Dict[str, Any] = {
        "job_id": result.job_id,
        "status": result.status,
        "source": result.source,
        "operations": result.operations,
        "cost": result.cost,
        "wall_ms": round(result.wall_ms, 3),
        "attempts": result.attempts,
        "old_digest": result.old_digest,
        "new_digest": result.new_digest,
        "summary": dict(result.summary),
        "stage_ms": {stage: round(ms, 3) for stage, ms in result.stage_ms.items()},
        "error": result.error,
        "verified": result.verified,
        "protocol": PROTOCOL,
    }
    trace_id = getattr(result, "trace_id", None)
    if trace_id is not None:
        out["trace_id"] = trace_id
    if include_script and result.script is not None:
        out["script"] = {
            "records": result.script.to_dicts(),
            "wrapped": result.wrapped,
        }
    return out


def pairs_from_batch(data: Dict[str, Any], max_pairs: int) -> List[Tuple[Tree, Tree, str]]:
    """Extract the ``pairs`` list of a ``/v1/batch`` request."""
    pairs = data.get("pairs")
    if not isinstance(pairs, list) or not pairs:
        raise HttpError(
            400, "missing_field", "batch body needs a non-empty 'pairs' array"
        )
    if len(pairs) > max_pairs:
        raise HttpError(
            413,
            "batch_too_large",
            f"batch of {len(pairs)} pairs exceeds the per-request cap of {max_pairs}",
        )
    out: List[Tuple[Tree, Tree, str]] = []
    for index, entry in enumerate(pairs):
        if not isinstance(entry, dict):
            raise HttpError(400, "bad_pair", f"pairs[{index}] must be an object")
        old, new = require_pair(entry)
        out.append((old, new, str(entry.get("id", f"pair-{index}"))))
    return out


def tree_to_payload(tree: Tree) -> Optional[Dict[str, Any]]:
    """Client-side helper: the wire form of a snapshot (dict format)."""
    return tree_to_dict(tree)
