"""Wire format of the diff service: JSON payloads and HTTP status mapping.

The service speaks plain HTTP/1.1 with JSON bodies, all of it stdlib. Trees
travel in the dict format of :mod:`repro.core.serialization` (or as
s-expression strings, which parse through the same front door as the CLI),
and every response body is a JSON object serialized deterministically
(``sort_keys=True``) so clients, tests, and logs see byte-stable output.

Errors are modelled as :class:`HttpError` — raised anywhere while handling
a request, rendered once into a JSON error body by the app. Overload
responses (429/503) carry a ``Retry-After`` header that
:class:`repro.serve.client.DiffServiceClient` honors.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import ParseError
from ..core.serialization import tree_from_dict, tree_from_sexpr, tree_to_dict
from ..core.tree import Tree

#: Protocol identifier echoed in every response and checked by the client.
PROTOCOL = "repro-serve/1"

#: Reason phrases for the status codes the service emits.
STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Status codes the client treats as transient and retries.
RETRYABLE_STATUSES = frozenset({429, 500, 502, 503, 504})


class HttpError(Exception):
    """A request failure with an HTTP status, JSON-rendered by the app.

    ``retry_after`` (seconds) becomes a ``Retry-After`` header — the
    admission layer sets it on 429/503 so well-behaved clients back off by
    the server's own estimate instead of guessing.
    """

    def __init__(
        self,
        status: int,
        reason: str,
        message: str,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.reason = reason
        self.message = message
        self.retry_after = retry_after

    def body(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "error": self.reason,
            "message": self.message,
            "protocol": PROTOCOL,
        }
        if self.retry_after is not None:
            out["retry_after_s"] = round(self.retry_after, 3)
        return out


def dumps(payload: Any) -> bytes:
    """Deterministic JSON encoding used for every response body."""
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def parse_body(raw: bytes) -> Dict[str, Any]:
    """Decode a request body into a JSON object (400 on anything else)."""
    try:
        data = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise HttpError(400, "bad_json", f"request body is not valid JSON: {exc}")
    if not isinstance(data, dict):
        raise HttpError(400, "bad_json", "request body must be a JSON object")
    return data


def tree_from_payload(spec: Any, field: str) -> Tree:
    """Materialize the ``old``/``new`` field of a request into a Tree.

    Accepts the nested-dict format (JSON snapshots) or an s-expression
    string (the compact text form used by fixtures and the CLI).
    """
    try:
        if isinstance(spec, dict):
            return tree_from_dict(spec)
        if isinstance(spec, str):
            return tree_from_sexpr(spec)
    except (ParseError, KeyError, TypeError, ValueError) as exc:
        raise HttpError(400, "bad_tree", f"field {field!r} does not parse: {exc}")
    raise HttpError(
        400, "bad_tree", f"field {field!r} must be a tree dict or s-expression string"
    )


def require_pair(data: Dict[str, Any]) -> Tuple[Tree, Tree]:
    """Extract and parse the mandatory ``old``/``new`` snapshot pair."""
    missing = [field for field in ("old", "new") if field not in data]
    if missing:
        raise HttpError(
            400, "missing_field", f"missing required field(s): {', '.join(missing)}"
        )
    return (
        tree_from_payload(data["old"], "old"),
        tree_from_payload(data["new"], "new"),
    )


def job_result_to_dict(result: Any, include_script: bool = True) -> Dict[str, Any]:
    """JSON-friendly view of a :class:`repro.service.engine.JobResult`."""
    out: Dict[str, Any] = {
        "job_id": result.job_id,
        "status": result.status,
        "source": result.source,
        "operations": result.operations,
        "cost": result.cost,
        "wall_ms": round(result.wall_ms, 3),
        "attempts": result.attempts,
        "old_digest": result.old_digest,
        "new_digest": result.new_digest,
        "summary": dict(result.summary),
        "stage_ms": {stage: round(ms, 3) for stage, ms in result.stage_ms.items()},
        "error": result.error,
        "verified": result.verified,
        "protocol": PROTOCOL,
    }
    if include_script and result.script is not None:
        out["script"] = {
            "records": result.script.to_dicts(),
            "wrapped": result.wrapped,
        }
    return out


def pairs_from_batch(data: Dict[str, Any], max_pairs: int) -> List[Tuple[Tree, Tree, str]]:
    """Extract the ``pairs`` list of a ``/v1/batch`` request."""
    pairs = data.get("pairs")
    if not isinstance(pairs, list) or not pairs:
        raise HttpError(
            400, "missing_field", "batch body needs a non-empty 'pairs' array"
        )
    if len(pairs) > max_pairs:
        raise HttpError(
            413,
            "batch_too_large",
            f"batch of {len(pairs)} pairs exceeds the per-request cap of {max_pairs}",
        )
    out: List[Tuple[Tree, Tree, str]] = []
    for index, entry in enumerate(pairs):
        if not isinstance(entry, dict):
            raise HttpError(400, "bad_pair", f"pairs[{index}] must be an object")
        old, new = require_pair(entry)
        out.append((old, new, str(entry.get("id", f"pair-{index}"))))
    return out


def tree_to_payload(tree: Tree) -> Optional[Dict[str, Any]]:
    """Client-side helper: the wire form of a snapshot (dict format)."""
    return tree_to_dict(tree)
