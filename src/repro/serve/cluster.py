"""Multi-process sharded serving: supervisor + affinity router in one front.

``repro-diff serve --workers N`` (N ≥ 2) runs this topology::

                        ┌────────────────────────────┐
        clients ──────► │ ClusterServer (one process) │
                        │  Router ── HashRing          │
                        │  Supervisor ── health/restart│
                        └──────┬───────┬───────┬──────┘
                               ▼       ▼       ▼
                             w0:p0   w1:p1   w2:p2     (repro-diff serve
                             DiffServer subprocesses    --workers 1, own
                             each with its own engine,  ephemeral port)
                             ScriptCache, and GIL

Each worker is a full single-process :class:`~repro.serve.app.DiffServer`
— its own CPython interpreter (so matching runs on its own GIL and core),
its own :class:`~repro.service.engine.DiffEngine`, and its own shard of
the cache keyspace, kept coherent by the router's consistent hashing.

The front process answers ``/healthz`` (topology view) and ``/metrics``
(per-worker snapshots merged by :func:`repro.service.metrics.merge_snapshots`
and tagged with worker ids) itself; compute traffic is proxied with
replay-on-failure so a worker crash degrades capacity without failing a
single client request.

Signals: SIGTERM/SIGINT drain the front and SIGTERM the fleet (each worker
then runs its own PR 6 drain sequence); SIGHUP triggers a one-at-a-time
rolling restart.
"""

from __future__ import annotations

import asyncio
import os
import signal
import sys
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..service.metrics import merge_snapshots
from ..simtest.clock import SYSTEM_CLOCK
from .app import ServeConfig
from .lifecycle import Lifecycle, dump_final_metrics
from .protocol import PROTOCOL
from .router import HashRing, Router
from .supervisor import Supervisor, WorkerHandle


@dataclass
class ClusterConfig:
    """Topology knobs; per-worker behavior lives in the nested ServeConfig."""

    host: str = "127.0.0.1"
    port: int = 8765  #: front port; 0 binds an ephemeral port
    workers: int = 4  #: worker *processes* (>= 2; 0/1 is the single path)
    replicas: int = 64  #: virtual nodes per worker on the hash ring
    health_interval: float = 0.5
    backoff_base: float = 0.25
    backoff_cap: float = 5.0
    startup_timeout: float = 60.0
    drain_timeout: float = 30.0
    connect_timeout: float = 5.0
    proxy_timeout: float = 120.0
    serve: ServeConfig = field(default_factory=ServeConfig)

    def __post_init__(self) -> None:
        if self.workers < 2:
            raise ValueError(
                f"cluster needs >= 2 workers, got {self.workers} "
                f"(use run_server for the single-process path)"
            )


def worker_argv(serve: ServeConfig, python: Optional[str] = None) -> List[str]:
    """The ``repro-diff serve`` command line for one single-process worker."""
    argv = [
        python if python is not None else sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--host", serve.host,
        "--port", "0",
        "--workers", "1",
        "--threads", str(serve.workers),
        "--cache-size", str(serve.cache_size),
        "--queue-depth", str(serve.queue_capacity),
        "--rate", str(serve.rate),
        "--burst", str(serve.burst),
        "--max-body-kb", str(max(1, serve.max_body_bytes // 1024)),
        "--deadline-ms", str(serve.deadline_ms),
        "--drain-timeout", str(serve.drain_timeout),
        "--retries", str(serve.retries),
        "--verify-fraction", str(serve.verify_fraction),
        "--trace-fraction", str(serve.trace_fraction),
        "--algorithm", serve.algorithm,
    ]
    if serve.match is not None:
        argv += ["-t", str(serve.match.t), "-f", str(serve.match.f)]
    return argv


def worker_env() -> Dict[str, str]:
    """Subprocess env that can import ``repro`` however the parent did."""
    env = dict(os.environ)
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    existing = env.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
    return env


class ClusterServer:
    """One router, one supervisor, N worker subprocesses."""

    def __init__(
        self,
        config: ClusterConfig,
        clock: Optional[Any] = None,
        faults: Optional[Any] = None,
    ) -> None:
        self.config = config
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self.lifecycle = Lifecycle(drain_timeout=config.drain_timeout, clock=clock)
        self.ring = HashRing(replicas=config.replicas)
        self.ports: Dict[str, int] = {}
        self.supervisor = Supervisor(
            count=config.workers,
            argv_factory=lambda worker_id: worker_argv(config.serve),
            env=worker_env(),
            backend_host=config.host,
            health_interval=config.health_interval,
            backoff_base=config.backoff_base,
            backoff_cap=config.backoff_cap,
            startup_timeout=config.startup_timeout,
            stop_timeout=config.drain_timeout,
            on_up=self._worker_up,
            on_down=self._worker_down,
            clock=clock,
            faults=faults,
        )
        self.router = Router(
            ring=self.ring,
            ports=self.ports,
            lifecycle=self.lifecycle,
            health_payload=self.health_payload,
            merge_metrics=merge_snapshots,
            on_backend_failure=self.supervisor.suspect,
            backend_host=config.host,
            max_body_bytes=config.serve.max_body_bytes,
            connect_timeout=config.connect_timeout,
            proxy_timeout=config.proxy_timeout,
            clock=clock,
            faults=faults,
        )
        self.port: Optional[int] = None
        self._started = self.clock.monotonic()
        self._hup_event: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # Supervisor → router wiring
    # ------------------------------------------------------------------
    def _worker_up(self, handle: WorkerHandle) -> None:
        assert handle.port is not None
        self.ports[handle.worker_id] = handle.port
        self.ring.add(handle.worker_id)

    def _worker_down(self, handle: WorkerHandle) -> None:
        self.ring.remove(handle.worker_id)
        self.ports.pop(handle.worker_id, None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health_payload(self) -> Dict[str, Any]:
        workers = self.supervisor.info()
        up = sum(1 for info in workers.values() if info["state"] == "up")
        if self.lifecycle.draining:
            status = "draining"
        elif up == len(workers):
            status = "ok"
        elif up > 0:
            status = "degraded"
        else:
            status = "down"
        return {
            "status": status,
            "role": "cluster",
            "workers": workers,
            "workers_up": up,
            "uptime_s": round(self.clock.monotonic() - self._started, 3),
            "protocol": PROTOCOL,
        }

    # ------------------------------------------------------------------
    # Serve loop
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the fleet, then bind the front socket (workers first, so
        the first client request already has somewhere to go)."""
        self.lifecycle.bind(asyncio.get_running_loop())
        await self.supervisor.start()
        await self.router.start(self.config.host, self.config.port)
        self.port = self.router.port

    async def run(
        self,
        install_signals: bool = True,
        announce: Optional[Callable[[str], None]] = None,
        dump_metrics: bool = True,
    ) -> Dict[str, Any]:
        """Serve until shutdown; drain front then fleet; merged final dump."""
        if self.port is None:
            await self.start()
        loop = asyncio.get_running_loop()
        self._hup_event = asyncio.Event()
        if install_signals:
            self.lifecycle.install_signal_handlers()
            try:
                loop.add_signal_handler(signal.SIGHUP, self._hup_event.set)
            except (NotImplementedError, RuntimeError, AttributeError):
                pass
        if announce is not None:
            announce(f"http://{self.config.host}:{self.port}")
        supervise_task = asyncio.ensure_future(self.supervisor.supervise())
        hup_task = asyncio.ensure_future(self._watch_hup())
        try:
            await self.lifecycle.wait_for_shutdown()
            await self.lifecycle.drain(
                self.router.server, lambda: self.router.active_requests
            )
            await self.router.close_connections()
        finally:
            hup_task.cancel()
            await self.supervisor.stop()
            supervise_task.cancel()
            await asyncio.gather(
                supervise_task, hup_task, return_exceptions=True
            )
        snapshot = self.final_snapshot()
        if dump_metrics:
            dump_final_metrics(snapshot)
        return snapshot

    async def _watch_hup(self) -> None:
        assert self._hup_event is not None
        while True:
            await self._hup_event.wait()
            self._hup_event.clear()
            await self.rolling_restart()

    async def rolling_restart(self) -> int:
        """SIGHUP path: drain and replace one worker at a time."""
        return await self.supervisor.rolling_restart()

    def final_snapshot(self) -> Dict[str, Any]:
        """Merge the workers' final METRICS dumps + the router's counters."""
        merged = merge_snapshots(self.supervisor.final_metrics())
        merged["cluster"] = self.router.stats()
        merged["cluster"]["workers"] = self.supervisor.info()
        merged["protocol"] = PROTOCOL
        return merged


# ---------------------------------------------------------------------------
# Entry points (mirroring app.run_server / app.ServerThread)
# ---------------------------------------------------------------------------
def run_cluster(
    config: ClusterConfig,
    announce: Optional[Callable[[str], None]] = None,
) -> int:
    """Blocking foreground entry point for ``repro-diff serve --workers N``."""
    cluster = ClusterServer(config)

    async def _main() -> Dict[str, Any]:
        await cluster.start()
        return await cluster.run(install_signals=True, announce=announce)

    asyncio.run(_main())
    return 0 if cluster.lifecycle.drained_clean is not False else 1


class ClusterThread:
    """A ClusterServer on a background thread — tests and benchmarks.

    Worker *processes* are real either way; only the front loop is
    embedded. ``start()`` returns once every worker is healthy and the
    front socket is bound; ``stop()`` runs the SIGTERM drain sequence and
    returns the merged final metrics snapshot.
    """

    def __init__(self, config: ClusterConfig) -> None:
        self.cluster = ClusterServer(config)
        self._ready = threading.Event()
        self._final: Optional[Dict[str, Any]] = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._main, daemon=True)

    @property
    def port(self) -> int:
        port = self.cluster.port
        assert port is not None, "cluster not started"
        return port

    def _main(self) -> None:
        async def body() -> None:
            await self.cluster.start()
            self._ready.set()
            self._final = await self.cluster.run(
                install_signals=False, dump_metrics=False
            )

        try:
            asyncio.run(body())
        except BaseException as exc:  # surfaced to the joining thread
            self._error = exc
            self._ready.set()

    def start(self, timeout: float = 60.0) -> "ClusterThread":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("cluster failed to start in time")
        if self._error is not None:
            raise RuntimeError(f"cluster failed to start: {self._error!r}")
        return self

    def stop(self, timeout: float = 60.0) -> Dict[str, Any]:
        self.cluster.lifecycle.request_shutdown()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("cluster did not drain in time")
        if self._error is not None:
            raise RuntimeError(f"cluster crashed: {self._error!r}")
        assert self._final is not None
        return self._final

    def __enter__(self) -> "ClusterThread":
        return self.start()

    def __exit__(self, *_exc: Any) -> None:
        if self._thread.is_alive():
            self.stop()
