"""repro.serve: the diff service on the network.

The paper's setting is change detection for *autonomous* data sources —
snapshots arrive from elsewhere, deltas are computed centrally (§1). This
package is that boundary: a stdlib-only asyncio HTTP/1.1 JSON service
wrapping :class:`repro.service.DiffEngine`, with explicit overload
behavior (admission control, backpressure, deadlines), graceful drain on
SIGTERM, and a blocking client that retries transient failures with
capped jittered backoff.

Quickstart::

    from repro.serve import ServeConfig, ServerThread, DiffServiceClient

    with ServerThread(ServeConfig(port=0, workers=2)) as handle:
        client = DiffServiceClient(port=handle.port)
        out = client.diff(old_tree, new_tree)
        print(out["operations"], out["source"])
    # leaving the block drains in-flight work and stops the server

From the shell: ``repro-diff serve --port 8765`` (SIGTERM drains and
prints a final deterministic ``METRICS {json}`` line).

Scaling out: ``repro-diff serve --workers 4`` forks four single-process
workers behind a cache-affinity consistent-hash router with failover and
rolling restarts — see :mod:`repro.serve.cluster`.
"""

from .admission import AdmissionController, Deadline, Decision, RateLimiter, TokenBucket
from .app import DiffServer, ServeConfig, ServerThread, run_server
from .client import DiffServiceClient, ServiceError
from .cluster import ClusterConfig, ClusterServer, ClusterThread, run_cluster
from .lifecycle import Lifecycle, dump_final_metrics
from .protocol import PROTOCOL, HttpError, job_result_to_dict
from .router import HashRing, Router, affinity_key
from .supervisor import Supervisor, WorkerHandle, WorkerStartupError

__all__ = [
    "PROTOCOL",
    "AdmissionController",
    "ClusterConfig",
    "ClusterServer",
    "ClusterThread",
    "Deadline",
    "Decision",
    "DiffServer",
    "DiffServiceClient",
    "HashRing",
    "HttpError",
    "Lifecycle",
    "RateLimiter",
    "Router",
    "ServeConfig",
    "ServerThread",
    "ServiceError",
    "Supervisor",
    "TokenBucket",
    "WorkerHandle",
    "WorkerStartupError",
    "affinity_key",
    "dump_final_metrics",
    "job_result_to_dict",
    "run_cluster",
    "run_server",
]
