"""Graceful shutdown: stop accepting, flush in-flight work, dump metrics.

The drain sequence on SIGTERM/SIGINT (or a programmatic
:meth:`Lifecycle.request_shutdown`):

1. flip to *draining* — ``/healthz`` starts reporting it and every new
   compute request is refused with 503 + ``Retry-After`` so load
   balancers and retrying clients move on immediately;
2. close the listening socket (no new connections);
3. wait for the admission controller's in-flight count to reach zero,
   bounded by ``drain_timeout`` seconds (jobs still running after that
   are abandoned to process teardown — they are compute-only and hold no
   external resources);
4. shut the engine's worker pools down and emit one final deterministic
   ``METRICS {json}`` line so the last scrape is never lost.

The class is asyncio-native (the waiters run on the server's loop) but
exposes thread-safe entry points — ``request_shutdown`` may be called
from a signal handler or from another thread (tests, benchmarks).
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from typing import Any, Callable, Dict, Optional, TextIO

#: Signals that trigger a graceful drain when handlers are installed.
DRAIN_SIGNALS = (signal.SIGTERM, signal.SIGINT)


class Lifecycle:
    """Drain orchestration shared by the app, the CLI, and the tests.

    ``clock`` (a :class:`repro.simtest.clock.Clock`) is optional: when
    injected, the drain deadline and poll waits run on it instead of the
    event loop's wall clock, so the simulation harness can drain a server
    in virtual time. ``None`` (production) keeps the loop clock.
    """

    def __init__(self, drain_timeout: float = 30.0, clock: Optional[Any] = None) -> None:
        self.drain_timeout = drain_timeout
        self.clock = clock
        self._shutdown_event: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.draining = False
        self.drained_clean: Optional[bool] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind(self, loop: asyncio.AbstractEventLoop) -> None:
        """Attach to the serving loop (called once, from that loop)."""
        self._loop = loop
        self._shutdown_event = asyncio.Event()

    def install_signal_handlers(self) -> bool:
        """Route SIGTERM/SIGINT into :meth:`request_shutdown`.

        Returns False where the platform lacks loop signal handlers
        (e.g. Windows); the caller may fall back to ``signal.signal``.
        """
        assert self._loop is not None, "bind() must run first"
        try:
            for signum in DRAIN_SIGNALS:
                self._loop.add_signal_handler(signum, self.request_shutdown)
        except (NotImplementedError, RuntimeError):
            return False
        return True

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def request_shutdown(self) -> None:
        """Flip draining and wake the serve loop; safe from any thread."""
        self.draining = True
        loop, event = self._loop, self._shutdown_event
        if loop is None or event is None:
            return
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is loop:
            event.set()
        else:
            loop.call_soon_threadsafe(event.set)

    async def wait_for_shutdown(self) -> None:
        assert self._shutdown_event is not None, "bind() must run first"
        await self._shutdown_event.wait()

    async def drain(
        self,
        server: Optional[asyncio.AbstractServer],
        in_flight: Callable[[], int],
        poll_s: float = 0.02,
    ) -> bool:
        """Run steps 2-3 of the sequence; True when all work flushed."""
        self.draining = True
        if server is not None:
            server.close()
            await server.wait_closed()
        deadline = (
            self._now() + self.drain_timeout
            if self.drain_timeout is not None
            else None
        )
        while in_flight() > 0:
            if deadline is not None and self._now() >= deadline:
                self.drained_clean = False
                return False
            await self._poll_sleep(poll_s)
        self.drained_clean = True
        return True

    def _now(self) -> float:
        if self.clock is not None:
            return self.clock.monotonic()
        return asyncio.get_running_loop().time()

    async def _poll_sleep(self, poll_s: float) -> None:
        if self.clock is None:
            await asyncio.sleep(poll_s)
        else:
            # Virtual wait: advance the injected clock, then yield once so
            # other coroutines on the loop can observe the new time.
            self.clock.sleep(poll_s)
            await asyncio.sleep(0)


def dump_final_metrics(
    snapshot: Dict[str, Any], stream: Optional[TextIO] = None
) -> str:
    """Emit the final ``METRICS {json}`` line (deterministic key order)."""
    line = "METRICS " + json.dumps(snapshot, sort_keys=True)
    out = stream if stream is not None else sys.stdout
    print(line, file=out, flush=True)
    return line


def dump_final_traces(jsonl: str, path: str) -> int:
    """Step 4b of the drain: flush the tracer's span buffer to *path*.

    Returns the number of span lines written. An empty buffer still
    truncates the file, so a re-used export path never shows stale spans
    from a previous run.
    """
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(jsonl)
    return sum(1 for line in jsonl.splitlines() if line.strip())
