"""Cache-affinity routing for the cluster: consistent hashing + HTTP proxy.

The cluster's front process accepts every client connection and forwards
compute requests to one of N single-process :mod:`repro.serve.app` workers.
Which worker is not arbitrary: the router consistent-hashes a per-request
**affinity key** onto a ring of virtual nodes, so the same document pair
always lands on the same worker and its digest-keyed
:class:`~repro.service.cache.ScriptCache` entry stays warm *shard-locally*.
Without affinity a warm entry would exist on one worker while requests
round-robin across all of them, and the warm≥cold speedup gate would decay
by roughly the worker count.

Affinity key, in precedence order:

1. the ``X-Affinity-Key`` request header (set by
   :class:`~repro.serve.client.DiffServiceClient` from the job id);
2. the ``id`` field of the JSON body, when present;
3. the SHA-1 of the raw body bytes — identical snapshot pairs hash
   identically, so even anonymous repeat traffic stays cache-affine.

Failover: every compute endpoint is a pure function of its body, so a
request whose backend dies mid-flight (connection refused, reset, or a
truncated response) is **replayed** on the next distinct worker along the
ring. The ring handles re-ranging naturally — removing a worker reassigns
only that worker's arc to its ring successors, everything else keeps its
shard (and its warm cache).
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from bisect import bisect_left, insort
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from ..obs.export import merge_spans
from ..obs.trace import (
    SPAN_ID_HEADER,
    TRACE_ID_HEADER,
    Tracer,
    extract_trace_context,
    is_valid_trace_id,
)
from ..simtest.clock import SYSTEM_CLOCK
from .lifecycle import Lifecycle
from .protocol import (
    PROTOCOL,
    STATUS_PHRASES,
    HttpError,
    dumps,
    fetch_json,
    parse_request_line,
    parse_status_line,
    read_content_length_body,
    read_headers,
)

#: Request headers forwarded verbatim to the backend worker.
FORWARDED_HEADERS = ("x-client-id", "x-deadline-ms", "x-affinity-key", "accept")


def hash_key(key: str) -> int:
    """Stable 64-bit ring position of *key* (SHA-1 prefix, not ``hash()``)."""
    return int.from_bytes(hashlib.sha1(key.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring over worker ids with virtual nodes.

    Each member contributes ``replicas`` points so arcs stay balanced; a
    key is assigned to the owner of the first point at or clockwise after
    the key's own hash. Adding or removing one member only moves the keys
    of that member's arcs — the *minimal movement* property the failover
    and rolling-restart paths rely on to keep caches warm elsewhere.
    """

    def __init__(self, replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._points: List[Tuple[int, str]] = []  # sorted (hash, worker_id)
        self._members: set = set()

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, worker_id: str) -> bool:
        return worker_id in self._members

    def members(self) -> List[str]:
        return sorted(self._members)

    def add(self, worker_id: str) -> None:
        """Insert a member's virtual nodes (idempotent)."""
        if worker_id in self._members:
            return
        self._members.add(worker_id)
        for replica in range(self.replicas):
            insort(self._points, (hash_key(f"{worker_id}#{replica}"), worker_id))

    def remove(self, worker_id: str) -> None:
        """Drop a member; its arcs fall to the ring successors (idempotent)."""
        if worker_id not in self._members:
            return
        self._members.discard(worker_id)
        self._points = [point for point in self._points if point[1] != worker_id]

    def assign(self, key: str) -> Optional[str]:
        """The owning worker for *key*, or None when the ring is empty."""
        chain = self.assign_chain(key, count=1)
        return chain[0] if chain else None

    def assign_chain(self, key: str, count: Optional[int] = None) -> List[str]:
        """Up to *count* distinct workers in ring order starting at *key*.

        The first entry is :meth:`assign`'s answer; the rest are the
        deterministic failover order — exactly the workers that would
        inherit the key if earlier entries left the ring.
        """
        if not self._points:
            return []
        if count is None:
            count = len(self._members)
        position = bisect_left(self._points, (hash_key(key), ""))
        total = len(self._points)
        out: List[str] = []
        seen: set = set()
        for step in range(total):
            worker_id = self._points[(position + step) % total][1]
            if worker_id not in seen:
                seen.add(worker_id)
                out.append(worker_id)
                if len(out) >= count:
                    break
        return out


def affinity_key(path: str, headers: Dict[str, str], body: bytes) -> str:
    """The routing key of one request (header > body id > body hash)."""
    explicit = headers.get("x-affinity-key")
    if explicit:
        return explicit
    if body and b'"id"' in body:
        try:
            data = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            data = None
        if isinstance(data, dict) and "id" in data:
            return str(data["id"])
    return hashlib.sha1(body if body else path.encode("utf-8")).hexdigest()


class Router:
    """The cluster's front listener: parse, route, proxy, fail over.

    GET ``/healthz`` and ``/metrics`` are answered by the router itself
    (cluster topology / merged per-worker snapshots via the injected
    callbacks); everything else is proxied to the affinity-assigned worker
    with replay-on-failure across the ring chain.
    """

    def __init__(
        self,
        ring: HashRing,
        ports: Dict[str, int],
        lifecycle: Lifecycle,
        health_payload: Callable[[], Dict[str, Any]],
        merge_metrics: Callable[[Dict[str, Dict[str, Any]]], Dict[str, Any]],
        on_backend_failure: Optional[Callable[[str], None]] = None,
        backend_host: str = "127.0.0.1",
        max_body_bytes: int = 1 << 20,
        connect_timeout: float = 5.0,
        proxy_timeout: float = 120.0,
        clock: Optional[Any] = None,
        faults: Optional[Any] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.ring = ring
        self.ports = ports
        self.lifecycle = lifecycle
        self.health_payload = health_payload
        self.merge_metrics = merge_metrics
        self.on_backend_failure = on_backend_failure
        self.backend_host = backend_host
        self.max_body_bytes = max_body_bytes
        self.connect_timeout = connect_timeout
        self.proxy_timeout = proxy_timeout
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        #: Optional armed FaultInjector for the proxy leg (None = no-op).
        self.faults = faults
        # Propagate-only by default: the router never originates traces,
        # it records one ``router.proxy`` span per forwarding attempt for
        # requests that arrive with a valid X-Trace-Id.
        self.tracer = tracer if tracer is not None else Tracer(clock=self.clock)
        #: Loop-thread-only counters surfaced under ``cluster.router``.
        self.counters: Dict[str, int] = {}
        self.active_requests = 0
        self.server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None
        self._conn_tasks: set = set()
        self._started = self.clock.monotonic()

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    # ------------------------------------------------------------------
    # Serve loop (same connection discipline as app.DiffServer)
    # ------------------------------------------------------------------
    async def start(self, host: str, port: int) -> None:
        self.server = await asyncio.start_server(self._handle_connection, host, port)
        sockets = self.server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def close_connections(self) -> None:
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                keep_alive = await self._handle_one_request(reader, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass  # client went away mid-request
        except asyncio.CancelledError:
            pass  # post-drain cleanup of idle keep-alive sockets
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_one_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        request_line = await reader.readline()
        if not request_line.strip():
            return False
        self._count("requests")
        self.active_requests += 1
        try:
            return await self._process(reader, writer, request_line)
        finally:
            self.active_requests -= 1

    async def _process(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        request_line: bytes,
    ) -> bool:
        keep_alive = True
        raw_response: Optional[bytes] = None
        extra: Dict[str, str] = {}
        try:
            method, path, version = parse_request_line(request_line)
            headers = await read_headers(reader)
            wants_close = headers.get("connection", "").lower() == "close"
            keep_alive = version == "HTTP/1.1" and not wants_close
            body = b""
            if method in ("POST", "PUT"):
                body = await read_content_length_body(
                    reader, headers, self.max_body_bytes
                )
            status, payload, extra = await self._dispatch(method, path, headers, body)
            if isinstance(payload, bytes):
                raw_response = payload
            else:
                raw_response = dumps(payload)
        except HttpError as exc:
            status = exc.status
            raw_response = dumps(exc.body())
            if exc.retry_after is not None:
                extra["Retry-After"] = str(max(1, int(exc.retry_after + 0.999)))
            if exc.status in (400, 411, 413, 501):
                keep_alive = False  # request framing is unrecoverable
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # never let a router bug kill the front
            self._count("internal_errors")
            status = 500
            raw_response = dumps(
                {
                    "error": "internal",
                    "message": f"{type(exc).__name__}: {exc}",
                    "protocol": PROTOCOL,
                }
            )
        if self.lifecycle.draining:
            keep_alive = False
        self._count(f"responses_{status // 100}xx")
        phrase = STATUS_PHRASES.get(status, "Unknown")
        head = [
            f"HTTP/1.1 {status} {phrase}",
            f"Server: {PROTOCOL}",
            "Content-Type: application/json",
            f"Content-Length: {len(raw_response)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        head.extend(f"{name}: {value}" for name, value in extra.items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + raw_response)
        await writer.drain()
        return keep_alive

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Any, Dict[str, str]]:
        if path == "/healthz":
            if method != "GET":
                raise HttpError(405, "method_not_allowed", f"{path} only accepts GET")
            return 200, self.health_payload(), {}
        if path == "/metrics":
            if method != "GET":
                raise HttpError(405, "method_not_allowed", f"{path} only accepts GET")
            return 200, await self.aggregate_metrics(), {}
        if path.startswith("/v1/trace/"):
            if method != "GET":
                raise HttpError(405, "method_not_allowed", f"{path} only accepts GET")
            return 200, await self.aggregate_trace(path[len("/v1/trace/"):]), {}
        if self.lifecycle.draining:
            self._count("rejected_draining")
            raise HttpError(
                503, "draining", "cluster is draining; retry elsewhere", retry_after=1.0
            )
        return await self._proxy(method, path, headers, body)

    async def _proxy(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, bytes, Dict[str, str]]:
        key = affinity_key(path, headers, body)
        chain = self.ring.assign_chain(key)
        last_error = "no live workers"
        ctx = extract_trace_context(headers)
        for position, worker_id in enumerate(chain):
            port = self.ports.get(worker_id)
            if port is None:
                continue
            span = None
            trace = None
            if ctx is not None:
                # One span per forwarding attempt: a replayed request shows
                # its whole failover chain. The worker's parent becomes this
                # proxy span, while the trace id passes through verbatim.
                span = self.tracer.start_span(
                    "router.proxy",
                    kind="router",
                    trace_id=ctx[0],
                    parent_id=ctx[1],
                    meta={"worker": worker_id, "position": position},
                )
                trace = (ctx[0], span.span_id)
            try:
                status, resp_body = await self._forward(
                    port, method, path, headers, body,
                    worker_id=worker_id, trace=trace,
                )
            except (OSError, asyncio.IncompleteReadError, asyncio.TimeoutError) as exc:
                # The backend died under the request. Compute endpoints are
                # pure functions of the body, so replaying on the next ring
                # successor is safe — the client never sees the crash.
                self._count("proxy_failovers")
                last_error = f"{worker_id}: {type(exc).__name__}: {exc}"
                if span is not None:
                    span.annotate(error=type(exc).__name__).close("failover")
                if self.on_backend_failure is not None:
                    self.on_backend_failure(worker_id)
                continue
            self._count("proxied")
            if position > 0:
                self._count("proxied_rerouted")
            if span is not None:
                span.annotate(status=status).close("ok")
            return status, resp_body, {"X-Worker-Id": worker_id}
        self._count("rejected_no_backend")
        raise HttpError(
            503,
            "no_backend",
            f"no worker could serve the request ({last_error})",
            retry_after=0.5,
        )

    async def _forward(
        self,
        port: int,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
        worker_id: Optional[str] = None,
        trace: Optional[Tuple[str, str]] = None,
    ) -> Tuple[int, bytes]:
        """One fully-framed request/response exchange with a worker."""
        if self.faults is not None:
            # Each injected failure surfaces as exactly the exception class
            # the real transport would raise, so _proxy's failover handling
            # is the code under test, not a shortcut around it.
            if self.faults.fire("conn_refused", target=worker_id):
                raise ConnectionRefusedError(
                    111, f"injected conn_refused to {worker_id}"
                )
            fault = self.faults.fire("slow_response", target=worker_id)
            if fault is not None:
                await asyncio.sleep(min(fault.magnitude, self.proxy_timeout))
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.backend_host, port), self.connect_timeout
        )
        try:
            if self.faults is not None:
                if self.faults.fire("conn_reset_mid_body", target=worker_id):
                    raise asyncio.IncompleteReadError(b"", None)
            head = [
                f"{method} {path} HTTP/1.1",
                f"Host: {self.backend_host}:{port}",
                "Connection: close",
                "Content-Type: application/json",
                f"Content-Length: {len(body)}",
            ]
            for name in FORWARDED_HEADERS:
                if name in headers:
                    head.append(f"{name}: {headers[name]}")
            if trace is not None:
                # The trace id travels verbatim; the parent span becomes
                # this proxy leg so the worker hangs beneath it.
                head.append(f"{TRACE_ID_HEADER}: {trace[0]}")
                head.append(f"{SPAN_ID_HEADER}: {trace[1]}")
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
            await writer.drain()
            status_line = await asyncio.wait_for(reader.readline(), self.proxy_timeout)
            if not status_line:
                raise asyncio.IncompleteReadError(b"", None)
            status = parse_status_line(status_line)
            resp_headers = await asyncio.wait_for(
                read_headers(reader), self.proxy_timeout
            )
            length = int(resp_headers.get("content-length", "0"))
            resp_body = await asyncio.wait_for(
                reader.readexactly(length), self.proxy_timeout
            )
            return status, resp_body
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    async def aggregate_metrics(self) -> Dict[str, Any]:
        """Fan ``GET /metrics`` out to every live worker and merge."""
        live = [(wid, port) for wid, port in sorted(self.ports.items())]
        fetches: List[Awaitable] = [
            fetch_json(self.backend_host, port, "/metrics", timeout=self.connect_timeout)
            for _, port in live
        ]
        results = await asyncio.gather(*fetches, return_exceptions=True)
        snapshots: Dict[str, Dict[str, Any]] = {}
        for (worker_id, _), result in zip(live, results):
            if isinstance(result, BaseException):
                continue
            status, decoded = result
            if status == 200:
                snapshots[worker_id] = decoded
        merged = self.merge_metrics(snapshots)
        merged["cluster"] = self.stats()
        merged["protocol"] = PROTOCOL
        return merged

    async def aggregate_trace(self, trace_id: str) -> Dict[str, Any]:
        """Merge one trace's spans across every shard plus the router's own.

        Workers only know their slice of a trace; the router fans
        ``GET /v1/trace/<id>`` out to all of them and merges the slices
        with its proxy spans into one deduplicated, stably-ordered list.
        """
        if not is_valid_trace_id(trace_id):
            raise HttpError(400, "bad_trace_id", f"not a trace id: {trace_id!r}")
        trace_id = trace_id.lower()
        live = [(wid, port) for wid, port in sorted(self.ports.items())]
        fetches: List[Awaitable] = [
            fetch_json(
                self.backend_host,
                port,
                f"/v1/trace/{trace_id}",
                timeout=self.connect_timeout,
            )
            for _, port in live
        ]
        results = await asyncio.gather(*fetches, return_exceptions=True)
        span_lists: List[List[Dict[str, Any]]] = [self.tracer.trace(trace_id)]
        workers: List[str] = []
        open_spans = self.tracer.open_count(trace_id)
        for (worker_id, _), result in zip(live, results):
            if isinstance(result, BaseException):
                continue
            status, decoded = result
            if status == 200 and isinstance(decoded.get("spans"), list):
                span_lists.append(decoded["spans"])
                workers.append(worker_id)
                open_spans += int(decoded.get("open_spans", 0) or 0)
        merged = merge_spans(*span_lists)
        if not merged and open_spans == 0:
            raise HttpError(404, "unknown_trace", f"no spans for trace {trace_id}")
        return {
            "trace_id": trace_id,
            "spans": merged,
            "open_spans": open_spans,
            "complete": open_spans == 0,
            "workers": workers,
            "protocol": PROTOCOL,
        }

    def stats(self) -> Dict[str, Any]:
        return {
            "router": dict(sorted(self.counters.items())),
            "live_workers": self.ring.members(),
            "draining": self.lifecycle.draining,
            "uptime_s": round(self.clock.monotonic() - self._started, 3),
            "trace": self.tracer.stats(),
        }
