"""A blocking stdlib client for the diff service, with disciplined retries.

Transient failures — 429 (admission refused), 5xx, dropped connections —
are retried with **capped exponential backoff and full jitter**: attempt
``k`` sleeps ``uniform(0, min(cap, base * 2**k))`` seconds, so a herd of
clients hammered off a restarting server does not re-synchronize into
thundering waves. When the server supplies its own estimate (the
``Retry-After`` header / ``retry_after_s`` body field the admission layer
emits), the client honors it as a *floor*: it never retries sooner than
the server asked, and still adds its jittered share on top of nothing.

Hard 4xx failures (bad request, not found, too large) are never retried —
resending a malformed body cannot fix it — and surface as
:class:`ServiceError` carrying the decoded error payload.

The clock and randomness are injectable (``clock=``, ``sleep=``, ``rng=``)
so retry schedules are unit-testable in microseconds, and the transport
accepts an optional :class:`~repro.simtest.faults.FaultInjector`
(``faults=``) that can refuse connects, reset responses mid-body, or slow
them down on a seeded schedule — a no-op unless armed.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..core.tree import Tree
from ..obs.trace import Tracer, inject_trace_headers
from ..simtest.clock import SYSTEM_CLOCK, Clock
from .protocol import PROTOCOL, RETRYABLE_STATUSES, tree_to_payload

#: Wire form of a snapshot accepted by the helpers below.
TreeLike = Union[Tree, Dict[str, Any], str]


class ServiceError(Exception):
    """A definitive (non-retryable or retries-exhausted) request failure."""

    def __init__(self, status: int, payload: Dict[str, Any], attempts: int) -> None:
        reason = payload.get("error", "error")
        message = payload.get("message", "")
        super().__init__(
            f"HTTP {status} ({reason}) after {attempts} attempt(s): {message}"
        )
        self.status = status
        self.payload = payload
        self.attempts = attempts


class DiffServiceClient:
    """Blocking HTTP client for :mod:`repro.serve.app`.

    Parameters
    ----------
    host, port:
        Where the service listens.
    retries:
        Retry budget for *transient* failures (429/5xx/connection drops);
        the first attempt is not a retry, so up to ``retries + 1``
        requests go out.
    backoff_base, backoff_cap:
        Full-jitter schedule: attempt ``k`` waits
        ``uniform(0, min(backoff_cap, backoff_base * 2**k))`` seconds.
    connect_retries:
        A *separate* transparent budget for connection-refused failures.
        A refused TCP connect is the signature of a server (or cluster
        worker) mid-restart: nothing was ever sent, so retrying is always
        safe, and the outage is usually sub-second. These attempts sleep
        the base-jitter delay without escalating the exponential schedule
        and do not consume the main ``retries`` budget.
    max_retry_after:
        Upper bound honored for server-supplied ``Retry-After`` hints
        (a misbehaving server cannot park the client for an hour).
    timeout:
        Socket timeout per attempt, seconds.
    client_id:
        Sent as ``X-Client-Id`` so the server's per-client rate limiter
        sees a stable identity across reconnects.
    clock, sleep, rng:
        Injection points for tests and the simulation harness. ``clock``
        (a :class:`repro.simtest.clock.Clock`) supplies ``monotonic`` and
        the default ``sleep``; passing ``sleep=`` separately overrides
        just the backoff waits. Defaults: the real system clock and a
        private ``random.Random()``. Every wait and every jitter draw
        goes through these — there are no module-level ``time.``/
        ``random.`` calls left on the request path, so a seeded ``rng``
        plus a ``SimClock`` makes retry schedules fully reproducible.
    faults:
        Optional armed :class:`~repro.simtest.faults.FaultInjector`;
        ``None`` (production) short-circuits to zero overhead.
    trace_fraction, tracer:
        Distributed tracing. ``trace_fraction`` samples that share of
        ``request()`` calls deterministically; each sampled call mints a
        trace id, opens a ``client.request`` root span plus one
        ``client.attempt`` span per try, and propagates
        ``X-Trace-Id``/``X-Span-Id`` so the router and workers join the
        same trace. Pass ``tracer=`` to share a :class:`~repro.obs.Tracer`
        (the simulation harness does); otherwise one is built from the
        client's clock and rng, so seeded runs mint identical ids. The
        id of the last sampled trace lands in ``last_trace_id``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        retries: int = 4,
        backoff_base: float = 0.1,
        backoff_cap: float = 2.0,
        connect_retries: int = 8,
        max_retry_after: float = 30.0,
        timeout: float = 30.0,
        client_id: Optional[str] = None,
        clock: Optional[Clock] = None,
        sleep: Optional[Callable[[float], None]] = None,
        rng: Optional[random.Random] = None,
        faults: Optional[Any] = None,
        trace_fraction: float = 0.0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if connect_retries < 0:
            raise ValueError(f"connect_retries must be >= 0, got {connect_retries}")
        self.host = host
        self.port = port
        self.retries = retries
        self.connect_retries = connect_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.max_retry_after = max_retry_after
        self.timeout = timeout
        self.client_id = client_id
        self._clock = clock if clock is not None else SYSTEM_CLOCK
        self._sleep = sleep if sleep is not None else self._clock.sleep
        self._rng = rng if rng is not None else random.Random()
        self._faults = faults
        if tracer is not None:
            self.tracer: Optional[Tracer] = tracer
        elif trace_fraction > 0.0:
            # A derived rng keeps id minting from perturbing jitter draws.
            self.tracer = Tracer(
                fraction=trace_fraction,
                clock=self._clock,
                rng=random.Random(self._rng.getrandbits(64)),
            )
        else:
            self.tracer = None
        #: Trace id of the most recent sampled request() call, if any.
        self.last_trace_id: Optional[str] = None
        self._conn: Optional[http.client.HTTPConnection] = None
        #: Backoff delays actually slept, newest last (observability/tests).
        self.sleeps: List[float] = []

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "DiffServiceClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def request_once(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        trace: Optional[Tuple[str, str]] = None,
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """One attempt, no retries: ``(status, decoded body, headers)``.

        Connection-level failures propagate as :class:`OSError` /
        ``http.client`` exceptions; the load generator in
        ``benchmarks/bench_serve.py`` uses this to observe raw 429s.
        """
        target = f"{self.host}:{self.port}"
        if self._faults is not None:
            if self._faults.fire("conn_refused", target=target) is not None:
                raise ConnectionRefusedError(
                    111, f"injected conn_refused to {target}"
                )
        conn = self._connection()
        headers = {"Content-Type": "application/json", "Accept": "application/json"}
        if self.client_id is not None:
            headers["X-Client-Id"] = self.client_id
        if trace is not None:
            inject_trace_headers(headers, trace[0], trace[1])
        body = None
        if payload is not None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
        try:
            conn.request(method, path, body=body, headers=headers)
            if self._faults is not None:
                # The request went out: a reset here means the server may
                # have processed it, exactly the mid-body failure mode.
                if self._faults.fire("conn_reset_mid_body", target=target):
                    raise ConnectionResetError(
                        104, f"injected conn_reset_mid_body from {target}"
                    )
            response = conn.getresponse()
            raw = response.read()
        except Exception:
            self.close()  # a half-dead keep-alive socket must not be reused
            raise
        if self._faults is not None:
            fault = self._faults.fire("slow_response", target=target)
            if fault is not None:
                self._sleep(fault.magnitude)
        if response.headers.get("Connection", "").lower() == "close":
            self.close()
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            decoded = {"error": "bad_response", "message": raw[:200].decode("latin-1")}
        if not isinstance(decoded, dict):
            decoded = {"value": decoded}
        return response.status, decoded, dict(response.headers)

    # ------------------------------------------------------------------
    # Retry policy
    # ------------------------------------------------------------------
    def _backoff(self, attempt: int, retry_after: float) -> float:
        jittered = self._rng.uniform(
            0.0, min(self.backoff_cap, self.backoff_base * (2.0 ** attempt))
        )
        floor = min(max(retry_after, 0.0), self.max_retry_after)
        return max(floor, jittered)

    @staticmethod
    def _retry_after_hint(payload: Dict[str, Any], headers: Dict[str, str]) -> float:
        value = payload.get("retry_after_s")
        if value is None:
            value = headers.get("Retry-After", headers.get("retry-after"))
        try:
            return float(value) if value is not None else 0.0
        except (TypeError, ValueError):
            return 0.0

    def request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """Send with the retry policy; return the decoded 2xx body.

        Connection-refused failures (a server or cluster worker mid-restart)
        draw on the separate ``connect_retries`` budget with a flat jittered
        delay; everything else transient follows the capped exponential
        schedule against the main ``retries`` budget.
        """
        last_status, last_payload = 0, {"error": "unreachable", "message": ""}
        attempt = 0
        refused_left = self.connect_retries
        tries = 0
        trace_id = self.tracer.maybe_trace() if self.tracer is not None else None
        root = None
        if trace_id is not None:
            root = self.tracer.start_span(
                "client.request",
                kind="client",
                trace_id=trace_id,
                meta={"method": method, "path": path},
            )
        self.last_trace_id = trace_id
        while True:
            retry_after = 0.0
            refused = False
            tries += 1
            attempt_span = None
            trace_ctx = None
            if root is not None:
                attempt_span = root.child("client.attempt", kind="client")
                attempt_span.annotate(attempt=tries)
                trace_ctx = (trace_id, attempt_span.span_id)
            try:
                # Only pass trace= when a span is actually open: subclasses
                # and test doubles that override request_once with the plain
                # signature keep working as long as they don't enable tracing.
                if trace_ctx is not None:
                    status, decoded, headers = self.request_once(
                        method, path, payload, trace=trace_ctx
                    )
                else:
                    status, decoded, headers = self.request_once(method, path, payload)
            except ConnectionRefusedError as exc:
                refused = True
                last_status = 0
                last_payload = {
                    "error": "connection",
                    "message": f"{type(exc).__name__}: {exc}",
                }
                if attempt_span is not None:
                    attempt_span.annotate(error="conn_refused").close("error")
            except (OSError, socket.timeout, http.client.HTTPException) as exc:
                last_status = 0
                last_payload = {
                    "error": "connection",
                    "message": f"{type(exc).__name__}: {exc}",
                }
                if attempt_span is not None:
                    attempt_span.annotate(error=type(exc).__name__).close("error")
            else:
                if attempt_span is not None:
                    attempt_span.annotate(status=status)
                    attempt_span.close("ok" if status < 400 else "error")
                if status < 400:
                    if root is not None:
                        root.annotate(status=status, tries=tries).close("ok")
                    return decoded
                last_status, last_payload = status, decoded
                if status not in RETRYABLE_STATUSES:
                    if root is not None:
                        root.annotate(status=status, tries=tries).close("error")
                    raise ServiceError(status, decoded, tries)
                retry_after = self._retry_after_hint(decoded, headers)
            if refused and refused_left > 0:
                # Restart window: flat base-jitter sleep, no escalation.
                refused_left -= 1
                delay = self._backoff(0, retry_after)
                self.sleeps.append(delay)
                self._sleep(delay)
                continue
            if attempt < self.retries:
                delay = self._backoff(attempt, retry_after)
                self.sleeps.append(delay)
                self._sleep(delay)
                attempt += 1
                continue
            if root is not None:
                root.annotate(status=last_status, tries=tries).close("error")
            raise ServiceError(last_status, last_payload, tries)

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    @staticmethod
    def _wire_tree(tree: TreeLike) -> Union[Dict[str, Any], str, None]:
        return tree_to_payload(tree) if isinstance(tree, Tree) else tree

    def diff(
        self,
        old: TreeLike,
        new: TreeLike,
        deadline_ms: Optional[float] = None,
        include_script: bool = True,
        job_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "old": self._wire_tree(old),
            "new": self._wire_tree(new),
            "include_script": include_script,
        }
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if job_id is not None:
            payload["id"] = job_id
        return self.request("POST", "/v1/diff", payload)

    def batch(
        self,
        pairs: List[Tuple[TreeLike, TreeLike]],
        deadline_ms: Optional[float] = None,
        include_script: bool = True,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "pairs": [
                {"old": self._wire_tree(old), "new": self._wire_tree(new)}
                for old, new in pairs
            ],
            "include_script": include_script,
        }
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self.request("POST", "/v1/batch", payload)

    def verify(
        self, old: TreeLike, new: TreeLike, algorithm: str = "both"
    ) -> Dict[str, Any]:
        return self.request(
            "POST",
            "/v1/verify",
            {
                "old": self._wire_tree(old),
                "new": self._wire_tree(new),
                "algorithm": algorithm,
            },
        )

    def healthz(self) -> Dict[str, Any]:
        return self.request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self.request("GET", "/metrics")

    def wait_ready(self, timeout: float = 10.0, interval: float = 0.05) -> bool:
        """Poll ``/healthz`` until the server answers (startup races).

        Polls on the injected clock (not the injectable backoff ``sleep``),
        so a no-op test sleep cannot turn readiness polling into a busy
        spin, while a ``SimClock`` still makes it instant.
        """
        deadline = self._clock.monotonic() + timeout
        while self._clock.monotonic() < deadline:
            try:
                health = self.request_once("GET", "/healthz")[1]
                if health.get("protocol") == PROTOCOL:
                    return True
            except (OSError, http.client.HTTPException):
                pass
            self._clock.sleep(interval)
        return False
