"""Trace assembly, validation, JSONL export, and the tree pretty-printer.

These helpers operate on *span dicts* (the :meth:`SpanRecord.to_dict`
shape) rather than live records, so they work identically on spans
pulled from a tracer, fetched from ``/v1/trace/<id>``, merged across
shards, or loaded back from a JSONL export.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Slack for float comparisons on span boundaries (seconds).
_EPS = 1e-6


def _span_key(span: Dict[str, Any]) -> Tuple[float, str, str]:
    return (span.get("start", 0.0), span.get("trace", ""), span.get("span", ""))


def merge_spans(*span_lists: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Merge span dicts from several sources, deduped and stably ordered."""
    seen = set()
    merged: List[Dict[str, Any]] = []
    for spans in span_lists:
        for span in spans:
            key = (span.get("trace"), span.get("span"))
            if key in seen:
                continue
            seen.add(key)
            merged.append(span)
    merged.sort(key=_span_key)
    return merged


def build_span_tree(
    spans: Iterable[Dict[str, Any]],
) -> Tuple[List[Dict[str, Any]], Dict[str, List[Dict[str, Any]]]]:
    """Return ``(roots, children_by_span_id)`` for a set of span dicts.

    A root is any span whose parent is absent from the set — a partial
    trace (e.g. one shard's view) can legitimately have several.
    """
    spans = sorted(spans, key=_span_key)
    by_id = {span["span"]: span for span in spans}
    children: Dict[str, List[Dict[str, Any]]] = {}
    roots: List[Dict[str, Any]] = []
    for span in spans:
        parent = span.get("parent")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    return roots, children


def validate_trace(spans: List[Dict[str, Any]]) -> List[str]:
    """Structural checks on one trace; returns human-readable violations.

    Checked: unique span ids, every span closed with ``end >= start``,
    exactly one root, child intervals nested inside their parent, and the
    sum of stage-kind children bounded by the enclosing span.
    """
    violations: List[str] = []
    if not spans:
        return ["trace has no spans"]
    ids = [span.get("span") for span in spans]
    if len(set(ids)) != len(ids):
        violations.append("duplicate span ids")
    traces = {span.get("trace") for span in spans}
    if len(traces) != 1:
        violations.append(f"spans belong to {len(traces)} traces, expected 1")
    for span in spans:
        if span.get("end") is None:
            violations.append(f"span {span.get('span')} ({span.get('name')}) never closed")
        elif span["end"] + _EPS < span["start"]:
            violations.append(f"span {span.get('span')} ends before it starts")
    roots, children = build_span_tree(spans)
    if len(roots) != 1:
        names = [f"{r.get('name')}({r.get('span')})" for r in roots]
        violations.append(f"expected a single root, found {len(roots)}: {names}")
    by_id = {span["span"]: span for span in spans}
    for parent_id, kids in children.items():
        parent = by_id[parent_id]
        if parent.get("end") is None:
            continue
        stage_sum = 0.0
        for kid in kids:
            if kid.get("end") is None:
                continue
            if kid["start"] + _EPS < parent["start"] or kid["end"] > parent["end"] + _EPS:
                violations.append(
                    f"span {kid['span']} ({kid.get('name')}) "
                    f"[{kid['start']:.6f}, {kid['end']:.6f}] escapes parent "
                    f"{parent.get('name')} [{parent['start']:.6f}, {parent['end']:.6f}]"
                )
            if kid.get("kind") == "stage":
                stage_sum += kid["end"] - kid["start"]
        parent_wall = parent["end"] - parent["start"]
        if stage_sum > parent_wall + _EPS:
            violations.append(
                f"stage spans under {parent.get('name')} sum to {stage_sum:.6f}s "
                f"> enclosing {parent_wall:.6f}s"
            )
    return violations


def spans_to_jsonl(spans: Iterable[Dict[str, Any]]) -> str:
    """Serialize span dicts to deterministic sorted-keys JSONL."""
    ordered = sorted(spans, key=lambda s: (s.get("trace", ""),) + _span_key(s))
    return "".join(
        json.dumps(span, sort_keys=True, separators=(",", ":")) + "\n"
        for span in ordered
    )


def load_spans_jsonl(text: str) -> List[Dict[str, Any]]:
    """Parse spans back out of a JSONL export."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def _label(span: Dict[str, Any]) -> str:
    wall = span.get("wall_ms")
    status = span.get("status", "ok")
    parts = [span.get("name", "?")]
    if wall is not None:
        parts.append(f"{wall:.3f}ms")
    parts.append(status)
    meta = span.get("meta") or {}
    keys = ("attempt", "worker", "decision", "source", "position")
    notes = [f"{k}={meta[k]}" for k in keys if k in meta]
    if notes:
        parts.append("[" + " ".join(notes) + "]")
    return " ".join(str(p) for p in parts)


def render_span_tree(
    spans: List[Dict[str, Any]], trace_id: Optional[str] = None
) -> str:
    """ASCII tree of one trace, suitable for terminal output."""
    if trace_id is not None:
        spans = [s for s in spans if s.get("trace") == trace_id]
    if not spans:
        return "(no spans)"
    tid = spans[0].get("trace", "?")
    roots, children = build_span_tree(spans)
    total = max((s.get("end") or s["start"]) for s in spans) - min(
        s["start"] for s in spans
    )
    lines = [f"trace {tid} ({len(spans)} spans, {total * 1000.0:.3f}ms)"]

    def walk(span: Dict[str, Any], prefix: str, last: bool) -> None:
        branch = "`- " if last else "|- "
        lines.append(prefix + branch + _label(span))
        kids = children.get(span["span"], [])
        child_prefix = prefix + ("   " if last else "|  ")
        for i, kid in enumerate(kids):
            walk(kid, child_prefix, i == len(kids) - 1)

    for i, root in enumerate(roots):
        walk(root, "", i == len(roots) - 1)
    return "\n".join(lines)
