"""repro.obs — request-scoped distributed tracing for the serve stack.

A trace is a tree of spans keyed by a ``trace_id``.  Each layer of the
serving stack (client attempt, router proxy leg, worker admission,
engine, pipeline stage) opens a span, annotates it, and closes it; the
:class:`Tracer` records closed spans in a bounded ring buffer that can
be queried (``GET /v1/trace/<id>``), exported as sorted-keys JSONL, or
streamed to a callback (the simtest event log).

Everything is driven by an injectable :class:`repro.simtest.clock.Clock`
and an injectable ``random.Random`` so simulation scenarios produce
byte-identical trace trees per seed.
"""

from repro.obs.trace import (
    MAX_SPAN_ID_LEN,
    MAX_TRACE_ID_LEN,
    SPAN_ID_HEADER,
    TRACE_ID_HEADER,
    Span,
    SpanRecord,
    Tracer,
    extract_trace_context,
    inject_trace_headers,
    is_valid_span_id,
    is_valid_trace_id,
    synthesize_stage_spans,
)
from repro.obs.export import (
    build_span_tree,
    load_spans_jsonl,
    merge_spans,
    render_span_tree,
    spans_to_jsonl,
    validate_trace,
)

__all__ = [
    "MAX_SPAN_ID_LEN",
    "MAX_TRACE_ID_LEN",
    "SPAN_ID_HEADER",
    "TRACE_ID_HEADER",
    "Span",
    "SpanRecord",
    "Tracer",
    "build_span_tree",
    "extract_trace_context",
    "inject_trace_headers",
    "is_valid_span_id",
    "is_valid_trace_id",
    "load_spans_jsonl",
    "merge_spans",
    "render_span_tree",
    "spans_to_jsonl",
    "synthesize_stage_spans",
    "validate_trace",
]
