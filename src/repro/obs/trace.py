"""Span records, the bounded Tracer, and trace-context header handling.

Design notes
------------
* Identifiers are lowercase hex drawn from an injectable ``random.Random``
  (16 chars for a trace, 8 for a span) so a seeded run mints the same ids
  every time.  Header validation is deliberately forgiving: a malformed or
  oversized value means "no trace context", never an error response.
* The :class:`Tracer` is process-local and lock-protected.  Closed spans
  land in a ring buffer (``capacity`` newest survive); open spans are
  tracked separately so an incomplete trace is detectable.
* Sampling uses the same deterministic crossing rule as the engine's
  ``verify_fraction``: request ``n`` is sampled iff
  ``floor(n * f) > floor((n - 1) * f)``, which hits exactly ``f`` of
  requests with no RNG draw on the hot path.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field
from math import floor
from random import Random
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.simtest.clock import Clock, SYSTEM_CLOCK

TRACE_ID_HEADER = "X-Trace-Id"
SPAN_ID_HEADER = "X-Span-Id"

#: Hard caps on inbound header values; anything longer is ignored.
MAX_TRACE_ID_LEN = 64
MAX_SPAN_ID_LEN = 32

_HEX = frozenset("0123456789abcdef")


def _valid_hex_id(value: Any, max_len: int) -> bool:
    if not isinstance(value, str) or not value or len(value) > max_len:
        return False
    return all(ch in _HEX for ch in value.lower())


def is_valid_trace_id(value: Any) -> bool:
    """True if *value* is acceptable as an inbound trace id."""
    return _valid_hex_id(value, MAX_TRACE_ID_LEN)


def is_valid_span_id(value: Any) -> bool:
    """True if *value* is acceptable as an inbound parent-span id."""
    return _valid_hex_id(value, MAX_SPAN_ID_LEN)


def extract_trace_context(
    headers: Mapping[str, str],
) -> Optional[Tuple[str, Optional[str]]]:
    """Pull ``(trace_id, parent_span_id)`` out of lowercased headers.

    Returns ``None`` when there is no usable trace id.  A valid trace id
    with a malformed span id still yields a context (parent unknown) —
    dropping the whole trace because one hop mangled its span id would
    hide exactly the hop you want to see.
    """
    trace_id = headers.get(TRACE_ID_HEADER.lower())
    if not is_valid_trace_id(trace_id):
        return None
    span_id = headers.get(SPAN_ID_HEADER.lower())
    if not is_valid_span_id(span_id):
        span_id = None
    else:
        span_id = span_id.lower()
    return trace_id.lower(), span_id


def inject_trace_headers(
    headers: Dict[str, str], trace_id: str, span_id: Optional[str] = None
) -> Dict[str, str]:
    """Set the outbound trace headers on *headers* (mutates and returns it)."""
    headers[TRACE_ID_HEADER] = trace_id
    if span_id is not None:
        headers[SPAN_ID_HEADER] = span_id
    return headers


@dataclass
class SpanRecord:
    """One timed operation inside a trace."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    kind: str
    start: float
    seq: int
    end: Optional[float] = None
    status: str = "ok"
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def wall_ms(self) -> float:
        if self.end is None:
            return 0.0
        return (self.end - self.start) * 1000.0

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": round(self.start, 9),
            "end": round(self.end, 9) if self.end is not None else None,
            "wall_ms": round(self.wall_ms, 6),
            "status": self.status,
        }
        if self.meta:
            out["meta"] = dict(sorted(self.meta.items()))
        return out


class Span:
    """Handle for an open span; close explicitly or use as a context manager."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: SpanRecord):
        self._tracer = tracer
        self.record = record

    @property
    def trace_id(self) -> str:
        return self.record.trace_id

    @property
    def span_id(self) -> str:
        return self.record.span_id

    def annotate(self, **fields: Any) -> "Span":
        self.record.meta.update(fields)
        return self

    def child(self, name: str, kind: str = "internal") -> "Span":
        return self._tracer.start_span(
            name, kind=kind, trace_id=self.trace_id, parent_id=self.span_id
        )

    def close(self, status: str = "ok") -> SpanRecord:
        self._tracer._close(self.record, status)
        return self.record

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.record.closed:
            return
        self.close("error" if exc_type is not None else "ok")


class Tracer:
    """Bounded, clock-driven span recorder with deterministic sampling."""

    def __init__(
        self,
        fraction: float = 0.0,
        capacity: int = 2048,
        clock: Optional[Clock] = None,
        rng: Optional[Random] = None,
        on_close: Optional[Callable[[Dict[str, Any]], None]] = None,
    ):
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.fraction = min(1.0, max(0.0, float(fraction)))
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self.rng = rng if rng is not None else Random()
        self.on_close = on_close
        self._lock = threading.Lock()
        self._closed: deque = deque(maxlen=capacity)
        self._open: Dict[str, SpanRecord] = {}
        self._seq = 0
        self._sample_calls = 0
        self._traces_started = 0
        self._dropped = 0

    # -- ids and sampling ---------------------------------------------------
    def new_trace_id(self) -> str:
        with self._lock:
            return f"{self.rng.getrandbits(64):016x}"

    def new_span_id(self) -> str:
        with self._lock:
            return f"{self.rng.getrandbits(32):08x}"

    def maybe_trace(self) -> Optional[str]:
        """Sampling decision: a fresh trace id for sampled calls, else None."""
        with self._lock:
            self._sample_calls += 1
            n, f = self._sample_calls, self.fraction
            if floor(n * f) <= floor((n - 1) * f):
                return None
            self._traces_started += 1
            return f"{self.rng.getrandbits(64):016x}"

    # -- span lifecycle -----------------------------------------------------
    def start_span(
        self,
        name: str,
        kind: str = "internal",
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Span:
        with self._lock:
            self._seq += 1
            if trace_id is None:
                trace_id = f"{self.rng.getrandbits(64):016x}"
                self._traces_started += 1
            record = SpanRecord(
                trace_id=trace_id,
                span_id=f"{self.rng.getrandbits(32):08x}",
                parent_id=parent_id,
                name=name,
                kind=kind,
                start=self.clock.monotonic(),
                seq=self._seq,
                meta=dict(meta) if meta else {},
            )
            self._open[record.span_id] = record
        return Span(self, record)

    def record_closed(
        self,
        name: str,
        kind: str,
        trace_id: str,
        parent_id: Optional[str],
        start: float,
        end: float,
        status: str = "ok",
        meta: Optional[Dict[str, Any]] = None,
    ) -> SpanRecord:
        """Record an already-timed span (used for synthesized stage spans)."""
        with self._lock:
            self._seq += 1
            record = SpanRecord(
                trace_id=trace_id,
                span_id=f"{self.rng.getrandbits(32):08x}",
                parent_id=parent_id,
                name=name,
                kind=kind,
                start=start,
                seq=self._seq,
                end=end,
                status=status,
                meta=dict(meta) if meta else {},
            )
            self._append(record)
        self._notify(record)
        return record

    def _close(self, record: SpanRecord, status: str) -> None:
        with self._lock:
            if record.closed:
                return
            record.end = self.clock.monotonic()
            record.status = status
            self._open.pop(record.span_id, None)
            self._append(record)
        self._notify(record)

    def _append(self, record: SpanRecord) -> None:
        if self._closed.maxlen is not None and len(self._closed) == self._closed.maxlen:
            self._dropped += 1
        self._closed.append(record)

    def _notify(self, record: SpanRecord) -> None:
        if self.on_close is not None:
            self.on_close(record.to_dict())

    def abort_open(self, status: str = "lost") -> int:
        """Close every open span with *status* (worker death, shutdown)."""
        with self._lock:
            orphans = list(self._open.values())
            for record in orphans:
                record.end = self.clock.monotonic()
                record.status = status
                self._append(record)
            self._open.clear()
        for record in orphans:
            self._notify(record)
        return len(orphans)

    # -- queries ------------------------------------------------------------
    def trace(self, trace_id: str) -> List[Dict[str, Any]]:
        """Closed spans for *trace_id*, in deterministic (start, seq) order."""
        with self._lock:
            records = [r for r in self._closed if r.trace_id == trace_id]
        records.sort(key=lambda r: (r.start, r.seq))
        return [r.to_dict() for r in records]

    def open_count(self, trace_id: Optional[str] = None) -> int:
        with self._lock:
            if trace_id is None:
                return len(self._open)
            return sum(1 for r in self._open.values() if r.trace_id == trace_id)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "spans_recorded": len(self._closed) + self._dropped,
                "spans_dropped": self._dropped,
                "spans_open": len(self._open),
                "traces_started": self._traces_started,
            }

    def export_jsonl(self) -> str:
        """All buffered spans as sorted-keys JSONL (one span per line)."""
        with self._lock:
            records = sorted(self._closed, key=lambda r: (r.trace_id, r.start, r.seq))
        return "".join(
            json.dumps(r.to_dict(), sort_keys=True, separators=(",", ":")) + "\n"
            for r in records
        )


def synthesize_stage_spans(
    tracer: Tracer,
    trace_id: str,
    parent_id: Optional[str],
    stage_ms: Mapping[str, float],
    start: float,
    meta: Optional[Dict[str, Any]] = None,
) -> List[SpanRecord]:
    """Lay the pipeline's per-stage timings out as child spans of *parent_id*.

    The pipeline's :class:`repro.pipeline.Trace` only knows durations, so
    stages are placed back to back from *start* in execution order; the
    sum of the children can never exceed the enclosing span.
    """
    records = []
    cursor = start
    for stage, ms in stage_ms.items():
        duration = max(0.0, float(ms)) / 1000.0
        records.append(
            tracer.record_closed(
                f"stage.{stage}",
                "stage",
                trace_id,
                parent_id,
                cursor,
                cursor + duration,
                meta=meta,
            )
        )
        cursor += duration
    return records
