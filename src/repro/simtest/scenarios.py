"""The named scenario matrix behind ``repro-diff simtest``.

Each builder returns a :class:`~repro.simtest.scenario.Scenario` whose
*outcome* is seed-independent — the seed varies every jitter draw the
client makes, but the invariants must hold for **every** seed, which is
exactly what the nightly multi-seed sweep checks. The timelines are fixed;
only the retry schedules wander.

The matrix covers the failure modes the serve stack claims to absorb:

``worker_crash_keepalive``
    The affinity worker is killed *mid-request* (a ``worker_crash`` fault
    fires inside its service time); the router-equivalent failover replays
    on the ring successor and the client never sees the crash. The worker
    restarts on backoff and later requests succeed.
``storm_429``
    A single worker behind a tight token bucket and a short in-flight
    queue (pre-loaded by scripted occupiers) answers a burst from three
    clients with 429s; the production retry policy — Retry-After floors
    plus full jitter — must converge every request.
``deadline_drain``
    Requests carrying a 50 ms deadline against a 200 ms service time burn
    their budget and fail definitively with 504; the cluster then drains,
    and post-drain requests are refused without ever succeeding.
``failover_chain``
    Every worker is killed at once. In-flight dispatches walk the whole
    ring chain, exhaust it (503 ``no_backend``), and the client's backoff
    outlives the capped restart timers — the request converges once the
    ring repopulates.
``cache_corruption``
    A ``corrupt_cache_entry`` fault poisons a warm entry; the cache drops
    it and misses, the worker recomputes, and nothing user-visible fails.
``clock_jump``
    Virtual time leaps forward 45 s across a crash-detection window;
    skipped health and restart timers fire late rather than never, and the
    cluster still recovers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .faults import Fault, FaultPlan
from .scenario import Scenario, ScenarioResult, Step, run_scenario


def _requests(
    ats: Iterable[float], doc: str, client: str = "c0", **kwargs: object
) -> List[Step]:
    return [
        Step(at, "request", {"client": client, "doc": doc, **kwargs}) for at in ats
    ]


def _worker_crash_keepalive(seed: int) -> Scenario:
    # One client, one document, so affinity pins every request to the same
    # worker — the keep-alive pattern. The crash fault fires inside the
    # second request's service time, on whichever worker owns the doc.
    steps = _requests([0.1, 1.0, 1.5, 2.0, 4.0], doc="pair-keepalive")
    return Scenario(
        name="worker_crash_keepalive",
        seed=seed,
        workers=3,
        service_time=0.05,
        steps=steps,
        plan=FaultPlan(faults=[Fault(point="worker_crash", at=0.9, hits=1)]),
        invariants=(
            "no_failure_with_replacement",
            "retry_discipline",
            "drain_integrity",
            "metrics_conservation",
            "convergence",
        ),
    )


def _storm_429(seed: int) -> Scenario:
    # A single worker, two admission slots pre-held by occupiers, and a
    # 2 tokens/s per-client limit: the opening burst is mostly 429s and
    # convergence rests entirely on the retry discipline under test.
    steps: List[Step] = [Step(0.05, "occupy", {"worker": "w0", "slots": 2,
                                               "hold_s": 0.4})]
    for index in range(12):
        steps.append(
            Step(
                0.1 + index * 0.01,
                "request",
                {"client": f"c{index % 3}", "doc": f"storm-{index}"},
            )
        )
    return Scenario(
        name="storm_429",
        seed=seed,
        workers=1,
        queue_capacity=2,
        rate=2.0,
        burst=2.0,
        service_time=0.01,
        client={"retries": 8},
        steps=steps,
        invariants=(
            "retry_discipline",
            "drain_integrity",
            "metrics_conservation",
            "convergence",
        ),
    )


def _deadline_drain(seed: int) -> Scenario:
    # 50 ms budgets against 200 ms of work: definitive 504s (retried, then
    # surfaced). The drain then flips mid-timeline; the generous-deadline
    # request admitted before it completes, the ones after never succeed.
    steps = [
        Step(0.1, "request", {"client": "c0", "doc": "dl-ok"}),
        Step(0.5, "request", {"client": "c0", "doc": "dl-tight",
                              "deadline_ms": 50.0}),
        Step(3.0, "request", {"client": "c1", "doc": "dl-pre-drain"}),
        Step(3.5, "drain", {}),
        Step(3.6, "request", {"client": "c0", "doc": "dl-post-drain"}),
        Step(4.0, "request", {"client": "c1", "doc": "dl-post-drain-2"}),
    ]
    return Scenario(
        name="deadline_drain",
        seed=seed,
        workers=2,
        service_time=0.2,
        client={"retries": 3},
        steps=steps,
        invariants=(
            "retry_discipline",
            "drain_integrity",
            "metrics_conservation",
        ),
    )


def _failover_chain(seed: int) -> Scenario:
    # Phase 1: one worker dies, the ring absorbs it. Phase 2: every worker
    # dies at once — the dispatch walks and exhausts the whole chain, and
    # only the restart timers bring the answer back.
    steps = [
        Step(0.1, "request", {"client": "c0", "doc": "chain-a"}),
        Step(0.5, "kill", {"worker": "w0"}),
        Step(0.6, "request", {"client": "c0", "doc": "chain-a"}),
        Step(0.7, "request", {"client": "c0", "doc": "chain-b"}),
        Step(2.0, "kill", {"worker": "w0"}),
        Step(2.0, "kill", {"worker": "w1"}),
        Step(2.0, "kill", {"worker": "w2"}),
        Step(2.1, "request", {"client": "c1", "doc": "chain-c"}),
        Step(6.0, "request", {"client": "c0", "doc": "chain-a"}),
    ]
    return Scenario(
        name="failover_chain",
        seed=seed,
        workers=3,
        service_time=0.02,
        client={"retries": 6},
        steps=steps,
        invariants=(
            "no_failure_with_replacement",
            "retry_discipline",
            "drain_integrity",
            "metrics_conservation",
            "convergence",
            "failures_only_while_ring_empty",
        ),
    )


def _cache_corruption(seed: int) -> Scenario:
    # Repeat one document on a single worker: miss, then a poisoned hit
    # (dropped + recomputed), then clean hits. Client-invisible by design.
    steps = _requests([0.1, 0.5, 1.0, 1.5, 2.0], doc="pair-cached")
    return Scenario(
        name="cache_corruption",
        seed=seed,
        workers=1,
        service_time=0.02,
        steps=steps,
        plan=FaultPlan(
            faults=[Fault(point="corrupt_cache_entry", at=0.0, hits=1)]
        ),
        invariants=(
            "no_failure_with_replacement",
            "retry_discipline",
            "drain_integrity",
            "metrics_conservation",
            "convergence",
        ),
    )


def _clock_jump(seed: int) -> Scenario:
    # A worker dies, and before its health/restart timers run, virtual
    # time leaps 45 s (suspend/resume). The skipped timers fire late, the
    # rate limiter refills capped at burst, and requests still converge.
    steps = [
        Step(0.1, "request", {"client": "c0", "doc": "jump-a"}),
        Step(1.5, "kill", {"worker": "w0"}),
        Step(1.7, "request", {"client": "c0", "doc": "jump-b"}),
        Step(1.8, "request", {"client": "c1", "doc": "jump-c"}),
        Step(1.9, "request", {"client": "c0", "doc": "jump-a"}),
    ]
    return Scenario(
        name="clock_jump",
        seed=seed,
        workers=2,
        rate=1.0,
        burst=2.0,
        service_time=0.02,
        client={"retries": 6},
        steps=steps,
        plan=FaultPlan(
            faults=[Fault(point="clock_jump", at=1.6, hits=1, magnitude=45.0)]
        ),
        invariants=(
            "no_failure_with_replacement",
            "retry_discipline",
            "drain_integrity",
            "metrics_conservation",
            "convergence",
        ),
    )


#: Name → builder. Keys are the ``--scenario`` choices of the CLI.
SCENARIOS = {
    "worker_crash_keepalive": _worker_crash_keepalive,
    "storm_429": _storm_429,
    "deadline_drain": _deadline_drain,
    "failover_chain": _failover_chain,
    "cache_corruption": _cache_corruption,
    "clock_jump": _clock_jump,
}


def build_scenario(
    name: str, seed: int = 0, trace_fraction: Optional[float] = None
) -> Scenario:
    """Instantiate one named scenario for *seed*.

    ``trace_fraction`` overrides the scenario's sampling rate; whenever
    tracing is on, the ``trace_complete`` invariant rides along so every
    2xx request must leave a fully-closed span tree.
    """
    import dataclasses

    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    spec = builder(seed)
    if trace_fraction is not None:
        spec = dataclasses.replace(spec, trace_fraction=trace_fraction)
    if spec.trace_fraction > 0.0 and "trace_complete" not in spec.invariants:
        spec = dataclasses.replace(
            spec, invariants=spec.invariants + ("trace_complete",)
        )
    return spec


def run_matrix(
    seed: int = 0, names: Optional[Iterable[str]] = None
) -> Dict[str, ScenarioResult]:
    """Run the full matrix (or *names*) at one seed; deterministic output."""
    selected = sorted(SCENARIOS) if names is None else list(names)
    return {name: run_scenario(build_scenario(name, seed)) for name in selected}
