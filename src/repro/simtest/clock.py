"""Injectable clocks: real time for production, virtual time for simulation.

Every time-dependent component of the serving stack (client backoff,
admission deadlines, supervisor health ticks, drain polls, metrics
timestamps) takes an injectable clock defaulting to the real one, so
production behavior is unchanged while tests and the
:mod:`repro.simtest.scenario` runner substitute a :class:`SimClock` and
replay hours of failure timeline in milliseconds, deterministically.

Two implementations of the same small surface:

* :class:`SystemClock` — thin delegation to :mod:`time` (and
  ``threading.Timer`` for scheduled callbacks).
* :class:`SimClock` — virtual time. ``sleep`` *advances* the clock instead
  of waiting, firing any timers that fall inside the skipped interval in
  deterministic ``(due time, registration order)`` order. ``jump`` models
  a suspend/resume or NTP step: time leaps forward and timers that became
  due during the gap all fire "late" at the new now.

Legacy call sites that take a bare ``Callable[[], float]`` clock (the
admission layer's convention) interoperate via :func:`monotonic_callable`.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Any, Callable, List, Optional, Tuple


class Timer:
    """Handle for one scheduled callback; ``cancel()`` disarms it."""

    __slots__ = ("when", "callback", "args", "cancelled")

    def __init__(self, when: float, callback: Callable[..., None], args: Tuple) -> None:
        self.when = when
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Clock:
    """The injectable time surface shared by both implementations."""

    def monotonic(self) -> float:
        raise NotImplementedError

    def time(self) -> float:
        raise NotImplementedError

    def perf_counter(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError

    def call_later(self, delay: float, callback: Callable[..., None], *args: Any) -> Timer:
        raise NotImplementedError


class SystemClock(Clock):
    """The real clock: delegates straight to :mod:`time`.

    ``call_later`` uses a daemon ``threading.Timer`` — a convenience for
    tests; production code never schedules through the clock.
    """

    def monotonic(self) -> float:
        return time.monotonic()

    def time(self) -> float:
        return time.time()

    def perf_counter(self) -> float:
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def call_later(self, delay: float, callback: Callable[..., None], *args: Any) -> Timer:
        handle = Timer(self.monotonic() + delay, callback, args)

        def fire() -> None:
            if not handle.cancelled:
                callback(*args)

        timer = threading.Timer(max(0.0, delay), fire)
        timer.daemon = True
        timer.start()
        return handle


#: Shared production default; stateless, so one instance is enough.
SYSTEM_CLOCK = SystemClock()


class SimClock(Clock):
    """Deterministic virtual time for the simulation harness.

    ``sleep(s)`` advances ``now`` by ``s``; any timer whose due time falls
    inside the advanced window fires *at its due time* (the clock shows
    exactly the timer's deadline inside the callback), in deterministic
    order: earlier deadline first, ties broken by registration order.
    Callbacks may schedule further timers or sleep recursively — nested
    advancement composes, which is what lets a scripted drain or restart
    fire "in the middle of" a simulated service delay.
    """

    def __init__(self, start: float = 0.0, epoch: float = 1_700_000_000.0) -> None:
        self._now = float(start)
        self._epoch = epoch
        self._heap: List[Tuple[float, int, Timer]] = []
        self._seq = itertools.count()
        #: Total virtual seconds slept/advanced (observability for tests).
        self.elapsed = 0.0
        #: Number of timer callbacks fired so far.
        self.fired = 0

    # ------------------------------------------------------------------
    # Reading time
    # ------------------------------------------------------------------
    def monotonic(self) -> float:
        return self._now

    def time(self) -> float:
        return self._epoch + self._now

    def perf_counter(self) -> float:
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_later(self, delay: float, callback: Callable[..., None], *args: Any) -> Timer:
        return self.call_at(self._now + max(0.0, delay), callback, *args)

    def call_at(self, when: float, callback: Callable[..., None], *args: Any) -> Timer:
        handle = Timer(float(when), callback, args)
        heapq.heappush(self._heap, (handle.when, next(self._seq), handle))
        return handle

    def pending(self) -> int:
        """Live (un-cancelled) timers still waiting to fire."""
        return sum(1 for _, _, timer in self._heap if not timer.cancelled)

    def next_deadline(self) -> Optional[float]:
        """Due time of the earliest live timer, or None."""
        for when, _, timer in sorted(self._heap):
            if not timer.cancelled:
                return when
        return None

    # ------------------------------------------------------------------
    # Advancing time
    # ------------------------------------------------------------------
    def sleep(self, seconds: float) -> None:
        self.advance(max(0.0, seconds))

    def advance(self, seconds: float) -> None:
        """Move time forward, firing due timers at their own deadlines."""
        target = self._now + max(0.0, seconds)
        self.elapsed += max(0.0, seconds)
        self._run_until(target)
        self._now = target

    def jump(self, seconds: float) -> None:
        """A clock step (suspend/resume, NTP slew): time leaps forward and
        everything that became due in the gap fires *late*, at the new now —
        the failure mode the ``clock_jump`` injection point exists to test.
        """
        self._now += max(0.0, seconds)
        self.elapsed += max(0.0, seconds)
        self._run_until(self._now, late=True)

    def run_until_idle(self, limit: float = 3600.0) -> float:
        """Advance through every pending timer (bounded); returns now."""
        deadline = self._now + limit
        while True:
            due = self.next_deadline()
            if due is None or due > deadline:
                break
            self.advance(due - self._now)
        return self._now

    def _run_until(self, target: float, late: bool = False) -> None:
        while self._heap and self._heap[0][0] <= target:
            when, _, timer = heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            # Inside the callback the clock reads the timer's own deadline
            # (or the post-jump now when firing late after a clock step).
            self._now = target if late else max(self._now, when)
            self.fired += 1
            timer.callback(*timer.args)


def monotonic_callable(clock: Any) -> Callable[[], float]:
    """Adapt *clock* to the bare-callable convention of the admission layer.

    Accepts a :class:`Clock`, a zero-arg callable, or ``None`` (the system
    clock); returns a plain ``() -> float`` monotonic reader.
    """
    if clock is None:
        return time.monotonic
    monotonic = getattr(clock, "monotonic", None)
    if callable(monotonic):
        return monotonic
    if callable(clock):
        return clock
    raise TypeError(f"not a clock: {clock!r}")
