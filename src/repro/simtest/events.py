"""Deterministic event log for simulation runs.

Every observable thing that happens during a scenario — requests,
retries, fault firings, worker state transitions, invariant violations —
is appended here as a plain dict with a virtual timestamp. Serialization
uses ``sort_keys=True`` and fixed float rounding so that two runs with
the same seed produce **byte-identical** logs (the acceptance criterion
for ``repro-diff simtest``), and a failing nightly seed can be replayed
locally from its uploaded artifact.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional

#: Sub-microsecond float noise would break byte-identical comparison of
#: logs only if the underlying computation were non-deterministic; we
#: round anyway so logs stay short and diffable for humans.
_TIME_DECIMALS = 9


def _clean(value: Any) -> Any:
    if isinstance(value, float):
        return round(value, _TIME_DECIMALS)
    if isinstance(value, dict):
        return {k: _clean(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_clean(v) for v in value]
    return value


class EventLog:
    """Append-only, JSONL-serializable log of simulation events."""

    def __init__(self) -> None:
        self._events: List[Dict[str, Any]] = []

    def emit(self, kind: str, t: float, **fields: Any) -> Dict[str, Any]:
        event = {"kind": kind, "t": round(float(t), _TIME_DECIMALS)}
        for key, value in fields.items():
            event[key] = _clean(value)
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self._events)

    def of_kind(self, kind: str) -> List[Dict[str, Any]]:
        return [e for e in self._events if e["kind"] == kind]

    def last(self, kind: Optional[str] = None) -> Optional[Dict[str, Any]]:
        if kind is None:
            return self._events[-1] if self._events else None
        for event in reversed(self._events):
            if event["kind"] == kind:
                return event
        return None

    def to_jsonl(self) -> str:
        """One event per line, keys sorted: stable bytes for a given run."""
        return "".join(
            json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
            for event in self._events
        )

    def to_list(self) -> List[Dict[str, Any]]:
        return list(self._events)
