"""The scenario runner: a simulated cluster under virtual time.

This is deterministic simulation testing for the serve/cluster stack. The
topology is in-process — no sockets, no subprocesses — but deliberately
*not* a mock of the interesting code: every simulated worker runs the real
:class:`~repro.serve.admission.AdmissionController` (bounded queue, token
buckets, deadlines), the real :class:`~repro.service.metrics.ServiceMetrics`
and :class:`~repro.service.cache.ScriptCache`; the cluster routes with the
real :class:`~repro.serve.router.HashRing` + :func:`~repro.serve.router
.affinity_key` and mirrors the router's replay-along-the-chain failover;
and the simulated client *is* :class:`~repro.serve.client.DiffServiceClient`
with only its socket transport overridden — so the retry policy under test
is the production one, byte for byte.

A :class:`Scenario` is a scripted timeline (requests, kills, drains,
slot-occupancy, clock jumps) plus a seeded
:class:`~repro.simtest.faults.FaultPlan`. :func:`run_scenario` replays it
under a :class:`~repro.simtest.clock.SimClock`, checks the declarative
invariants after every step and at the end, and returns a
:class:`ScenarioResult` whose event log is byte-identical for a given
scenario + seed. :func:`shrink_plan` greedily removes faults while the
failure persists — the same minimization discipline as
:func:`repro.verify.fuzz.shrink_pair` — turning a 12-fault nightly seed
into a minimal repro.

Invariants (select per scenario via ``Scenario.invariants``):

``no_failure_with_replacement``
    A client-visible connection-type or no-backend failure while the ring
    held a live replacement (and the cluster was not draining) is a bug —
    failover or retries should have absorbed it.
``retry_discipline``
    Attempts never exceed ``1 + retries + connect_retries``; every backoff
    sleep respects the server's Retry-After floor (capped by
    ``max_retry_after``) and never exceeds ``max(backoff_cap,
    max_retry_after)``.
``drain_integrity``
    A request admitted before the drain completes with 200; requests first
    dispatched while draining never succeed; no admission slot is leaked
    (in-flight returns to exactly the occupied count after every step and
    to zero at the end).
``metrics_conservation``
    Per worker incarnation, ``jobs_submitted == jobs_succeeded +
    jobs_timed_out + jobs_failed``; the cross-incarnation merge via the
    real :func:`~repro.service.metrics.merge_snapshots` preserves the
    sums; and workers report at least as many successes as clients saw.
``convergence``
    Every scripted request eventually succeeded (retries absorbed all
    injected trouble).
``failures_only_while_ring_empty``
    Any failed request must have observed a moment with zero live workers.
"""

from __future__ import annotations

import json
import random
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs.export import validate_trace
from ..obs.trace import Tracer, extract_trace_context, synthesize_stage_spans
from ..serve.admission import AdmissionController
from ..serve.client import DiffServiceClient, ServiceError
from ..serve.router import HashRing, affinity_key
from ..service.cache import ScriptCache
from ..service.metrics import ServiceMetrics, merge_snapshots
from .clock import SimClock
from .events import EventLog
from .faults import FaultInjector, FaultPlan

#: Stride mixed into per-client rng seeds (mirrors verify.fuzz).
_SEED_STRIDE = 1_000_003

#: How the simulated service time splits across the real pipeline's stages
#: (same names as :class:`repro.pipeline.Trace`). Sums to 0.9 so the
#: synthesized stage spans always fit inside the enclosing engine span.
STAGE_WEIGHTS = (
    ("index", 0.10),
    ("match", 0.50),
    ("postprocess", 0.10),
    ("editscript", 0.20),
)


def derive_rng(seed: int, name: str) -> random.Random:
    """A deterministic, platform-stable rng for one named participant."""
    return random.Random((seed * _SEED_STRIDE) ^ zlib.crc32(name.encode("utf-8")))


# ---------------------------------------------------------------------------
# Scripted timeline
# ---------------------------------------------------------------------------
@dataclass
class Step:
    """One timeline entry, executed when virtual time reaches ``at``."""

    at: float
    action: str  #: request | kill | restart | drain | occupy | jump
    kwargs: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Scenario:
    """A complete scripted run: topology, timeline, fault plan, invariants."""

    name: str
    seed: int = 0
    workers: int = 3
    replicas: int = 16
    queue_capacity: int = 8
    rate: float = 0.0
    burst: float = 10.0
    default_deadline_ms: float = 30_000.0
    service_time: float = 0.004
    hit_factor: float = 0.25  #: cache-hit service time multiplier
    cache_capacity: int = 64
    health_interval: float = 0.5
    backoff_base: float = 0.25
    backoff_cap: float = 2.0
    auto_restart: bool = True
    trace_fraction: float = 1.0  #: share of client requests traced
    client: Dict[str, Any] = field(default_factory=dict)  #: client kwargs
    steps: List[Step] = field(default_factory=list)
    plan: Optional[FaultPlan] = None
    invariants: Tuple[str, ...] = (
        "retry_discipline",
        "drain_integrity",
        "metrics_conservation",
        "trace_complete",
    )

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "workers": self.workers,
            "steps": len(self.steps),
            "faults": self.plan.describe() if self.plan else [],
            "invariants": list(self.invariants),
        }


@dataclass
class RequestRecord:
    """The client-side outcome of one scripted request."""

    index: int
    at: float
    client: str
    path: str
    doc: Optional[str]
    status: Optional[int] = None  #: final 2xx status, None on failure
    error_kind: Optional[str] = None  #: payload "error" of the failure
    error_status: Optional[int] = None
    attempts: int = 0
    sleeps: List[float] = field(default_factory=list)
    hints: List[Dict[str, Any]] = field(default_factory=list)
    worker: Optional[str] = None  #: X-Worker-Id that served the success
    trace_id: Optional[str] = None  #: minted when the request was sampled
    draining_at_start: bool = False
    live_at_end: int = 0
    min_live_seen: Optional[int] = None

    @property
    def failed(self) -> bool:
        return self.error_kind is not None


# ---------------------------------------------------------------------------
# Simulated topology
# ---------------------------------------------------------------------------
class SimWorker:
    """One in-process worker shard: real admission, metrics, and cache.

    A *crash* retires the current incarnation — its metrics snapshot
    (in-flight work counted as ``jobs_failed``, exactly what a dead
    process loses) is kept for the conservation invariant, and a restart
    brings up a fresh admission controller and a **cold** cache, just like
    a respawned subprocess.
    """

    def __init__(self, worker_id: str, spec: Scenario, clock: SimClock,
                 faults: Optional[FaultInjector], log: EventLog,
                 tracer: Optional[Tracer] = None) -> None:
        self.worker_id = worker_id
        self.spec = spec
        self.clock = clock
        self.faults = faults
        self.log = log
        self.tracer = tracer
        self.state = "up"  #: up | crashed
        self.incarnation = 0
        self.occupied = 0  #: slots held by scripted occupiers
        self.occupier_successes = 0  #: released slots, across incarnations
        self.retired: List[Dict[str, Any]] = []  #: snapshots of dead incarnations
        self._fresh_incarnation()

    def _fresh_incarnation(self) -> None:
        self.metrics = ServiceMetrics(clock=self.clock)
        self.admission = AdmissionController(
            queue_capacity=self.spec.queue_capacity,
            rate=self.spec.rate,
            burst=self.spec.burst,
            default_deadline_ms=self.spec.default_deadline_ms,
            mean_wall_ms=lambda: self.metrics.wall_ms.mean(),
            clock=self.clock,
        )
        self.cache = ScriptCache(capacity=self.spec.cache_capacity, faults=self.faults)
        self.occupied = 0

    # -- lifecycle -----------------------------------------------------
    def crash(self) -> None:
        if self.state == "crashed":
            return
        lost = self.admission.in_flight
        if lost:
            # Work that dies with the process: terminally failed.
            self.metrics.incr("jobs_failed", lost)
        self.state = "crashed"
        self.retired.append(self.snapshot())
        self.log.emit(
            "worker_crash", self.clock.monotonic(),
            worker=self.worker_id, incarnation=self.incarnation, lost_in_flight=lost,
        )

    def restart(self) -> None:
        self.incarnation += 1
        self._fresh_incarnation()
        self.state = "up"
        self.log.emit(
            "worker_up", self.clock.monotonic(),
            worker=self.worker_id, incarnation=self.incarnation,
        )

    def snapshot(self) -> Dict[str, Any]:
        snap = self.metrics.snapshot()
        snap["cache"] = self.cache.stats()
        return snap

    # -- scripted occupancy (stands in for concurrent long jobs) -------
    def occupy(self, slots: int, hold_s: float) -> int:
        """Grab *slots* admission slots, releasing them after ``hold_s``."""
        taken = 0
        incarnation = self.incarnation
        for index in range(slots):
            decision = self.admission.try_admit(f"occupier-{self.worker_id}-{index}")
            if not decision.admitted:
                break
            taken += 1
            self.occupied += 1
            self.metrics.incr("jobs_submitted")

            def _release() -> None:
                if self.incarnation != incarnation or self.state == "crashed":
                    return  # the crash already accounted for this slot
                self.occupied -= 1
                self.occupier_successes += 1
                self.metrics.incr("jobs_succeeded")
                self.admission.release()

            self.clock.call_later(hold_s, _release)
        return taken

    # -- request handling ----------------------------------------------
    def handle(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        if self.state != "up":
            raise ConnectionRefusedError(111, f"{self.worker_id} is down")
        if self.faults is not None:
            if self.faults.fire("conn_refused", target=self.worker_id):
                raise ConnectionRefusedError(
                    111, f"injected conn_refused at {self.worker_id}"
                )
        ctx = extract_trace_context(headers) if self.tracer is not None else None
        span = None
        if ctx is not None:
            span = self.tracer.start_span(
                "worker",
                kind="worker",
                trace_id=ctx[0],
                parent_id=ctx[1],
                meta={"path": path, "worker": self.worker_id},
            )
        try:
            status, payload, extra = self._serve(method, path, headers, body, span)
        except BaseException:
            # The process died mid-request: whatever it was doing is lost.
            if span is not None:
                span.close("lost")
            raise
        if span is not None:
            extra = dict(extra)
            extra["X-Trace-Id"] = ctx[0]
            span.annotate(status=status)
            if status < 400:
                span.close("ok")
            elif status == 429:
                span.close("refused")
            else:
                span.close("error")
        return status, payload, extra

    def _serve(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
        span: Optional[Any] = None,
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        try:
            data = json.loads(body.decode("utf-8")) if body else {}
        except ValueError:
            return 400, {"error": "bad_json", "message": "unparseable body"}, {}
        client = headers.get("x-client-id", "anon")
        doc = str(data.get("id", ""))

        admission_span = (
            span.child("admission", kind="worker") if span is not None else None
        )
        decision = self.admission.try_admit(client, span=admission_span)
        if admission_span is not None:
            admission_span.close("ok" if decision.admitted else "refused")
        if not decision.admitted:
            self.metrics.incr(f"rejected_{decision.reason}")
            return (
                429,
                {
                    "error": decision.reason,
                    "retry_after_s": decision.retry_after,
                    "message": f"{self.worker_id} refused admission",
                },
                {"Retry-After": str(max(1, int(decision.retry_after + 0.999)))},
            )

        incarnation = self.incarnation
        metrics, admission, cache = self.metrics, self.admission, self.cache
        metrics.incr("jobs_submitted")
        deadline = admission.deadline(data.get("deadline_ms"))
        started = self.clock.monotonic()
        engine_span = span.child("engine", kind="engine") if span is not None else None
        try:
            if deadline.expired:
                # The whole budget went to queueing (or a clock jump ate it).
                metrics.incr("jobs_timed_out")
                if engine_span is not None:
                    engine_span.annotate(job_status="timeout").close("error")
                return 504, {"error": "deadline_exceeded", "message": ""}, {}

            service = self.spec.service_time
            key = (doc or "anon", doc or "anon", "sim")
            hit = cache.get(key) if data.get("cacheable", True) and doc else None
            if hit is not None:
                metrics.incr("cache_hits")
                service *= self.spec.hit_factor
            elif doc:
                metrics.incr("cache_misses")
            if self.faults is not None:
                fault = self.faults.fire("slow_response", target=self.worker_id)
                if fault is not None:
                    service += fault.magnitude

            crash_fault = (
                self.faults.fire("worker_crash", target=self.worker_id)
                if self.faults is not None
                else None
            )
            if crash_fault is not None:
                # Die halfway through the service time, losing the request.
                self.clock.sleep(service * 0.5)
                self.crash()
                raise ConnectionResetError(
                    104, f"{self.worker_id} crashed mid-request"
                )

            # Timers may fire inside this sleep (scripted kills, drains,
            # occupier releases) — re-check our incarnation afterwards.
            self.clock.sleep(service)
            if self.incarnation != incarnation or self.state != "up":
                raise ConnectionResetError(
                    104, f"{self.worker_id} crashed mid-request"
                )

            if deadline.expired:
                metrics.incr("jobs_timed_out")
                if engine_span is not None:
                    engine_span.annotate(job_status="timeout").close("error")
                return 504, {"error": "deadline_exceeded", "message": ""}, {}
            if hit is None and doc and data.get("cacheable", True):
                cache.put(key, {"records": [], "doc": doc})
            metrics.incr("jobs_succeeded")
            metrics.observe_wall((self.clock.monotonic() - started) * 1000.0)
            if engine_span is not None:
                engine_span.annotate(source="cache" if hit else "computed")
                record = engine_span.close("ok")
                # Mirror the production engine: the sim's "service time"
                # splits over the real pipeline's stage names.
                synthesize_stage_spans(
                    self.tracer,
                    engine_span.trace_id,
                    engine_span.span_id,
                    {name: weight * service * 1000.0 for name, weight in STAGE_WEIGHTS},
                    record.start,
                    meta={"worker": self.worker_id},
                )
            return (
                200,
                {"id": doc, "worker": self.worker_id, "cache": bool(hit)},
                {},
            )
        except BaseException:
            # Crash mid-request: the engine work dies with the process.
            if engine_span is not None:
                engine_span.close("lost")
            raise
        finally:
            if self.incarnation == incarnation and self.state == "up":
                admission.release()
            # else: the crash snapshot already counted this slot as failed.


class SimCluster:
    """The routing layer of the sim: real ring, replayed failover.

    Mirrors :meth:`repro.serve.router.Router._proxy` — affinity key, chain
    walk, replay on connection-type failure, suspect feedback pulling a
    crashed worker off the ring and arming a capped-backoff restart timer
    (the supervisor's job in production, a ``SimClock`` timer here). A
    scripted ``kill`` crashes the process immediately but removes it from
    the ring only when *noticed* — by a failed dispatch or by the next
    health tick — preserving the detection window that makes failover
    scenarios interesting.
    """

    def __init__(self, spec: Scenario, clock: SimClock,
                 faults: Optional[FaultInjector], log: EventLog,
                 tracer: Optional[Tracer] = None) -> None:
        self.spec = spec
        self.clock = clock
        self.faults = faults
        self.log = log
        self.tracer = tracer
        self.ring = HashRing(replicas=spec.replicas)
        self.workers: Dict[str, SimWorker] = {}
        for index in range(spec.workers):
            worker_id = f"w{index}"
            self.workers[worker_id] = SimWorker(
                worker_id, spec, clock, faults, log, tracer=tracer
            )
            self.ring.add(worker_id)
        self.draining = False
        self.counters: Dict[str, int] = {}
        self._min_live_probe: Optional[List[int]] = None

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def live_count(self) -> int:
        return len(self.ring)

    def in_flight_total(self) -> int:
        return sum(
            w.admission.in_flight for w in self.workers.values() if w.state == "up"
        )

    def occupied_total(self) -> int:
        return sum(w.occupied for w in self.workers.values() if w.state == "up")

    # -- worker lifecycle ----------------------------------------------
    def kill(self, worker_id: str) -> None:
        worker = self.workers[worker_id]
        worker.crash()
        # Detection: the next health tick notices the corpse even if no
        # request trips over it first.
        self.clock.call_later(
            self.spec.health_interval, self._health_check, worker_id
        )

    def _health_check(self, worker_id: str) -> None:
        worker = self.workers[worker_id]
        if worker.state == "crashed" and worker_id in self.ring:
            self._mark_down(worker_id)

    def suspect(self, worker_id: str) -> None:
        """Router feedback after a failed dispatch (production path)."""
        worker = self.workers[worker_id]
        if worker.state == "crashed" and worker_id in self.ring:
            self._mark_down(worker_id)

    def _mark_down(self, worker_id: str) -> None:
        self.ring.remove(worker_id)
        self._count("workers_down")
        self.log.emit(
            "worker_down", self.clock.monotonic(),
            worker=worker_id, live=self.ring.members(),
        )
        if self.spec.auto_restart:
            worker = self.workers[worker_id]
            backoff = min(
                self.spec.backoff_cap,
                self.spec.backoff_base * (2.0 ** min(worker.incarnation, 16)),
            )
            self.clock.call_later(backoff, self._restart, worker_id)

    def _restart(self, worker_id: str) -> None:
        worker = self.workers[worker_id]
        if self.draining or worker.state != "crashed":
            return
        worker.restart()
        self.ring.add(worker_id)
        self._count("restarts")

    def restart_now(self, worker_id: str) -> None:
        """Scripted restart (timeline action), bypassing the backoff."""
        worker = self.workers[worker_id]
        if worker.state == "crashed":
            if worker_id in self.ring:
                self.ring.remove(worker_id)
            worker.restart()
            self.ring.add(worker_id)
            self._count("restarts")

    def drain(self) -> None:
        self.draining = True
        self.log.emit(
            "drain_start", self.clock.monotonic(), in_flight=self.in_flight_total()
        )

    # -- dispatch (the router's _proxy, in-process) ---------------------
    def dispatch(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        self._count("requests")
        self._note_live()
        if path == "/healthz":
            return 200, self.health_payload(), {}
        if path == "/metrics":
            return 200, self.merged_metrics(), {}
        if self.draining:
            self._count("rejected_draining")
            return (
                503,
                {"error": "draining", "retry_after_s": 1.0,
                 "message": "cluster is draining"},
                {"Retry-After": "1"},
            )
        ctx = extract_trace_context(headers) if self.tracer is not None else None
        key = affinity_key(path, headers, body)
        chain = self.ring.assign_chain(key)
        for position, worker_id in enumerate(chain):
            worker = self.workers[worker_id]
            proxy_span = None
            forwarded = headers
            if ctx is not None:
                # Same shape as Router._proxy: one span per forwarding leg,
                # replacing the inbound parent with the proxy span's id.
                proxy_span = self.tracer.start_span(
                    "router.proxy",
                    kind="router",
                    trace_id=ctx[0],
                    parent_id=ctx[1],
                    meta={"worker": worker_id, "position": position},
                )
                forwarded = dict(headers)
                forwarded["x-trace-id"] = ctx[0]
                forwarded["x-span-id"] = proxy_span.span_id
            try:
                status, payload, extra = worker.handle(method, path, forwarded, body)
            except (ConnectionRefusedError, ConnectionResetError) as exc:
                if proxy_span is not None:
                    proxy_span.annotate(error=type(exc).__name__).close("failover")
                self._count("proxy_failovers")
                self.log.emit(
                    "failover", self.clock.monotonic(),
                    worker=worker_id, position=position, error=type(exc).__name__,
                )
                self.suspect(worker_id)
                self._note_live()
                continue
            if proxy_span is not None:
                proxy_span.annotate(status=status).close("ok")
            self._count("proxied")
            if position > 0:
                self._count("proxied_rerouted")
            extra = dict(extra)
            extra["X-Worker-Id"] = worker_id
            return status, payload, extra
        self._count("rejected_no_backend")
        self._note_live()
        return (
            503,
            {"error": "no_backend", "retry_after_s": 0.5,
             "message": "no worker could serve the request"},
            {"Retry-After": "1"},
        )

    def _note_live(self) -> None:
        if self._min_live_probe is not None:
            self._min_live_probe[0] = min(self._min_live_probe[0], len(self.ring))

    def health_payload(self) -> Dict[str, Any]:
        up = self.ring.members()
        return {
            "status": "draining" if self.draining
            else ("ok" if len(up) == len(self.workers) else "degraded"),
            "workers_up": len(up),
            "live": up,
            "protocol": "repro-serve/1",
        }

    def all_snapshots(self) -> Dict[str, Dict[str, Any]]:
        """Every incarnation's metrics, retired and live (``w0@0``, ``w0``…)."""
        dumps: Dict[str, Dict[str, Any]] = {}
        for worker_id, worker in sorted(self.workers.items()):
            for index, retired in enumerate(worker.retired):
                dumps[f"{worker_id}@{index}"] = retired
            if worker.state == "up":
                dumps[worker_id] = worker.snapshot()
        return dumps

    def merged_metrics(self) -> Dict[str, Any]:
        merged = merge_snapshots(self.all_snapshots())
        merged["cluster"] = {
            "router": dict(sorted(self.counters.items())),
            "live_workers": self.ring.members(),
            "draining": self.draining,
        }
        return merged


class SimServiceClient(DiffServiceClient):
    """The production client with its socket transport swapped for dispatch.

    Everything above ``request_once`` — backoff, jitter, Retry-After
    floors, the separate connection-refused budget — is inherited
    unchanged; the client-leg injection points fire here exactly where the
    real transport checks them.
    """

    def __init__(self, cluster: SimCluster, clock: SimClock, name: str,
                 rng: random.Random, faults: Optional[FaultInjector] = None,
                 **kwargs: Any) -> None:
        super().__init__(
            host="sim", port=0, client_id=name, clock=clock, rng=rng, **kwargs
        )
        self._cluster = cluster
        self._leg_faults = faults
        self.attempt_log: List[Dict[str, Any]] = []

    def request_once(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        trace: Optional[Tuple[str, str]] = None,
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        target = f"{self.host}:{self.port}"
        if self._leg_faults is not None:
            if self._leg_faults.fire("conn_refused", target=target):
                self.attempt_log.append({"exc": "ConnectionRefusedError"})
                raise ConnectionRefusedError(111, f"injected conn_refused to {target}")
        headers = {"accept": "application/json"}
        if self.client_id is not None:
            headers["x-client-id"] = self.client_id
        if trace is not None:
            # The sim transport speaks pre-lowercased headers.
            headers["x-trace-id"] = trace[0]
            headers["x-span-id"] = trace[1]
        body = b""
        if payload is not None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
        status, decoded, extra = self._cluster.dispatch(method, path, headers, body)
        if self._leg_faults is not None:
            # After dispatch: the worker did the work, the response is lost.
            if self._leg_faults.fire("conn_reset_mid_body", target=target):
                self.attempt_log.append({"exc": "ConnectionResetError"})
                raise ConnectionResetError(104, f"injected reset from {target}")
            fault = self._leg_faults.fire("slow_response", target=target)
            if fault is not None:
                self._sleep(fault.magnitude)
        self.attempt_log.append(
            {"status": status, "hint": self._retry_after_hint(decoded, extra)}
        )
        return status, decoded, dict(extra)


# ---------------------------------------------------------------------------
# Result + runner
# ---------------------------------------------------------------------------
@dataclass
class ScenarioResult:
    name: str
    seed: int
    violations: List[str]
    records: List[RequestRecord]
    log: EventLog
    stats: Dict[str, Any]

    @property
    def ok(self) -> bool:
        return not self.violations

    def event_jsonl(self) -> str:
        return self.log.to_jsonl()

    def summary(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "ok": self.ok,
            "violations": list(self.violations),
            "requests": len(self.records),
            "failed_requests": sum(1 for r in self.records if r.failed),
            "events": len(self.log),
            "stats": self.stats,
        }


class _Run:
    """Mutable state shared by the runner and the invariants."""

    def __init__(self, spec: Scenario) -> None:
        self.spec = spec
        self.clock = SimClock()
        self.log = EventLog()
        self.injector = (
            FaultInjector(
                plan=spec.plan.clone(), clock=self.clock, log=self.log
            )
            if spec.plan is not None
            else None
        )
        # One tracer for the whole sim: client, router leg, and every
        # worker record into it, and each closed span becomes an event —
        # so a seed's span tree is part of the byte-identical log.
        self.tracer: Optional[Tracer] = None
        if spec.trace_fraction > 0.0:
            self.tracer = Tracer(
                fraction=spec.trace_fraction,
                capacity=65536,
                clock=self.clock,
                rng=derive_rng(spec.seed, "tracer"),
                on_close=lambda record: self.log.emit(
                    "span", self.clock.monotonic(), record=record
                ),
            )
        self.cluster = SimCluster(
            spec, self.clock, self.injector, self.log, tracer=self.tracer
        )
        self.clients: Dict[str, SimServiceClient] = {}
        self.records: List[RequestRecord] = []
        self.violations: List[str] = []
        self.drained_at: Optional[float] = None

    def client(self, name: str) -> SimServiceClient:
        client = self.clients.get(name)
        if client is None:
            client = SimServiceClient(
                self.cluster,
                self.clock,
                name,
                rng=derive_rng(self.spec.seed, name),
                faults=self.injector,
                tracer=self.tracer,
                **self.spec.client,
            )
            self.clients[name] = client
        return client


def run_scenario(spec: Scenario) -> ScenarioResult:
    """Replay *spec* under virtual time; deterministic per (scenario, seed)."""
    run = _Run(spec)
    clock, cluster, log = run.clock, run.cluster, run.log
    log.emit("scenario_start", 0.0, **spec.describe())

    for index, step in enumerate(sorted(spec.steps, key=lambda s: s.at)):
        if run.injector is not None:
            jump = run.injector.fire("clock_jump")
            if jump is not None:
                clock.jump(jump.magnitude)
                log.emit("clock_jump", clock.monotonic(), magnitude=jump.magnitude)
        if step.at > clock.monotonic():
            clock.sleep(step.at - clock.monotonic())
        log.emit("step", clock.monotonic(), index=index, action=step.action,
                 **{k: v for k, v in step.kwargs.items() if k != "payload"})
        _execute_step(run, index, step)
        _check_step_invariants(run, index, step)

    # Let restart backoffs and occupier releases play out.
    clock.run_until_idle()
    for name in spec.invariants:
        checker = INVARIANTS.get(name)
        if checker is None:
            run.violations.append(f"unknown invariant {name!r}")
            continue
        run.violations.extend(checker(run))

    stats = {
        "cluster": dict(sorted(cluster.counters.items())),
        "live_workers": cluster.ring.members(),
        "virtual_elapsed_s": round(clock.elapsed, 9),
        "timers_fired": clock.fired,
        "faults_fired": len(run.injector.fired) if run.injector else 0,
        "trace": run.tracer.stats() if run.tracer is not None else None,
        "cache": {
            worker_id: worker.cache.stats()
            for worker_id, worker in sorted(cluster.workers.items())
        },
        "merged_counters": merge_snapshots(cluster.all_snapshots())["counters"],
    }
    log.emit(
        "scenario_end", clock.monotonic(),
        ok=not run.violations, violations=run.violations,
    )
    return ScenarioResult(
        name=spec.name,
        seed=spec.seed,
        violations=run.violations,
        records=run.records,
        log=log,
        stats=stats,
    )


def _execute_step(run: _Run, index: int, step: Step) -> None:
    cluster, clock = run.cluster, run.clock
    kwargs = step.kwargs
    if step.action == "request":
        _run_request(run, index, step)
    elif step.action == "kill":
        cluster.kill(kwargs["worker"])
    elif step.action == "restart":
        cluster.restart_now(kwargs["worker"])
    elif step.action == "drain":
        cluster.drain()
        run.drained_at = clock.monotonic()
    elif step.action == "occupy":
        taken = cluster.workers[kwargs["worker"]].occupy(
            kwargs.get("slots", 1), kwargs.get("hold_s", 1.0)
        )
        run.log.emit(
            "occupy", clock.monotonic(), worker=kwargs["worker"], taken=taken
        )
    elif step.action == "jump":
        clock.jump(kwargs.get("seconds", 0.0))
        run.log.emit("clock_jump", clock.monotonic(),
                     magnitude=kwargs.get("seconds", 0.0))
    else:
        raise ValueError(f"unknown step action {step.action!r}")


def _run_request(run: _Run, index: int, step: Step) -> None:
    kwargs = step.kwargs
    client = run.client(kwargs.get("client", "c0"))
    path = kwargs.get("path", "/v1/diff")
    doc = kwargs.get("doc")
    payload: Dict[str, Any] = {"id": doc, "sim": True}
    if kwargs.get("deadline_ms") is not None:
        payload["deadline_ms"] = kwargs["deadline_ms"]
    if kwargs.get("cacheable") is not None:
        payload["cacheable"] = kwargs["cacheable"]

    record = RequestRecord(
        index=index,
        at=run.clock.monotonic(),
        client=client.client_id or "c0",
        path=path,
        doc=doc,
        draining_at_start=run.cluster.draining,
    )
    sleeps_before = len(client.sleeps)
    attempts_before = len(client.attempt_log)
    probe = [run.cluster.live_count()]
    run.cluster._min_live_probe = probe
    try:
        decoded = client.request("POST", path, payload)
    except ServiceError as exc:
        record.error_kind = exc.payload.get("error", "error")
        record.error_status = exc.status
        record.attempts = exc.attempts
    else:
        record.status = 200
        record.worker = decoded.get("worker")
        record.attempts = len(client.attempt_log) - attempts_before
    finally:
        record.trace_id = client.last_trace_id
        run.cluster._min_live_probe = None
    record.sleeps = client.sleeps[sleeps_before:]
    record.hints = client.attempt_log[attempts_before:]
    record.live_at_end = run.cluster.live_count()
    record.min_live_seen = probe[0]
    run.records.append(record)
    run.log.emit(
        "request_end", run.clock.monotonic(),
        index=index, client=record.client, doc=doc,
        status=record.status, error=record.error_kind,
        attempts=record.attempts, worker=record.worker,
        sleeps=record.sleeps, trace=record.trace_id,
    )


def _check_step_invariants(run: _Run, index: int, step: Step) -> None:
    """Checks that must hold at every step boundary, not just at the end."""
    cluster = run.cluster
    in_flight = cluster.in_flight_total()
    occupied = cluster.occupied_total()
    if in_flight != occupied:
        run.violations.append(
            f"step {index} ({step.action}): leaked admission slot — "
            f"in_flight={in_flight} but occupied={occupied}"
        )


# ---------------------------------------------------------------------------
# Invariants
# ---------------------------------------------------------------------------
def _inv_no_failure_with_replacement(run: _Run) -> List[str]:
    out = []
    for record in run.records:
        if not record.failed or record.draining_at_start:
            continue
        if record.error_kind not in ("connection", "no_backend", "unreachable"):
            continue  # 4xx/504/draining failures are judged by other invariants
        if record.live_at_end >= 1 and not run.cluster.draining:
            out.append(
                f"request {record.index} ({record.doc}): client-visible "
                f"{record.error_kind} failure with {record.live_at_end} live "
                f"worker(s) on the ring"
            )
    return out


def _inv_retry_discipline(run: _Run) -> List[str]:
    out = []
    for record in run.records:
        client = run.clients[record.client]
        budget = 1 + client.retries + client.connect_retries
        if record.attempts > budget:
            out.append(
                f"request {record.index}: {record.attempts} attempts exceeds "
                f"budget {budget}"
            )
        ceiling = max(client.backoff_cap, client.max_retry_after) + 1e-9
        for position, delay in enumerate(record.sleeps):
            if delay > ceiling:
                out.append(
                    f"request {record.index}: sleep {position} = {delay:.3f}s "
                    f"exceeds ceiling {ceiling:.3f}s"
                )
            attempt = record.hints[position] if position < len(record.hints) else {}
            hint = attempt.get("hint", 0.0) or 0.0
            floor = min(hint, client.max_retry_after)
            if floor > 0 and delay + 1e-9 < floor:
                out.append(
                    f"request {record.index}: sleep {position} = {delay:.3f}s "
                    f"undercuts Retry-After floor {floor:.3f}s"
                )
    return out


def _inv_drain_integrity(run: _Run) -> List[str]:
    out = []
    in_flight = run.cluster.in_flight_total()
    if in_flight != run.cluster.occupied_total():
        out.append(f"drain left {in_flight} request(s) in flight at scenario end")
    for record in run.records:
        if record.draining_at_start and record.status == 200:
            out.append(
                f"request {record.index} was first dispatched while draining "
                f"but succeeded"
            )
    return out


def _inv_metrics_conservation(run: _Run) -> List[str]:
    out = []
    snapshots = run.cluster.all_snapshots()
    totals = {"jobs_submitted": 0, "jobs_succeeded": 0,
              "jobs_timed_out": 0, "jobs_failed": 0}
    for tag, snap in snapshots.items():
        counters = snap["counters"]
        submitted = counters.get("jobs_submitted", 0)
        closed = (
            counters.get("jobs_succeeded", 0)
            + counters.get("jobs_timed_out", 0)
            + counters.get("jobs_failed", 0)
        )
        if submitted != closed:
            out.append(
                f"{tag}: jobs_submitted={submitted} != "
                f"succeeded+timed_out+failed={closed}"
            )
        for name in totals:
            totals[name] += counters.get(name, 0)
    merged = merge_snapshots(snapshots)["counters"]
    for name, expected in totals.items():
        if merged.get(name, 0) != expected:
            out.append(
                f"merge_snapshots lost counts: {name} merged={merged.get(name, 0)} "
                f"expected={expected}"
            )
    client_successes = sum(
        1 for r in run.records if r.status == 200 and r.path == "/v1/diff"
    )
    worker_successes = totals["jobs_succeeded"] - _occupier_successes(run)
    if worker_successes < client_successes:
        out.append(
            f"workers report {worker_successes} successes but clients saw "
            f"{client_successes}"
        )
    return out


def _occupier_successes(run: _Run) -> int:
    # Occupier jobs are pure admission ballast; their successes are the
    # released slots (crashed occupiers were converted to jobs_failed).
    return sum(w.occupier_successes for w in run.cluster.workers.values())


def _inv_convergence(run: _Run) -> List[str]:
    return [
        f"request {record.index} ({record.doc}) failed: "
        f"{record.error_kind} (HTTP {record.error_status}) "
        f"after {record.attempts} attempts"
        for record in run.records
        if record.failed
    ]


def _inv_trace_complete(run: _Run) -> List[str]:
    """Every 2xx request that was sampled left a fully-closed span tree."""
    out = []
    if run.tracer is None:
        return out
    for record in run.records:
        if record.status != 200 or record.trace_id is None:
            continue
        open_count = run.tracer.open_count(record.trace_id)
        if open_count:
            out.append(
                f"request {record.index}: trace {record.trace_id} still has "
                f"{open_count} open span(s) after a 2xx response"
            )
            continue
        spans = run.tracer.trace(record.trace_id)
        if not spans:
            out.append(
                f"request {record.index}: sampled trace {record.trace_id} "
                f"recorded no spans"
            )
            continue
        for problem in validate_trace(spans):
            out.append(
                f"request {record.index} (trace {record.trace_id}): {problem}"
            )
    return out


def _inv_failures_only_while_ring_empty(run: _Run) -> List[str]:
    out = []
    for record in run.records:
        if record.failed and (record.min_live_seen or 0) > 0:
            out.append(
                f"request {record.index} failed but never saw an empty ring "
                f"(min live = {record.min_live_seen})"
            )
    return out


INVARIANTS: Dict[str, Callable[[_Run], List[str]]] = {
    "no_failure_with_replacement": _inv_no_failure_with_replacement,
    "retry_discipline": _inv_retry_discipline,
    "drain_integrity": _inv_drain_integrity,
    "metrics_conservation": _inv_metrics_conservation,
    "trace_complete": _inv_trace_complete,
    "convergence": _inv_convergence,
    "failures_only_while_ring_empty": _inv_failures_only_while_ring_empty,
}


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------
def shrink_plan(
    spec: Scenario,
    failing: Optional[Callable[[ScenarioResult], bool]] = None,
) -> Tuple[Scenario, ScenarioResult]:
    """Greedily minimize ``spec.plan`` while the scenario keeps failing.

    Re-runs the scenario without one fault at a time (each run fully fresh
    and deterministic) and keeps every removal that preserves the failure —
    the same discipline as :func:`repro.verify.fuzz.shrink_pair`. Returns
    the minimized scenario and its (still failing) result; a passing input
    comes back untouched.
    """
    is_failing = failing if failing is not None else (lambda result: not result.ok)
    result = run_scenario(spec)
    if not is_failing(result) or spec.plan is None:
        return spec, result
    plan = spec.plan.clone()
    progress = True
    while progress and len(plan) > 0:
        progress = False
        for index in range(len(plan)):
            candidate_plan = plan.without(index)
            candidate = _with_plan(spec, candidate_plan)
            trial = run_scenario(candidate)
            if is_failing(trial):
                plan = candidate_plan
                result = trial
                progress = True
                break
    final = _with_plan(spec, plan)
    return final, run_scenario(final)


def _with_plan(spec: Scenario, plan: FaultPlan) -> Scenario:
    import dataclasses

    return dataclasses.replace(spec, plan=plan.clone())
