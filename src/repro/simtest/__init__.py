"""Deterministic simulation & fault-injection harness for the serve stack.

Layers (each usable on its own):

* :mod:`repro.simtest.clock` — ``Clock``/``SystemClock``/``SimClock``;
  virtual time with deterministic timers, injected throughout
  :mod:`repro.serve`, :mod:`repro.service.metrics`, and
  :mod:`repro.verify.fuzz`.
* :mod:`repro.simtest.faults` — seeded ``FaultPlan``/``FaultInjector``
  with named injection points wired into the client transport, router
  proxy leg, supervisor health checker, and ``ScriptCache``.
* :mod:`repro.simtest.events` — the byte-identical-per-seed event log.
* :mod:`repro.simtest.scenario` — an in-process simulated cluster (real
  admission/ring/retry/metrics code, no sockets) replaying scripted
  request+fault timelines under ``SimClock`` with declarative invariants
  and fault-plan shrinking.
* :mod:`repro.simtest.scenarios` — the named scenario matrix behind
  ``repro-diff simtest``.

The production modules import only :mod:`repro.simtest.clock` (stdlib-only,
no back-references), while the scenario layer imports the production
modules — so ``scenario``/``scenarios`` are re-exported lazily here to keep
the package import acyclic.
"""

from .clock import SYSTEM_CLOCK, Clock, SimClock, SystemClock, Timer, monotonic_callable
from .events import EventLog
from .faults import INJECTION_POINTS, Fault, FaultInjector, FaultPlan

__all__ = [
    "Clock",
    "SystemClock",
    "SimClock",
    "Timer",
    "SYSTEM_CLOCK",
    "monotonic_callable",
    "EventLog",
    "INJECTION_POINTS",
    "Fault",
    "FaultPlan",
    "FaultInjector",
    "Scenario",
    "ScenarioResult",
    "run_scenario",
    "shrink_plan",
    "SCENARIOS",
    "build_scenario",
    "run_matrix",
]

_LAZY = {
    "Scenario": "scenario",
    "ScenarioResult": "scenario",
    "run_scenario": "scenario",
    "shrink_plan": "scenario",
    "SCENARIOS": "scenarios",
    "build_scenario": "scenarios",
    "run_matrix": "scenarios",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
