"""Seeded fault plans and the injector that fires them.

A :class:`FaultPlan` is a list of :class:`Fault` records — *which* named
injection point misbehaves, *when* (virtual time), against *which* target,
*how many* times, and how hard. A :class:`FaultInjector` is armed with a
plan and handed to the components under test; each instrumented call site
asks ``injector.fire("point", target=...)`` and acts only when a matching
fault is due. Call sites hold ``faults=None`` by default, so production
code pays a single ``is None`` check and nothing else.

Injection points (the full registry is :data:`INJECTION_POINTS`):

====================  ======================================================
``conn_refused``      transport raises ``ConnectionRefusedError`` before the
                      request is written (client transport, router proxy leg)
``conn_reset_mid_body``  peer drops the connection after admission, mid-
                      response (``ConnectionResetError``)
``slow_response``     service time inflated by ``magnitude`` seconds
``worker_crash``      worker process dies (supervisor health checker / sim
                      worker mid-request)
``corrupt_cache_entry``  a ScriptCache hit is detected as corrupt, dropped,
                      and recomputed (self-healing miss)
``clock_jump``        the clock steps forward ``magnitude`` seconds (fired
                      by the scenario runner between steps)
====================  ======================================================

Plans are either hand-written (scenario builders) or generated from a seed
(:meth:`FaultPlan.generate`) — same seed, same plan, same event log.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence

from .events import EventLog

INJECTION_POINTS = (
    "conn_refused",
    "conn_reset_mid_body",
    "slow_response",
    "worker_crash",
    "corrupt_cache_entry",
    "clock_jump",
)


@dataclass
class Fault:
    """One scheduled misbehavior at a named injection point."""

    point: str
    at: float = 0.0  # earliest virtual time this fault may fire
    hits: int = 1  # firings before the fault disarms; -1 = unlimited
    target: Optional[str] = None  # worker id / endpoint / key; None = any
    magnitude: float = 0.0  # seconds, for slow_response / clock_jump

    def __post_init__(self) -> None:
        if self.point not in INJECTION_POINTS:
            raise ValueError(
                f"unknown injection point {self.point!r}; "
                f"known: {', '.join(INJECTION_POINTS)}"
            )

    def matches(self, point: str, target: Optional[str], now: float) -> bool:
        if self.point != point or self.hits == 0 or now < self.at:
            return False
        return self.target is None or target is None or self.target == target

    def describe(self) -> Dict[str, Any]:
        return {
            "point": self.point,
            "at": self.at,
            "hits": self.hits,
            "target": self.target,
            "magnitude": self.magnitude,
        }


@dataclass
class FaultPlan:
    """An ordered set of faults, optionally generated from a seed."""

    faults: List[Fault] = field(default_factory=list)
    seed: Optional[int] = None

    @classmethod
    def generate(
        cls,
        seed: int,
        count: int = 4,
        horizon: float = 30.0,
        points: Sequence[str] = INJECTION_POINTS,
        targets: Sequence[Optional[str]] = (None,),
    ) -> "FaultPlan":
        """Seeded random plan: same arguments → identical plan, always."""
        rng = random.Random(seed)
        faults = []
        for _ in range(count):
            point = rng.choice(list(points))
            faults.append(
                Fault(
                    point=point,
                    at=round(rng.uniform(0.0, horizon), 6),
                    hits=rng.randint(1, 3),
                    target=rng.choice(list(targets)),
                    magnitude=round(rng.uniform(0.05, 2.0), 6)
                    if point in ("slow_response", "clock_jump")
                    else 0.0,
                )
            )
        faults.sort(key=lambda f: (f.at, f.point, f.target or ""))
        return cls(faults=faults, seed=seed)

    def without(self, index: int) -> "FaultPlan":
        """Copy of the plan minus one fault — the shrinking primitive."""
        kept = [replace(f) for i, f in enumerate(self.faults) if i != index]
        return FaultPlan(faults=kept, seed=self.seed)

    def clone(self) -> "FaultPlan":
        return FaultPlan(faults=[replace(f) for f in self.faults], seed=self.seed)

    def describe(self) -> List[Dict[str, Any]]:
        return [f.describe() for f in self.faults]

    def __len__(self) -> int:
        return len(self.faults)


class FaultInjector:
    """Armed with a plan, fires faults at instrumented call sites.

    ``fire(point, target=...)`` returns the matching :class:`Fault` (and
    decrements its remaining hits) or ``None``. Every firing is recorded —
    in ``self.fired`` and, when a log is attached, as a ``fault`` event —
    so a run's injected history is part of its deterministic event log.
    """

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        clock: Optional[Any] = None,
        log: Optional[EventLog] = None,
    ) -> None:
        self.plan = plan
        self.clock = clock
        self.log = log
        self.fired: List[Dict[str, Any]] = []

    @property
    def armed(self) -> bool:
        return self.plan is not None and any(f.hits != 0 for f in self.plan.faults)

    def _now(self) -> float:
        if self.clock is None:
            return 0.0
        monotonic = getattr(self.clock, "monotonic", None)
        return monotonic() if callable(monotonic) else self.clock()

    def fire(self, point: str, target: Optional[str] = None) -> Optional[Fault]:
        if self.plan is None:
            return None
        now = self._now()
        for fault in self.plan.faults:
            if fault.matches(point, target, now):
                if fault.hits > 0:
                    fault.hits -= 1
                record = {
                    "point": point,
                    "target": target,
                    "t": now,
                    "magnitude": fault.magnitude,
                }
                self.fired.append(record)
                if self.log is not None:
                    self.log.emit(
                        "fault",
                        now,
                        point=point,
                        target=target,
                        magnitude=fault.magnitude,
                    )
                return fault
        return None
