"""repro — change detection in hierarchically structured information.

A faithful, production-quality reproduction of:

    S. Chawathe, A. Rajaraman, H. Garcia-Molina, J. Widom.
    "Change Detection in Hierarchically Structured Information."
    SIGMOD 1996.

Quickstart::

    from repro import Tree, tree_diff

    old = Tree.from_obj(("D", None, [("P", None, [("S", "hello world")])]))
    new = Tree.from_obj(("D", None, [("P", None, [("S", "hello there world")])]))
    result = tree_diff(old, new)
    print(result.script)          # UPD(...)
    assert result.verify(old, new)

Public surface:

* :class:`Tree`, :class:`Node` — ordered labeled-value trees.
* :func:`tree_diff` — end-to-end matching + edit-script generation.
* :mod:`repro.matching` — Match / FastMatch / criteria / schemas.
* :mod:`repro.editscript` — operations, scripts, Algorithm EditScript.
* :mod:`repro.deltatree` — annotated delta trees and renderers.
* :mod:`repro.ladiff` — the LaDiff structured-document differ.
* :mod:`repro.baselines` — Zhang–Shasha and flat line diff comparators.
* :mod:`repro.workload` — synthetic trees/documents and mutation engines.
* :mod:`repro.analysis` — edit-distance metrics and the §8 instrumentation.
* :mod:`repro.service` — concurrent diff engine with Merkle digests,
  result caching, and service metrics (the §1 warehouse serving layer).
* :mod:`repro.verify` — conformance oracles, differential checks against
  the baselines, and the seeded fuzzing harness.
"""

from .core.errors import ConfigError
from .core.index import TreeIndex
from .core.node import Node
from .core.tree import Tree
from .core.isomorphism import trees_isomorphic
from .diff import DiffResult, tree_diff
from .editscript.generator import generate_edit_script
from .editscript.script import EditScript
from .matching.criteria import MatchConfig
from .matching.fastmatch import fast_match
from .matching.matching import Matching
from .matching.simple import match
from .merge import MergeResult, three_way_merge
from .pipeline import DiffConfig, DiffPipeline, Trace
from .service.engine import DiffEngine
from .service.digest import tree_fingerprint
from .store import VersionStore
from .verify import (
    FuzzConfig,
    FuzzReport,
    VerifyReport,
    Violation,
    differential_check,
    run_fuzz,
    verify_result,
)

__version__ = "1.1.0"

__all__ = [
    "ConfigError",
    "DiffConfig",
    "DiffEngine",
    "DiffPipeline",
    "DiffResult",
    "EditScript",
    "FuzzConfig",
    "FuzzReport",
    "MatchConfig",
    "Matching",
    "MergeResult",
    "Node",
    "Trace",
    "Tree",
    "TreeIndex",
    "VerifyReport",
    "VersionStore",
    "Violation",
    "__version__",
    "differential_check",
    "fast_match",
    "generate_edit_script",
    "match",
    "run_fuzz",
    "three_way_merge",
    "tree_diff",
    "tree_fingerprint",
    "trees_isomorphic",
    "verify_result",
]
