"""Command-line interface: structured diffing from the shell.

Subcommands
-----------
``ladiff``   Diff two document files (LaTeX/HTML/text) and emit marked-up
             output — the LaDiff program of paper §7 as a CLI.
``script``   Diff two tree files (s-expression or JSON dict format) and
             print the edit script in paper notation (or JSON).
``stats``    Diff two document files and report the §8 measurements:
             d, e, e/d, comparison counts, and the analytical bound.

Examples::

    repro-diff ladiff old.tex new.tex -o marked_up.tex
    repro-diff script old.sexpr new.sexpr --json
    repro-diff stats old.tex new.tex
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .analysis import fastmatch_bound, result_distances, tree_pair_sizes
from .core.serialization import tree_from_dict, tree_from_sexpr
from .core.tree import Tree
from .diff import tree_diff
from .editscript.generator import generate_edit_script
from .ladiff.pipeline import default_match_config, ladiff
from .matching.criteria import MatchingStats
from .matching.fastmatch import fast_match


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-diff",
        description="Change detection in hierarchically structured information "
        "(Chawathe et al., SIGMOD 1996).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_ladiff = sub.add_parser("ladiff", help="diff two documents, emit mark-up")
    p_ladiff.add_argument("old", help="old document file")
    p_ladiff.add_argument("new", help="new document file")
    p_ladiff.add_argument(
        "--format", choices=("latex", "html", "text"), default="latex",
        help="input format (default: latex)",
    )
    p_ladiff.add_argument(
        "--output-format", choices=("latex", "html", "text"), default=None,
        help="output mark-up (default: same as input format)",
    )
    p_ladiff.add_argument(
        "-t", type=float, default=0.5, help="match threshold t (default 0.5)"
    )
    p_ladiff.add_argument(
        "-f", type=float, default=0.6, help="leaf threshold f (default 0.6)"
    )
    p_ladiff.add_argument(
        "-o", "--out", default=None, help="write output here instead of stdout"
    )
    p_ladiff.add_argument(
        "--summary", action="store_true", help="also print a change summary"
    )

    p_script = sub.add_parser("script", help="diff two tree files, emit edit script")
    p_script.add_argument("old", help="old tree file (.sexpr or .json)")
    p_script.add_argument("new", help="new tree file (.sexpr or .json)")
    p_script.add_argument(
        "--json", action="store_true", help="emit the script as JSON"
    )
    p_script.add_argument(
        "-t", type=float, default=0.5, help="match threshold t (default 0.5)"
    )
    p_script.add_argument(
        "-f", type=float, default=0.6, help="leaf threshold f (default 0.6)"
    )

    p_stats = sub.add_parser("stats", help="diff two documents, report measurements")
    p_stats.add_argument("old")
    p_stats.add_argument("new")
    p_stats.add_argument(
        "--format", choices=("latex", "html", "text"), default="latex"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "ladiff":
        return _cmd_ladiff(args)
    if args.command == "script":
        return _cmd_script(args)
    if args.command == "stats":
        return _cmd_stats(args)
    raise AssertionError("unreachable")  # pragma: no cover


def _read(path: str) -> str:
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _cmd_ladiff(args) -> int:
    config = default_match_config(t=args.t, f=args.f)
    result = ladiff(
        _read(args.old),
        _read(args.new),
        format=args.format,
        config=config,
        output=args.output_format or args.format,
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(result.output)
        print(f"wrote {args.out}")
    else:
        print(result.output)
    if args.summary:
        print(f"summary: {result.summary()}", file=sys.stderr)
    return 0


def _load_tree(path: str) -> Tree:
    text = _read(path)
    stripped = text.lstrip()
    if stripped.startswith("{"):
        return tree_from_dict(json.loads(text))
    return tree_from_sexpr(text)


def _cmd_script(args) -> int:
    old = _load_tree(args.old)
    new = _load_tree(args.new)
    config = default_match_config(t=args.t, f=args.f)
    result = tree_diff(old, new, config=config)
    if not result.verify(old, new):  # pragma: no cover - guard
        print("internal error: script failed verification", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(result.script.to_dicts(), indent=2))
    else:
        for op in result.script:
            print(op)
        print(f"# cost = {result.cost():.2f}", file=sys.stderr)
    return 0


def _cmd_stats(args) -> int:
    from .ladiff.pipeline import _PARSERS

    parser = _PARSERS[args.format]
    old = parser(_read(args.old))
    new = parser(_read(args.new))
    config = default_match_config()
    stats = MatchingStats()
    matching = fast_match(old, new, config, stats=stats)
    result = generate_edit_script(old, new, matching)
    distances = result_distances(old, result)
    sizes = tree_pair_sizes(old, new)
    bound = fastmatch_bound(sizes, distances.weighted)
    measured = stats.leaf_compares + stats.partner_checks
    print(f"nodes (old/new):      {len(old)} / {len(new)}")
    print(f"leaves total (n):     {sizes.leaves}")
    print(f"unweighted dist (d):  {distances.unweighted}")
    print(f"weighted dist (e):    {distances.weighted:.1f}")
    print(f"e/d:                  {distances.ratio:.2f}")
    print(f"leaf compares (r1):   {stats.leaf_compares}")
    print(f"partner checks (r2):  {stats.partner_checks}")
    print(f"measured total:       {measured}")
    print(f"analytical bound:     {bound:.0f}")
    if measured:
        print(f"bound/measured:       {bound / measured:.1f}x")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
