"""Command-line interface: structured diffing from the shell.

Subcommands
-----------
``ladiff``   Diff two document files (LaTeX/HTML/text) and emit marked-up
             output — the LaDiff program of paper §7 as a CLI.
``script``   Diff two tree files (s-expression or JSON dict format) and
             print the edit script in paper notation (or JSON).
``stats``    Diff two document files and report the §8 measurements:
             d, e, e/d, comparison counts, and the analytical bound.
``batch``    Diff a manifest of old/new tree-file pairs through the
             concurrent :class:`repro.service.DiffEngine` and print a
             service-metrics summary.
``verify``   Run the conformance-oracle battery: either on one pair of
             tree files, or as a seeded sweep over generated workloads.
``fuzz``     Seeded differential fuzzing with shrinking: on a violation,
             minimize the failing pair, write a JSON repro file, exit 1.
``serve``    Run the asyncio HTTP diff service (:mod:`repro.serve`):
             admission control, backpressure, graceful SIGTERM drain.
             ``--workers N`` (N >= 2) runs the sharded multi-process
             cluster with cache-affinity routing, failover, and SIGHUP
             rolling restarts (:mod:`repro.serve.cluster`).

Examples::

    repro-diff ladiff old.tex new.tex -o marked_up.tex
    repro-diff script old.sexpr new.sexpr --json
    repro-diff stats old.tex new.tex
    repro-diff batch pairs.manifest --workers 8 --save-cache warm.json
    repro-diff verify --seed 42 --iterations 500
    repro-diff verify old.json new.json
    repro-diff fuzz --seed 1 --iterations 1000 --repro-dir repros/
    repro-diff serve --port 8765 --threads 4 --queue-depth 16
    repro-diff serve --port 8765 --workers 4     # 4-process sharded cluster

All ``--json`` output is serialized with sorted keys, so byte-identical
inputs produce byte-identical output across runs and Python versions.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from . import __version__
from .analysis import fastmatch_bound, result_distances, tree_pair_sizes
from .core.errors import ConfigError
from .core.serialization import tree_from_dict, tree_from_sexpr
from .core.tree import Tree
from .ladiff.pipeline import default_match_config, ladiff
from .pipeline import DiffConfig, DiffPipeline
from .service.engine import DiffEngine
from .verify.fuzz import (
    INJECTED_BUGS,
    FuzzConfig,
    check_pair,
    default_runner,
    run_fuzz,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-diff",
        description="Change detection in hierarchically structured information "
        "(Chawathe et al., SIGMOD 1996).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command")

    p_ladiff = sub.add_parser("ladiff", help="diff two documents, emit mark-up")
    p_ladiff.add_argument("old", help="old document file")
    p_ladiff.add_argument("new", help="new document file")
    p_ladiff.add_argument(
        "--format", choices=("latex", "html", "text"), default="latex",
        help="input format (default: latex)",
    )
    p_ladiff.add_argument(
        "--output-format", choices=("latex", "html", "text"), default=None,
        help="output mark-up (default: same as input format)",
    )
    p_ladiff.add_argument(
        "-t", type=float, default=0.5, help="match threshold t (default 0.5)"
    )
    p_ladiff.add_argument(
        "-f", type=float, default=0.6, help="leaf threshold f (default 0.6)"
    )
    p_ladiff.add_argument(
        "-o", "--out", default=None, help="write output here instead of stdout"
    )
    p_ladiff.add_argument(
        "--summary", action="store_true", help="also print a change summary"
    )

    p_script = sub.add_parser("script", help="diff two tree files, emit edit script")
    p_script.add_argument("old", help="old tree file (.sexpr or .json)")
    p_script.add_argument("new", help="new tree file (.sexpr or .json)")
    p_script.add_argument(
        "--json", action="store_true", help="emit the script as JSON"
    )
    p_script.add_argument(
        "--algorithm", choices=("fast", "simple"), default="fast",
        help="matching algorithm (default: fast)",
    )
    p_script.add_argument(
        "--trace", action="store_true",
        help="print per-stage pipeline timings and counters to stderr",
    )
    p_script.add_argument(
        "--trace-fraction", type=float, default=0.0,
        help="sample this fraction of runs into a span tree; sampled --json "
             "output gains a trace_id field (default 0)",
    )
    p_script.add_argument(
        "--trace-export", default=None, metavar="PATH",
        help="append recorded spans to PATH as sorted-keys JSONL",
    )
    p_script.add_argument(
        "-t", type=float, default=0.5, help="match threshold t (default 0.5)"
    )
    p_script.add_argument(
        "-f", type=float, default=0.6, help="leaf threshold f (default 0.6)"
    )

    p_stats = sub.add_parser("stats", help="diff two documents, report measurements")
    p_stats.add_argument("old")
    p_stats.add_argument("new")
    p_stats.add_argument(
        "--format", choices=("latex", "html", "text"), default="latex"
    )

    p_batch = sub.add_parser(
        "batch", help="diff a manifest of tree-file pairs through the DiffEngine"
    )
    p_batch.add_argument(
        "manifest",
        help="file with one 'OLD NEW' pair of tree files (.sexpr/.json) per "
        "line; '#' starts a comment; paths are relative to the manifest",
    )
    p_batch.add_argument(
        "--workers", type=int, default=4, help="concurrent jobs (default 4)"
    )
    p_batch.add_argument(
        "--cache-size", type=int, default=256,
        help="result-cache capacity; 0 disables caching (default 256)",
    )
    p_batch.add_argument(
        "--timeout", type=float, default=None, help="per-job timeout in seconds"
    )
    p_batch.add_argument(
        "--retries", type=int, default=0, help="retries per failed job (default 0)"
    )
    p_batch.add_argument(
        "--warm-cache", default=None, metavar="PATH",
        help="load a cache spill file before diffing",
    )
    p_batch.add_argument(
        "--save-cache", default=None, metavar="PATH",
        help="spill the cache to PATH after diffing (for warm restarts)",
    )
    p_batch.add_argument(
        "--json", action="store_true",
        help="emit job results and metrics as JSON instead of text",
    )
    p_batch.add_argument(
        "--trace-fraction", type=float, default=0.0,
        help="sample this fraction of batch runs into one span tree rooted "
             "at cli.batch; sampled jobs carry trace_id in --json (default 0)",
    )
    p_batch.add_argument(
        "--trace-export", default=None, metavar="PATH",
        help="append recorded spans to PATH as sorted-keys JSONL",
    )
    p_batch.add_argument(
        "-t", type=float, default=0.5, help="match threshold t (default 0.5)"
    )
    p_batch.add_argument(
        "-f", type=float, default=0.6, help="leaf threshold f (default 0.6)"
    )

    p_verify = sub.add_parser(
        "verify",
        help="run the conformance-oracle battery (one pair, or a seeded sweep)",
    )
    p_verify.add_argument(
        "old", nargs="?", default=None, help="old tree file (.sexpr or .json)"
    )
    p_verify.add_argument(
        "new", nargs="?", default=None, help="new tree file (.sexpr or .json)"
    )
    _add_fuzz_options(p_verify, iterations=100)
    p_verify.add_argument(
        "--json", action="store_true", help="emit the verify report as JSON"
    )

    p_fuzz = sub.add_parser(
        "fuzz",
        help="seeded differential fuzzing with shrinking and JSON repro files",
    )
    _add_fuzz_options(p_fuzz, iterations=200)
    p_fuzz.add_argument(
        "--repro-dir", default=".", metavar="DIR",
        help="directory for shrunk JSON repro files (default: current dir)",
    )
    p_fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="emit the original failing pair without minimizing it",
    )
    p_fuzz.add_argument(
        "--max-failures", type=int, default=1,
        help="stop after this many distinct failing pairs (default 1)",
    )
    p_fuzz.add_argument(
        "--inject-bug", choices=sorted(INJECTED_BUGS), default=None,
        help="fuzz a deliberately broken pipeline (harness self-test)",
    )
    p_fuzz.add_argument(
        "--json", action="store_true", help="emit the fuzz report as JSON"
    )

    p_serve = sub.add_parser(
        "serve", help="run the HTTP diff service (repro.serve) until SIGTERM"
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port", type=int, default=8765,
        help="TCP port; 0 binds an ephemeral port (default 8765)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=1,
        help="worker PROCESSES; >= 2 runs the sharded cluster with "
             "cache-affinity routing, 0/1 the single-process server (default 1)",
    )
    p_serve.add_argument(
        "--threads", type=int, default=4,
        help="engine worker threads per process (default 4)",
    )
    p_serve.add_argument(
        "--replicas", type=int, default=64,
        help="virtual nodes per worker on the cluster hash ring (default 64)",
    )
    p_serve.add_argument(
        "--cache-size", type=int, default=256,
        help="result-cache capacity; 0 disables caching (default 256)",
    )
    p_serve.add_argument(
        "--queue-depth", type=int, default=16,
        help="max in-flight compute requests before 429 (default 16)",
    )
    p_serve.add_argument(
        "--rate", type=float, default=0.0,
        help="per-client requests/second; 0 disables rate limiting (default 0)",
    )
    p_serve.add_argument(
        "--burst", type=float, default=10.0,
        help="per-client token-bucket burst capacity (default 10)",
    )
    p_serve.add_argument(
        "--max-body-kb", type=int, default=1024,
        help="request-body cap in KiB before 413 (default 1024)",
    )
    p_serve.add_argument(
        "--deadline-ms", type=float, default=30_000.0,
        help="default per-request deadline before 504 (default 30000)",
    )
    p_serve.add_argument(
        "--drain-timeout", type=float, default=30.0,
        help="seconds to flush in-flight work on SIGTERM (default 30)",
    )
    p_serve.add_argument(
        "--retries", type=int, default=0, help="retries per failed job (default 0)"
    )
    p_serve.add_argument(
        "--verify-fraction", type=float, default=0.0,
        help="fraction of served diffs to spot-check with the oracles (default 0)",
    )
    p_serve.add_argument(
        "--trace-fraction", type=float, default=0.0,
        help="sample this fraction of headerless requests into span trees; "
             "requests carrying X-Trace-Id are always traced (default 0)",
    )
    p_serve.add_argument(
        "--trace-buffer", type=int, default=2048,
        help="ring-buffer capacity for closed spans (default 2048)",
    )
    p_serve.add_argument(
        "--trace-export", default=None, metavar="PATH",
        help="write buffered spans to PATH as sorted-keys JSONL on drain",
    )
    p_serve.add_argument(
        "--algorithm", choices=("fast", "simple"), default="fast",
        help="matching algorithm (default: fast)",
    )
    p_serve.add_argument(
        "-t", type=float, default=0.5, help="match threshold t (default 0.5)"
    )
    p_serve.add_argument(
        "-f", type=float, default=0.6, help="leaf threshold f (default 0.6)"
    )

    p_simtest = sub.add_parser(
        "simtest",
        help="deterministic fault-injection scenarios for the serve stack",
    )
    p_simtest.add_argument(
        "--seed", type=int, default=0,
        help="scenario seed; the same seed produces a byte-identical "
             "event log (default 0)",
    )
    p_simtest.add_argument(
        "--scenario", default="all", metavar="NAME",
        help="one scenario name, or 'all' for the full matrix (default: all); "
             "see --list",
    )
    p_simtest.add_argument(
        "--list", action="store_true", help="print scenario names and exit"
    )
    p_simtest.add_argument(
        "--event-log", metavar="PATH", default=None,
        help="write the combined JSONL event log here (byte-identical per seed)",
    )
    p_simtest.add_argument(
        "--shrink", action="store_true",
        help="on failure, greedily minimize the fault plan to a minimal repro",
    )
    p_simtest.add_argument(
        "--json", action="store_true", help="emit the run summary as JSON"
    )
    p_simtest.add_argument(
        "--trace-fraction", type=float, default=1.0,
        help="fraction of simulated requests traced into span trees "
             "(default 1.0; spans land in the event log)",
    )

    p_trace = sub.add_parser(
        "trace", help="pretty-print a recorded span tree (file or live server)"
    )
    p_trace.add_argument(
        "trace_id", nargs="?", default=None,
        help="16-hex trace id; omit with --file to render every trace",
    )
    p_trace.add_argument(
        "--file", default=None, metavar="PATH",
        help="read spans from a --trace-export JSONL file",
    )
    p_trace.add_argument(
        "--url", default=None, metavar="URL",
        help="fetch GET /v1/trace/<id> from a running server "
             "(e.g. http://127.0.0.1:8765)",
    )
    p_trace.add_argument(
        "--json", action="store_true",
        help="emit the merged spans as sorted-keys JSON instead of the tree",
    )
    return parser


def _add_fuzz_options(parser: argparse.ArgumentParser, iterations: int) -> None:
    """Options shared by the ``verify`` sweep and the ``fuzz`` loop."""
    parser.add_argument(
        "--seed", type=int, default=0, help="base seed (default 0)"
    )
    parser.add_argument(
        "--iterations", type=int, default=iterations,
        help=f"generated pairs to check (default {iterations})",
    )
    parser.add_argument(
        "--max-nodes", type=int, default=60,
        help="node ceiling per generated tree (default 60)",
    )
    parser.add_argument(
        "--max-zs-nodes", type=int, default=20,
        help="Zhang-Shasha reference ceiling per tree (default 20)",
    )
    parser.add_argument(
        "--algorithm", choices=("fast", "simple", "both"), default="both",
        help="matching algorithm(s) under test (default: both)",
    )
    parser.add_argument(
        "--no-differential", action="store_true",
        help="skip the Match-vs-FastMatch-vs-baseline crosschecks",
    )
    parser.add_argument(
        "-t", type=float, default=0.5, help="match threshold t (default 0.5)"
    )
    parser.add_argument(
        "-f", type=float, default=0.6, help="leaf threshold f (default 0.6)"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    try:
        if args.command == "ladiff":
            return _cmd_ladiff(args)
        if args.command == "script":
            return _cmd_script(args)
        if args.command == "stats":
            return _cmd_stats(args)
        if args.command == "batch":
            return _cmd_batch(args)
        if args.command == "verify":
            return _cmd_verify(args)
        if args.command == "fuzz":
            return _cmd_fuzz(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "simtest":
            return _cmd_simtest(args)
        if args.command == "trace":
            return _cmd_trace(args)
    except ConfigError as exc:
        # One typed error covers every invalid-configuration path (bad
        # thresholds, unknown algorithm/format) across all subcommands.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError("unreachable")  # pragma: no cover


def _read(path: str) -> str:
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _cmd_ladiff(args) -> int:
    config = default_match_config(t=args.t, f=args.f)
    result = ladiff(
        _read(args.old),
        _read(args.new),
        format=args.format,
        config=config,
        output=args.output_format or args.format,
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(result.output)
        print(f"wrote {args.out}")
    else:
        print(result.output)
    if args.summary:
        print(f"summary: {result.summary()}", file=sys.stderr)
    return 0


def _load_tree(path: str) -> Tree:
    text = _read(path)
    stripped = text.lstrip()
    if stripped.startswith("{"):
        return tree_from_dict(json.loads(text))
    return tree_from_sexpr(text)


def _make_cli_tracer(fraction: float):
    """A ``(tracer, trace_id)`` pair for a CLI run; ``(None, None)`` when off."""
    if fraction <= 0.0:
        return None, None
    from .obs.trace import Tracer

    tracer = Tracer(fraction=fraction)
    return tracer, tracer.maybe_trace()


def _export_spans(tracer, path: Optional[str]) -> None:
    if tracer is None or path is None:
        return
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(tracer.export_jsonl())


def _cmd_script(args) -> int:
    pipeline = DiffPipeline(
        DiffConfig(
            algorithm=args.algorithm,
            match=default_match_config(t=args.t, f=args.f),
        )
    )
    old = _load_tree(args.old)
    new = _load_tree(args.new)
    tracer, trace_id = _make_cli_tracer(args.trace_fraction)
    root = None
    if trace_id is not None:
        root = tracer.start_span(
            "cli.script", kind="client", trace_id=trace_id,
            meta={"old": os.path.basename(args.old), "new": os.path.basename(args.new)},
        )
    result = pipeline.run(old, new)
    if root is not None:
        root.close()
        if result.trace is not None:
            from .obs.trace import synthesize_stage_spans

            synthesize_stage_spans(
                tracer, trace_id, root.span_id,
                result.trace.stage_ms(), root.record.start,
            )
    if not result.verify(old, new):  # pragma: no cover - guard
        print("internal error: script failed verification", file=sys.stderr)
        return 1
    _export_spans(tracer, args.trace_export)
    if args.json:
        if trace_id is not None:
            payload = {"script": result.script.to_dicts(), "trace_id": trace_id}
        else:
            payload = result.script.to_dicts()
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for op in result.script:
            print(op)
        print(f"# cost = {result.cost():.2f}", file=sys.stderr)
        if trace_id is not None:
            print(f"# trace = {trace_id}", file=sys.stderr)
    if args.trace and result.trace is not None:
        print(result.trace.render(), file=sys.stderr)
    return 0


def _cmd_stats(args) -> int:
    from .ladiff.pipeline import _PARSERS

    parser = _PARSERS[args.format]
    # The §8 measurements instrument FastMatch itself, so the repair pass
    # stays off — same counters the paper reports, now read off the trace.
    pipeline = DiffPipeline(
        DiffConfig(match=default_match_config(), postprocess=False)
    )
    old = parser(_read(args.old))
    new = parser(_read(args.new))
    diffed = pipeline.run(old, new)
    stats = diffed.match_stats
    distances = result_distances(old, diffed.edit)
    sizes = tree_pair_sizes(old, new)
    bound = fastmatch_bound(sizes, distances.weighted)
    measured = stats.leaf_compares + stats.partner_checks
    print(f"nodes (old/new):      {len(old)} / {len(new)}")
    print(f"leaves total (n):     {sizes.leaves}")
    print(f"unweighted dist (d):  {distances.unweighted}")
    print(f"weighted dist (e):    {distances.weighted:.1f}")
    print(f"e/d:                  {distances.ratio:.2f}")
    print(f"leaf compares (r1):   {stats.leaf_compares}")
    print(f"partner checks (r2):  {stats.partner_checks}")
    print(f"measured total:       {measured}")
    print(f"analytical bound:     {bound:.0f}")
    if measured:
        print(f"bound/measured:       {bound / measured:.1f}x")
    return 0


def _parse_manifest(path: str) -> List[tuple]:
    """Read ``OLD NEW`` pairs; returns ``(old_path, new_path, job_id)`` rows."""
    base = os.path.dirname(os.path.abspath(path))
    rows: List[tuple] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(
                    f"{path}:{lineno}: expected 'OLD NEW', got {line!r}"
                )
            old_path, new_path = (
                part if os.path.isabs(part) else os.path.join(base, part)
                for part in parts
            )
            job_id = f"{lineno}:{os.path.basename(parts[0])}->{os.path.basename(parts[1])}"
            rows.append((old_path, new_path, job_id))
    return rows


def _tree_loader(path: str):
    """A zero-arg loader; deferring the parse keeps failures inside the job."""
    return lambda: _load_tree(path)


def _cmd_batch(args) -> int:
    try:
        rows = _parse_manifest(args.manifest)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    config = default_match_config(t=args.t, f=args.f)
    try:
        engine = DiffEngine(
            workers=args.workers,
            config=config,
            cache=args.cache_size,
            timeout=args.timeout,
            retries=args.retries,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tracer, trace_id = _make_cli_tracer(args.trace_fraction)
    root = None
    if trace_id is not None:
        # One trace for the whole batch: every engine job span hangs off a
        # single cli.batch root, so the export renders as one tree.
        engine.tracer = tracer
        root = tracer.start_span(
            "cli.batch", kind="client", trace_id=trace_id,
            meta={"manifest": os.path.basename(args.manifest), "jobs": len(rows)},
        )
        engine.default_trace = (trace_id, root.span_id)
    try:
        if args.warm_cache and engine.cache is not None:
            engine.cache.warm(args.warm_cache)
        results = engine.map_pairs(
            (_tree_loader(old), _tree_loader(new), job_id)
            for old, new, job_id in rows
        )
        if args.save_cache and engine.cache is not None:
            engine.cache.save(args.save_cache)
    finally:
        engine.close()
        if root is not None:
            root.close()
            _export_spans(tracer, args.trace_export)

    failed = sum(1 for r in results if not r.ok)
    if args.json:
        print(json.dumps(
            {
                "jobs": [
                    {
                        "job_id": r.job_id,
                        "status": r.status,
                        "source": r.source,
                        "operations": r.operations,
                        "cost": r.cost,
                        "wall_ms": round(r.wall_ms, 3),
                        "stage_ms": {
                            stage: round(ms, 3) for stage, ms in r.stage_ms.items()
                        },
                        "trace_id": r.trace_id,
                        "error": r.error,
                    }
                    for r in results
                ],
                "metrics": engine.metrics.snapshot(),
                "cache": engine.cache.stats() if engine.cache is not None else None,
            },
            indent=2,
            sort_keys=True,
        ))
        return 1 if failed else 0

    for r in results:
        line = (
            f"{r.job_id:<32} {r.status:<8} "
            f"{(r.source or '-'):<9} ops={r.operations:<4} "
            f"cost={r.cost:<8.1f} {r.wall_ms:8.1f}ms"
        )
        if r.error:
            line += f"  {r.error}"
        print(line)
    cache_stats = engine.cache.stats() if engine.cache is not None else None
    print(engine.metrics.render(cache_stats))
    if failed:
        print(f"{failed} of {len(results)} jobs failed", file=sys.stderr)
    return 1 if failed else 0


def _cmd_serve(args) -> int:
    from .serve.app import ServeConfig, run_server
    from .serve.cluster import ClusterConfig, run_cluster

    try:
        if args.workers < 0:
            raise ValueError(f"workers must be >= 0, got {args.workers}")
        serve_config = ServeConfig(
            host=args.host,
            port=args.port,
            workers=args.threads,
            cache_size=args.cache_size,
            algorithm=args.algorithm,
            match=default_match_config(t=args.t, f=args.f),
            retries=args.retries,
            verify_fraction=args.verify_fraction,
            queue_capacity=args.queue_depth,
            rate=args.rate,
            burst=args.burst,
            max_body_bytes=args.max_body_kb * 1024,
            deadline_ms=args.deadline_ms,
            drain_timeout=args.drain_timeout,
            trace_fraction=args.trace_fraction,
            trace_buffer=args.trace_buffer,
            trace_export=args.trace_export,
        )

        def announce(url: str) -> None:
            print(f"repro-diff serve: listening on {url}", flush=True)

        if args.workers >= 2:
            cluster_config = ClusterConfig(
                host=args.host,
                port=args.port,
                workers=args.workers,
                replicas=args.replicas,
                drain_timeout=args.drain_timeout,
                serve=serve_config,
            )
            return run_cluster(cluster_config, announce=announce)
        return run_server(serve_config, announce=announce)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _fuzz_config(args, **overrides) -> FuzzConfig:
    algorithms = (
        ("fast", "simple") if args.algorithm == "both" else (args.algorithm,)
    )
    options = dict(
        seed=args.seed,
        iterations=args.iterations,
        max_nodes=args.max_nodes,
        max_zs_nodes=args.max_zs_nodes,
        algorithms=algorithms,
        match=default_match_config(t=args.t, f=args.f),
        differential=not args.no_differential,
    )
    options.update(overrides)
    return FuzzConfig(**options)


def _cmd_verify(args) -> int:
    if (args.old is None) != (args.new is None):
        print("error: verify needs both OLD and NEW (or neither)", file=sys.stderr)
        return 2
    config = _fuzz_config(args, shrink=False)
    if args.old is not None:
        # Single-pair mode: the full battery on two tree files.
        report = check_pair(
            _load_tree(args.old), _load_tree(args.new), config, default_runner
        )
    else:
        fuzzed = run_fuzz(config)
        report = fuzzed.report
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_fuzz(args) -> int:
    config = _fuzz_config(
        args,
        shrink=not args.no_shrink,
        repro_dir=args.repro_dir,
        max_failures=max(1, args.max_failures),
    )
    runner = INJECTED_BUGS[args.inject_bug] if args.inject_bug else None
    fuzzed = run_fuzz(config, runner=runner)
    if args.json:
        print(json.dumps(
            {
                "ok": fuzzed.ok,
                "iterations": fuzzed.iterations_run,
                "report": fuzzed.report.to_dict(),
                "failures": [
                    {
                        "iteration": f.iteration,
                        "workload": f.workload,
                        "violations": f.violations,
                        "original_nodes": f.original_nodes,
                        "shrunk_nodes": f.shrunk_nodes,
                        "repro": f.repro_path,
                    }
                    for f in fuzzed.failures
                ],
            },
            indent=2,
            sort_keys=True,
        ))
        return 0 if fuzzed.ok else 1
    print(fuzzed.report.render())
    print(f"{fuzzed.iterations_run} iterations, {len(fuzzed.failures)} failing pair(s)")
    for failure in fuzzed.failures:
        print(
            f"FAIL iter {failure.iteration} ({failure.workload}): "
            f"shrunk {failure.original_nodes} -> {failure.shrunk_nodes} nodes",
            file=sys.stderr,
        )
        for violation in failure.violations[:5]:
            print(f"  {violation}", file=sys.stderr)
        if failure.repro_path:
            print(f"  repro: {failure.repro_path}", file=sys.stderr)
    return 0 if fuzzed.ok else 1


def _cmd_trace(args) -> int:
    from .obs.export import load_spans_jsonl, render_span_tree, spans_to_jsonl

    if (args.file is None) == (args.url is None):
        print("error: trace needs exactly one of --file or --url", file=sys.stderr)
        return 2
    if args.file is not None:
        try:
            with open(args.file, encoding="utf-8") as handle:
                spans = load_spans_jsonl(handle.read())
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.trace_id is not None:
            wanted = args.trace_id.lower()
            spans = [span for span in spans if span.get("trace") == wanted]
    else:
        if args.trace_id is None:
            print("error: --url needs a TRACE_ID to fetch", file=sys.stderr)
            return 2
        spans = _fetch_trace_spans(args.url, args.trace_id)
        if spans is None:
            return 1
    if not spans:
        print("no spans found", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(spans, indent=2, sort_keys=True))
        return 0
    print(render_span_tree(spans), end="")
    # The JSONL line count doubles as a span count for scripting.
    count = spans_to_jsonl(spans).count("\n")
    print(f"# {count} span(s)", file=sys.stderr)
    return 0


def _fetch_trace_spans(url: str, trace_id: str):
    """GET /v1/trace/<id> from a worker or router front; None on failure."""
    import http.client
    from urllib.parse import urlsplit

    parts = urlsplit(url if "//" in url else f"//{url}")
    host = parts.hostname or "127.0.0.1"
    port = parts.port or 8765
    conn = http.client.HTTPConnection(host, port, timeout=10.0)
    try:
        conn.request("GET", f"/v1/trace/{trace_id}")
        response = conn.getresponse()
        payload = json.loads(response.read())
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None
    finally:
        conn.close()
    if response.status != 200:
        print(
            f"error: HTTP {response.status}: {payload.get('message', payload)}",
            file=sys.stderr,
        )
        return None
    return payload.get("spans", [])


def _cmd_simtest(args) -> int:
    # Imported here: the scenario layer pulls in the whole serve stack,
    # which the document-diffing subcommands should not pay for.
    from .simtest.scenario import run_scenario, shrink_plan
    from .simtest.scenarios import SCENARIOS, build_scenario

    if args.list:
        for name in sorted(SCENARIOS):
            print(name)
        return 0
    if args.scenario == "all":
        names = sorted(SCENARIOS)
    elif args.scenario in SCENARIOS:
        names = [args.scenario]
    else:
        raise ConfigError(
            f"unknown scenario {args.scenario!r}; choose from "
            f"{sorted(SCENARIOS)} or 'all'"
        )

    results = {}
    shrunk_plans = {}
    chunks = []
    for name in names:
        spec = build_scenario(
            name, seed=args.seed, trace_fraction=args.trace_fraction
        )
        result = run_scenario(spec)
        if not result.ok and args.shrink and spec.plan is not None:
            small, result = shrink_plan(spec)
            shrunk_plans[name] = small.plan.describe() if small.plan else []
        results[name] = result
        chunks.append(result.event_jsonl())
    if args.event_log:
        with open(args.event_log, "w", encoding="utf-8") as handle:
            handle.write("".join(chunks))
    failures = [name for name, result in results.items() if not result.ok]

    if args.json:
        print(json.dumps(
            {
                "seed": args.seed,
                "ok": not failures,
                "scenarios": {n: r.summary() for n, r in results.items()},
                "shrunk_plans": shrunk_plans,
            },
            indent=2,
            sort_keys=True,
        ))
        return 1 if failures else 0
    for name, result in results.items():
        status = "PASS" if result.ok else "FAIL"
        print(
            f"{status} {name} (seed {args.seed}): "
            f"{len(result.records)} request(s), {len(result.log)} event(s), "
            f"{result.stats['faults_fired']} fault(s), "
            f"virtual {result.stats['virtual_elapsed_s']:.3f}s"
        )
        for violation in result.violations:
            print(f"  violation: {violation}", file=sys.stderr)
        if name in shrunk_plans:
            print(f"  minimal fault plan: {shrunk_plans[name]}", file=sys.stderr)
    print(
        f"{len(results) - len(failures)}/{len(results)} scenario(s) passed"
    )
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
