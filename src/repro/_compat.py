"""Small cross-version compatibility shims.

The library supports Python 3.9+, but newer interpreters offer cheaper
building blocks for hot-path records. Centralizing the feature tests here
keeps call sites declarative (``@dataclass(frozen=True, **DATACLASS_SLOTS)``)
instead of sprinkling version checks around.
"""

from __future__ import annotations

import sys
from typing import Any, Dict

#: Extra ``dataclass`` keyword arguments enabling ``__slots__`` generation
#: where the interpreter supports it (3.10+). On 3.9 the decorator falls
#: back to ordinary ``__dict__``-backed instances — same API, more memory.
DATACLASS_SLOTS: Dict[str, Any] = (
    {"slots": True} if sys.version_info >= (3, 10) else {}
)
