"""Classic dynamic-programming LCS, used as a reference implementation.

``O(nm)`` time and space. The test suite checks Myers' algorithm against this
oracle on random inputs; it is also the clearer implementation to read when
studying the alignment step of the paper.
"""

from __future__ import annotations

import operator
from typing import Callable, List, Sequence, Tuple, TypeVar

S = TypeVar("S")
T = TypeVar("T")


def dp_lcs_indices(
    s1: Sequence[S],
    s2: Sequence[T],
    equal: Callable[[S, T], bool] = operator.eq,
) -> List[Tuple[int, int]]:
    """Return index pairs of an LCS via the textbook DP table."""
    n, m = len(s1), len(s2)
    if n == 0 or m == 0:
        return []
    # table[i][j] = |LCS(s1[:i], s2[:j])|
    table = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(1, n + 1):
        row = table[i]
        prev = table[i - 1]
        a = s1[i - 1]
        for j in range(1, m + 1):
            if equal(a, s2[j - 1]):
                row[j] = prev[j - 1] + 1
            else:
                row[j] = prev[j] if prev[j] >= row[j - 1] else row[j - 1]
    pairs: List[Tuple[int, int]] = []
    i, j = n, m
    while i > 0 and j > 0:
        if equal(s1[i - 1], s2[j - 1]) and table[i][j] == table[i - 1][j - 1] + 1:
            pairs.append((i - 1, j - 1))
            i -= 1
            j -= 1
        elif table[i - 1][j] >= table[i][j - 1]:
            i -= 1
        else:
            j -= 1
    pairs.reverse()
    return pairs


def dp_lcs(
    s1: Sequence[S],
    s2: Sequence[T],
    equal: Callable[[S, T], bool] = operator.eq,
) -> List[Tuple[S, T]]:
    """Return element pairs of an LCS computed by dynamic programming."""
    return [(s1[i], s2[j]) for i, j in dp_lcs_indices(s1, s2, equal)]


def dp_lcs_length(
    s1: Sequence[S],
    s2: Sequence[T],
    equal: Callable[[S, T], bool] = operator.eq,
) -> int:
    """Return the LCS length only, using O(min(n, m)) space."""
    if len(s1) < len(s2):
        # Keep the inner loop over the longer sequence for cache friendliness
        # and the DP row over the shorter one for memory.
        s1, s2 = s2, s1
        flipped = True
    else:
        flipped = False
    m = len(s2)
    if m == 0:
        return 0
    row = [0] * (m + 1)
    for a in s1:
        prev_diag = 0
        for j in range(1, m + 1):
            saved = row[j]
            b = s2[j - 1]
            matched = equal(b, a) if flipped else equal(a, b)
            if matched:
                row[j] = prev_diag + 1
            elif row[j - 1] > row[j]:
                row[j] = row[j - 1]
            prev_diag = saved
    return row[m]
