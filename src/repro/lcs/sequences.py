"""Sequence diff opcodes built on top of the LCS routines.

This is the flat-file view of change detection that Section 2 contrasts with
the tree algorithms: given two sequences, produce *equal*, *delete*, and
*insert* runs (exactly what GNU diff reports for lines). The flat-diff
baseline (:mod:`repro.baselines.flat_diff`) uses these opcodes.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple, TypeVar

from .myers import myers_lcs_indices

S = TypeVar("S")
T = TypeVar("T")


@dataclass(frozen=True)
class OpCode:
    """A diff run: ``tag`` is ``"equal"``, ``"delete"`` or ``"insert"``.

    ``i1:i2`` is the half-open range in the first sequence, ``j1:j2`` in the
    second. For ``delete`` runs ``j1 == j2``; for ``insert`` runs
    ``i1 == i2``.
    """

    tag: str
    i1: int
    i2: int
    j1: int
    j2: int


def diff_opcodes(
    s1: Sequence[S],
    s2: Sequence[T],
    equal: Callable[[S, T], bool] = operator.eq,
) -> List[OpCode]:
    """Return the diff between two sequences as a list of opcodes."""
    matches = myers_lcs_indices(s1, s2, equal)
    ops: List[OpCode] = []
    i = j = 0

    def flush_gap(next_i: int, next_j: int) -> None:
        if i < next_i:
            ops.append(OpCode("delete", i, next_i, j, j))
        if j < next_j:
            ops.append(OpCode("insert", next_i, next_i, j, next_j))

    runs = _match_runs(matches)
    for (mi, mj, length) in runs:
        flush_gap(mi, mj)
        ops.append(OpCode("equal", mi, mi + length, mj, mj + length))
        i, j = mi + length, mj + length
    # Trailing gap after the last match run.
    if i < len(s1):
        ops.append(OpCode("delete", i, len(s1), j, j))
    if j < len(s2):
        ops.append(OpCode("insert", len(s1), len(s1), j, len(s2)))
    return ops


def _match_runs(matches: List[Tuple[int, int]]) -> List[Tuple[int, int, int]]:
    """Group adjacent (i, j) match pairs into (i, j, length) runs."""
    runs: List[Tuple[int, int, int]] = []
    for (i, j) in matches:
        if runs and runs[-1][0] + runs[-1][2] == i and runs[-1][1] + runs[-1][2] == j:
            start_i, start_j, length = runs[-1]
            runs[-1] = (start_i, start_j, length + 1)
        else:
            runs.append((i, j, 1))
    return runs


def unified_hunks(
    s1: Sequence[str],
    s2: Sequence[str],
    context: int = 3,
) -> List[str]:
    """Render a unified-diff-style listing (for the flat-diff baseline).

    Returns the body lines (no file headers); ``-`` marks deletions from
    *s1*, ``+`` marks insertions from *s2*, and context lines are prefixed
    with a space.
    """
    ops = diff_opcodes(s1, s2)
    lines: List[str] = []
    for op in ops:
        if op.tag == "equal":
            segment = list(s1[op.i1 : op.i2])
            if len(segment) > 2 * context and context >= 0:
                head = segment[:context]
                tail = segment[-context:] if context else []
                lines.extend(" " + line for line in head)
                lines.append(f"@@ {op.i2 - op.i1 - len(head) - len(tail)} unchanged lines @@")
                lines.extend(" " + line for line in tail)
            else:
                lines.extend(" " + line for line in segment)
        elif op.tag == "delete":
            lines.extend("-" + line for line in s1[op.i1 : op.i2])
        else:
            lines.extend("+" + line for line in s2[op.j1 : op.j2])
    return lines
