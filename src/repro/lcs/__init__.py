"""Longest-common-subsequence algorithms with pluggable equality."""

from .dp import dp_lcs, dp_lcs_indices, dp_lcs_length
from .myers import (
    lcs_length,
    myers_lcs,
    myers_lcs_indices,
    shortest_edit_distance,
)
from .sequences import OpCode, diff_opcodes, unified_hunks

__all__ = [
    "OpCode",
    "diff_opcodes",
    "dp_lcs",
    "dp_lcs_indices",
    "dp_lcs_length",
    "lcs_length",
    "myers_lcs",
    "myers_lcs_indices",
    "shortest_edit_distance",
    "unified_hunks",
]
