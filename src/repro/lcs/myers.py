"""Myers' O(ND) longest common subsequence / shortest edit script algorithm.

The paper (Section 4.2) treats the LCS routine as a three-argument procedure
``LCS(S1, S2, equal)`` where ``equal`` is an arbitrary equality predicate —
node partnership for AlignChildren, value proximity for FastMatch, exact word
equality for sentence comparison. The standard UNIX diff LCS cannot be used
because it requires inequality (hashing/ordering) comparisons; Myers'
algorithm needs only equality, which is why the paper (and we) use it.

Complexity is ``O(ND)`` where ``N = |S1| + |S2|`` and
``D = N - 2|LCS(S1, S2)|`` is the length of the shortest edit script.

Note on non-transitive predicates: when ``equal`` is a similarity threshold
(as in FastMatch's leaf matching) rather than true equality, the result is
still a valid common subsequence under the predicate, but maximality is only
guaranteed for genuine equivalence relations. The paper makes the same
trade-off ("a modified version of the LCS algorithm from [Mye86]").
"""

from __future__ import annotations

import operator
from typing import Callable, List, Sequence, Tuple, TypeVar

S = TypeVar("S")
T = TypeVar("T")

EqualFn = Callable[[S, T], bool]

_UNREACHED = -1


def myers_lcs_indices(
    s1: Sequence[S],
    s2: Sequence[T],
    equal: EqualFn = operator.eq,
) -> List[Tuple[int, int]]:
    """Return index pairs ``(i, j)`` of an LCS of *s1* and *s2*.

    The returned pairs are strictly increasing in both components, realizing
    conditions (1)-(3) of the paper's LCS definition.
    """
    n, m = len(s1), len(s2)
    if n == 0 or m == 0:
        return []

    # Forward pass: find the depth D of the shortest edit script, keeping a
    # snapshot of the frontier V before each depth so we can backtrack.
    v = {1: 0}
    trace: List[dict] = []
    found_d = -1
    for d in range(n + m + 1):
        trace.append(dict(v))
        for k in range(-d, d + 1, 2):
            if k == -d or (
                k != d and v.get(k - 1, _UNREACHED) < v.get(k + 1, _UNREACHED)
            ):
                x = v.get(k + 1, 0)  # move down (insert from s2)
            else:
                x = v.get(k - 1, _UNREACHED) + 1  # move right (delete from s1)
            y = x - k
            while x < n and y < m and equal(s1[x], s2[y]):
                x += 1
                y += 1
            v[k] = x
            if x >= n and y >= m:
                found_d = d
                break
        if found_d >= 0:
            break
    if found_d < 0:  # pragma: no cover - unreachable: D <= n + m always
        raise AssertionError("Myers LCS failed to terminate")

    # Backward pass: walk the trace from (n, m) back to (0, 0), collecting
    # diagonal (match) steps.
    pairs: List[Tuple[int, int]] = []
    x, y = n, m
    for d in range(found_d, -1, -1):
        if d == 0:
            # Depth 0: the remaining path is pure diagonal down to (0, 0).
            while x > 0 and y > 0:
                pairs.append((x - 1, y - 1))
                x -= 1
                y -= 1
            break
        snapshot = trace[d]
        k = x - y
        if k == -d or (
            k != d
            and snapshot.get(k - 1, _UNREACHED) < snapshot.get(k + 1, _UNREACHED)
        ):
            prev_k = k + 1
        else:
            prev_k = k - 1
        prev_x = snapshot[prev_k]
        prev_y = prev_x - prev_k
        # Follow the snake (diagonal run) back to where the edit happened.
        while x > prev_x and y > prev_y:
            pairs.append((x - 1, y - 1))
            x -= 1
            y -= 1
        # Undo the single horizontal or vertical edit step.
        x, y = prev_x, prev_y
    pairs.reverse()
    return pairs


def myers_lcs(
    s1: Sequence[S],
    s2: Sequence[T],
    equal: EqualFn = operator.eq,
) -> List[Tuple[S, T]]:
    """Return element pairs of an LCS, mirroring the paper's ``LCS(S1, S2, equal)``."""
    return [(s1[i], s2[j]) for i, j in myers_lcs_indices(s1, s2, equal)]


def lcs_length(
    s1: Sequence[S],
    s2: Sequence[T],
    equal: EqualFn = operator.eq,
) -> int:
    """Return ``|LCS(S1, S2)|``."""
    return len(myers_lcs_indices(s1, s2, equal))


def shortest_edit_distance(
    s1: Sequence[S],
    s2: Sequence[T],
    equal: EqualFn = operator.eq,
) -> int:
    """Return ``D = |S1| + |S2| - 2 |LCS|``, the shortest edit script length."""
    return len(s1) + len(s2) - 2 * lcs_length(s1, s2, equal)
