"""Change detection over legacy database snapshots (paper §1, §5).

The data-warehousing scenario: an "uncooperative" legacy source only hands
out periodic dumps, and the warehouse must derive deltas from consecutive
snapshots. Here the dump is a nested product catalog. Some records carry
stable keys (SKUs) — the fast path the paper mentions — while descriptions
are keyless text matched by value. The hybrid matcher anchors on keys first
and falls back to FastMatch for everything else; the resulting edit script
is exactly the delta the warehouse would apply.

Run:  python examples/warehouse_snapshots.py
"""

import json

from repro import Tree
from repro.core import tree_from_dict, tree_to_dict
from repro.diff import tree_diff
from repro.editscript import EditScript
from repro.matching import match_with_keys_then_values

SNAPSHOT_V1 = ("catalog", "acme-products", [
    ("category", "storage", [
        ("product", "sku-1001", [
            ("attr", "name: steel shelf 40in"),
            ("attr", "price: 89"),
            ("desc", "a sturdy shelf for garages and workshops"),
        ]),
        ("product", "sku-1002", [
            ("attr", "name: plastic bin small"),
            ("attr", "price: 7"),
            ("desc", "stackable bin for small parts"),
        ]),
    ]),
    ("category", "lighting", [
        ("product", "sku-2001", [
            ("attr", "name: led work light"),
            ("attr", "price: 35"),
            ("desc", "bright and rugged light for job sites"),
        ]),
    ]),
])

SNAPSHOT_V2 = ("catalog", "acme-products", [
    ("category", "storage", [
        ("product", "sku-1002", [
            ("attr", "name: plastic bin small"),
            ("attr", "price: 8"),  # price bump
            ("desc", "stackable bin for small parts"),
        ]),
    ]),
    ("category", "lighting", [
        ("product", "sku-2001", [
            ("attr", "name: led work light"),
            ("attr", "price: 35"),
            ("desc", "bright and rugged light for job sites and garages"),
        ]),
        # the shelf moved departments (it has built-in lights now!)
        ("product", "sku-1001", [
            ("attr", "name: steel shelf 40in lighted"),
            ("attr", "price: 99"),
            ("desc", "a sturdy shelf for garages and workshops"),
        ]),
    ]),
])


def sku_key(node):
    """Products carry their SKU as the value; category names are stable
    too, so both anchor the matching. Attributes/descriptions are keyless.
    """
    if node.label == "product":
        return ("sku", node.value)
    if node.label == "category":
        return ("category", node.value)
    return None


def main() -> None:
    old = Tree.from_obj(SNAPSHOT_V1)
    new = Tree.from_obj(SNAPSHOT_V2)

    # Hybrid matching: SKUs anchor products instantly (even across category
    # moves); attributes and descriptions match by value.
    matching = match_with_keys_then_values(old, new, sku_key)
    result = tree_diff(old, new, matching=matching)
    assert result.verify(old, new)

    print("warehouse delta (edit script):")
    for op in result.script:
        print("  ", op)
    summary = result.script.summary()
    print("\nsummary:", summary)
    moved_products = [
        op for op in result.script.moves
        if op.node_id in old and old.get(op.node_id).label == "product"
    ]
    print(
        f"products moved between categories: {len(moved_products)} "
        f"(a flat snapshot differ would report these as delete+insert)"
    )

    # Deltas serialize to JSON for the warehouse's change log.
    payload = json.dumps(result.script.to_dicts(), indent=2)
    print("\nserialized delta (first 400 chars):")
    print(payload[:400], "...")

    # And replaying the logged delta on the stored snapshot reproduces V2.
    replayed = EditScript.from_dicts(json.loads(payload)).apply_to(old)
    round_trip = tree_from_dict(tree_to_dict(new))
    from repro import trees_isomorphic
    assert trees_isomorphic(replayed, round_trip)
    print("\nreplaying the logged delta reproduces snapshot V2  [ok]")


if __name__ == "__main__":
    main()
