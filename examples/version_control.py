"""A tiny document version-control system on top of the library.

Combines several pieces: the LaTeX parser (documents in), the delta-based
:class:`~repro.store.VersionStore` (history as head + delta chain), script
inversion (backward travel), and delta-tree rendering (human-readable
"what changed in revision N").

Run:  python examples/version_control.py
"""

from repro import VersionStore, tree_diff, trees_isomorphic
from repro.deltatree import build_delta_tree, change_summary
from repro.ladiff import parse_latex

REVISIONS = [
    # r0: first draft
    """
\\section{Design}

The system keeps one materialized snapshot. Deltas cover history.

\\section{Evaluation}

Numbers pending. We promise they look good.
""",
    # r1: evaluation written, design expanded
    """
\\section{Design}

The system keeps one materialized snapshot. Deltas cover history.
Each delta stores its own inverse for backward travel.

\\section{Evaluation}

Storage drops by most of an order of magnitude. Checkout replays inverses.
""",
    # r2: sections reordered, promise deleted
    """
\\section{Evaluation}

Storage drops by most of an order of magnitude. Checkout replays inverses.

\\section{Design}

The system keeps one materialized snapshot. Deltas cover history.
Each delta stores its own inverse for backward travel.
""",
]


def main() -> None:
    store = VersionStore()
    trees = []
    for index, source in enumerate(REVISIONS):
        tree = parse_latex(source)
        trees.append(tree)
        info = store.commit(tree, f"revision {index}")
        print(
            f"committed v{info.version}: {info.operations} ops, "
            f"cost {info.cost:.1f}  ({info.message})"
        )

    print("\nhistory consistent:", store.verify_history())

    # Reconstruct the first draft from the head + inverse deltas.
    draft = store.checkout(0)
    print("checkout v0 matches original:", trees_isomorphic(draft, trees[0]))

    # Human-readable changelog per revision.
    for version in range(1, len(REVISIONS)):
        old = store.checkout(version - 1)
        new = store.checkout(version)
        result = tree_diff(old, new)
        delta = build_delta_tree(old, new, result.edit)
        print(f"\nv{version - 1} -> v{version}: {change_summary(delta)}")
        for op in result.script:
            print("   ", op)


if __name__ == "__main__":
    main()
