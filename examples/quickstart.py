"""Quickstart: detect changes between two versions of a hierarchical object.

Walks through the library's core loop on the paper's running example
(Figure 1):

1. build two ordered labeled-value trees,
2. find a good matching (FastMatch),
3. generate the minimum conforming edit script (Algorithm EditScript),
4. verify that the script transforms the old tree into the new one,
5. build and print the annotated delta tree.

Run:  python examples/quickstart.py
"""

from repro import Tree, tree_diff
from repro.deltatree import build_delta_tree, change_summary, render_text


def main() -> None:
    # The old version: a document of three paragraphs.
    old = Tree.from_obj(
        ("D", None, [
            ("P", None, [("S", "the first sentence"), ("S", "a doomed sentence")]),
            ("P", None, [("S", "the lonely paragraph")]),
            ("P", None, [("S", "alpha text"), ("S", "beta text"), ("S", "gamma text")]),
        ])
    )
    # The new version: paragraph order changed, one sentence gone, one new.
    new = Tree.from_obj(
        ("D", None, [
            ("P", None, [("S", "the first sentence")]),
            ("P", None, [("S", "alpha text"), ("S", "beta text"),
                          ("S", "gamma text"), ("S", "delta text, brand new")]),
            ("P", None, [("S", "the lonely paragraph")]),
        ])
    )

    print("OLD TREE")
    print(old.pretty())
    print("\nNEW TREE")
    print(new.pretty())

    # One call: matching + minimum conforming edit script.
    result = tree_diff(old, new)

    print("\nEDIT SCRIPT (paper notation)")
    for op in result.script:
        print("  ", op)
    print("script cost:", result.cost())

    # The script provably transforms old into (a tree isomorphic to) new.
    assert result.verify(old, new), "edit script failed verification!"
    print("verification: the script transforms OLD into NEW  [ok]")

    # A delta tree overlays the changes on the new version for display.
    delta = build_delta_tree(old, new, result.edit)
    print("\nDELTA TREE  ({})".format(change_summary(delta)))
    print(render_text(delta))


if __name__ == "__main__":
    main()
