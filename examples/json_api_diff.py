"""Diffing JSON documents with the OEM bridge.

The paper's label-value trees come from the Object Exchange Model for
semi-structured data [PGMW95] — which is exactly what JSON is. This example
monitors a service-health API: each poll returns a JSON payload, and the
differ reports what changed, fires alert rules, and produces a patch that
carries one payload to the next.

Run:  python examples/json_api_diff.py
"""

from repro.deltatree import Rule, RuleEngine, build_delta_tree, render_text, select
from repro.oem import json_diff

POLL_1 = {
    "service": "checkout",
    "region": "us-east",
    "endpoints": [
        {"path": "/cart", "status": "healthy", "p99_ms": 95},
        {"path": "/pay", "status": "healthy", "p99_ms": 180},
        {"path": "/refund", "status": "healthy", "p99_ms": 310},
    ],
    "notes": "all quiet on the checkout front",
}

POLL_2 = {
    "service": "checkout",
    "region": "us-east",
    "endpoints": [
        {"path": "/cart", "status": "healthy", "p99_ms": 102},
        {"path": "/pay", "status": "degraded", "p99_ms": 2400},
        {"path": "/refund", "status": "healthy", "p99_ms": 305},
        {"path": "/pay-v2", "status": "canary", "p99_ms": 150},
    ],
    "notes": "all quiet on the checkout front, except payments",
}


def main() -> None:
    result = json_diff(POLL_1, POLL_2)
    assert result.verify()

    print("edit script between polls:")
    for op in result.script:
        print("  ", op)

    delta = build_delta_tree(result.old_tree, result.new_tree, result.diff.edit)
    print("\nannotated payload structure:")
    print(render_text(delta))

    # Alerting: fire on any changed scalar that mentions a bad status.
    alerts = []
    engine = RuleEngine().add(
        Rule(
            name="status-watch",
            events=("UPD", "INS"),
            condition=lambda m: "degraded" in str(m.node.value),
            action=lambda m: alerts.append(m.pretty_path),
        )
    )
    engine.run(delta)
    print("\nalerts:")
    for path in alerts:
        print("  status degraded at", path)

    # Query: which endpoint objects saw any change?
    changed_scalars = select(delta, path="**/scalar",
                             tags=["UPD", "INS", "DEL"])
    print(f"\nchanged scalar fields: {len(changed_scalars)}")

    # Patch: carry the old payload forward using only the delta.
    patched = result.patch(POLL_1)
    assert patched == POLL_2
    print("patch(POLL_1) == POLL_2  [ok]")


if __name__ == "__main__":
    main()
