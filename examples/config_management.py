"""Configuration management across autonomous databases (paper §1).

"Consider the correlation of data stored in an architect's database with
data stored in an electrician's database, where both databases are for the
same building project. For autonomy reasons, the databases are updated
independently. However, periodic consistent configurations of the entire
design must be produced. This can be done by computing the deltas with
respect to the last configuration and highlighting any conflicts."

This example models the building design as an object hierarchy (building ->
floors -> rooms -> components). Object records carry database ids — but, as
the paper stresses (§5), ids are NOT stable across versions ("the record
representing a pillar ... may have id 778899, but the same pillar in a
subsequent version may have id 12345"), so components are matched by value.
The deltas of the two departments against the shared baseline are computed
and overlapping edits are flagged as conflicts.

Run:  python examples/config_management.py
"""

from repro import Tree, tree_diff
from repro.matching import MatchConfig


def building(version: str) -> Tree:
    """A small building design; versions differ per department's edits."""
    rooms_floor1 = [
        ("room", "lobby", [
            ("component", "pillar concrete 3.2m load-bearing north"),
            ("component", "window double-glazed 2x3 east"),
            ("component", "outlet 120V duplex north wall"),
        ]),
        ("room", "office 101", [
            ("component", "wall drywall interior south"),
            ("component", "outlet 120V duplex west wall"),
            ("component", "light fixture fluorescent ceiling"),
        ]),
    ]
    rooms_floor2 = [
        ("room", "office 201", [
            ("component", "wall drywall interior south"),
            ("component", "light fixture fluorescent ceiling"),
        ]),
    ]

    if version == "architect":
        # The architect widened the lobby window and moved a wall upstairs.
        rooms_floor1[0][2][1] = ("component", "window double-glazed 2x4 east")
        rooms_floor2[0][2].append(("component", "wall glass partition north"))
    elif version == "electrician":
        # The electrician rewired office 101 and added a lobby circuit.
        rooms_floor1[1][2][1] = ("component", "outlet 240V single west wall")
        rooms_floor1[0][2].append(("component", "breaker panel 100A north"))

    return Tree.from_obj(
        ("building", "project 1337", [
            ("floor", "floor 1", rooms_floor1),
            ("floor", "floor 2", rooms_floor2),
        ])
    )


def describe(script, label):
    print(f"\n{label} delta ({len(script)} operations):")
    for op in script:
        print("  ", op)


def main() -> None:
    baseline = building("baseline")
    architect = building("architect")
    electrician = building("electrician")

    # Rooms/floors have stable names; components are keyless and matched by
    # their record values (Criterion 1 on the value, Criterion 2 above).
    config = MatchConfig(f=0.6, t=0.5)

    delta_architect = tree_diff(baseline, architect, config=config)
    delta_electrician = tree_diff(baseline, electrician, config=config)
    assert delta_architect.verify(baseline, architect)
    assert delta_electrician.verify(baseline, electrician)

    describe(delta_architect.script, "architect")
    describe(delta_electrician.script, "electrician")

    # Conflict detection: baseline nodes touched by both departments.
    touched_a = touched_nodes(delta_architect)
    touched_e = touched_nodes(delta_electrician)
    conflicts = touched_a & touched_e
    print("\nconflict check:")
    if conflicts:
        for node_id in sorted(conflicts, key=str):
            node = baseline.get(node_id)
            print(f"  CONFLICT on {node.label} {node.value!r} (node {node_id})")
    else:
        print("  no overlapping edits — configurations can be merged")

    # Produce the periodic consistent configuration (three-way merge).
    from repro.merge import three_way_merge

    merge = three_way_merge(baseline, architect, electrician, config=config)
    print("\nmerged configuration (both departments' edits):")
    print(merge.tree.pretty(show_ids=False))
    if merge.conflicts:
        print("merge conflicts needing human review:")
        for conflict in merge.conflicts:
            print(f"  [{conflict.kind}] {conflict.description}")
    else:
        print("merge completed without conflicts")


def touched_nodes(diff_result):
    """Baseline node ids updated, moved, or deleted by a delta."""
    touched = set()
    for op in diff_result.script.updates:
        touched.add(op.node_id)
    for op in diff_result.script.moves:
        touched.add(op.node_id)
    for op in diff_result.script.deletes:
        touched.add(op.node_id)
    return touched


if __name__ == "__main__":
    main()
