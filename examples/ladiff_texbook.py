"""The paper's Appendix A sample run, end to end.

LaDiff compares the two TeXbook-excerpt documents of Figures 14 and 15 and
produces the marked-up LaTeX of Figure 16: moved sentences get labels and
footnotes, the inserted paragraph is bold, deleted text is small, changed
headings are annotated (ins)/(upd), and a moved paragraph gets a marginal
note.

Run:  python examples/ladiff_texbook.py [output.tex]

With an output path, a standalone compilable LaTeX document is written.
"""

import sys

from repro.deltatree import render_latex
from repro.ladiff import ladiff
from repro.ladiff.fixtures import NEW_TEXBOOK, OLD_TEXBOOK


def main() -> None:
    result = ladiff(OLD_TEXBOOK, NEW_TEXBOOK, format="latex", output="latex")

    print("edit script ({} operations):".format(len(result.script)))
    for op in result.script:
        print("  ", op)
    print("\nchange summary:", result.summary())
    print("verified:", result.diff.verify(result.old_tree, result.new_tree))

    print("\n----- marked-up document (Figure 16) -----\n")
    print(result.output)

    if len(sys.argv) > 1:
        path = sys.argv[1]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(render_latex(result.delta, full_document=True))
        print(f"\nwrote standalone document to {path}")


if __name__ == "__main__":
    main()
