"""Web-page change monitoring — the paper's introductory scenario.

"A user may visit certain (HTML) documents repeatedly and is interested in
knowing how each document has changed since the last visit ... a paragraph
that has moved could be marked with a tombstone in its old position and be
highlighted in its new position."

This example simulates that workflow: it keeps the previous snapshot of a
page (as web browsers already do for caching), diffs it against the new
snapshot, and emits an annotated HTML page plus a textual changelog.

Run:  python examples/html_change_monitor.py [annotated.html]
"""

import sys

from repro.deltatree import render_html
from repro.ladiff import ladiff

SNAPSHOT_MONDAY = """
<html><body>
<h1>Departmental News</h1>
<p>The seminar on query optimization is on Friday. Coffee is provided.</p>
<p>The reading group meets in room 252 this week. Bring the warehouse paper.
We will discuss incremental view maintenance.</p>
<h1>Announcements</h1>
<ul>
  <li>The lab printer is broken again.</li>
  <li>New GPUs arrive next month.</li>
</ul>
<p>Submit travel reimbursements by the end of the quarter.</p>
</body></html>
"""

SNAPSHOT_TUESDAY = """
<html><body>
<h1>Departmental News</h1>
<p>The reading group meets in room 252 this week. Bring the warehouse paper.
We will discuss incremental view maintenance and change detection.</p>
<p>The seminar on query optimization is on Friday. Coffee is provided.</p>
<h1>Announcements</h1>
<ul>
  <li>The lab printer has been fixed.</li>
  <li>New GPUs arrive next month.</li>
  <li>The systems lunch moves to Tuesdays.</li>
</ul>
<p>Submit travel reimbursements by the end of the quarter.</p>
</body></html>
"""


def main() -> None:
    result = ladiff(
        SNAPSHOT_MONDAY, SNAPSHOT_TUESDAY, format="html", output="text"
    )

    print("what changed since your last visit:")
    print("  ", result.summary())
    print("\nedit script:")
    for op in result.script:
        print("  ", op)

    print("\nannotated structure:")
    print(result.output)

    annotated = render_html(result.delta, full_document=True)
    if len(sys.argv) > 1:
        path = sys.argv[1]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(annotated)
        print(f"\nwrote annotated page to {path} (open it in a browser)")
    else:
        print("\n(pass an output path to write the annotated HTML page)")


if __name__ == "__main__":
    main()
