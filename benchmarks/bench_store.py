"""Version-store economics: delta storage vs full snapshots (§1 scenario).

The warehouse motivation says deltas, not copies. This bench commits a
chain of document versions and measures what the store actually saves:
serialized history size vs keeping every snapshot in full, plus commit and
checkout latency.
"""

from __future__ import annotations

import json

from repro import VersionStore, trees_isomorphic
from repro.core.serialization import tree_to_dict
from repro.workload import DocumentSpec, MutationEngine, generate_document

from conftest import print_table

VERSIONS = 8
EDITS_PER_VERSION = 8


def build_chain():
    versions = [generate_document(
        1234, DocumentSpec(sections=6, paragraphs_per_section=6,
                           sentences_per_paragraph=5))]
    for i in range(VERSIONS - 1):
        versions.append(
            MutationEngine(4321 + i).mutate(versions[-1], EDITS_PER_VERSION).tree
        )
    return versions


def measure(versions):
    store = VersionStore()
    for index, version in enumerate(versions):
        store.commit(version, f"rev {index}")
    assert store.verify_history()

    delta_bytes = len(json.dumps(store.to_dict()))
    snapshot_bytes = sum(
        len(json.dumps(tree_to_dict(v))) for v in versions
    )
    # spot-check correctness of the reconstruction path
    assert trees_isomorphic(store.checkout(0), versions[0])
    assert trees_isomorphic(store.checkout(VERSIONS // 2), versions[VERSIONS // 2])
    return {
        "versions": VERSIONS,
        "delta_bytes": delta_bytes,
        "snapshot_bytes": snapshot_bytes,
        "savings": 1.0 - delta_bytes / snapshot_bytes,
        "store": store,
    }


def report(stats):
    print_table(
        f"Version store: {VERSIONS} versions, {EDITS_PER_VERSION} edits each",
        ["storage strategy", "bytes"],
        [
            ("full snapshots", stats["snapshot_bytes"]),
            ("head + delta chain", stats["delta_bytes"]),
            ("savings", f"{stats['savings'] * 100:.0f}%"),
        ],
    )


def test_store_storage_savings(benchmark):
    versions = build_chain()
    stats = benchmark.pedantic(measure, args=(versions,), rounds=1, iterations=1)
    report(stats)
    benchmark.extra_info["savings_pct"] = round(stats["savings"] * 100, 1)
    # deltas must beat storing every snapshot in full
    assert stats["delta_bytes"] < stats["snapshot_bytes"]
    assert stats["savings"] > 0.3


def test_store_commit_latency(benchmark):
    versions = build_chain()

    def commit_all():
        store = VersionStore()
        for version in versions:
            store.commit(version)
        return store

    store = benchmark(commit_all)
    assert len(store) == VERSIONS


def test_store_checkout_latency(benchmark):
    versions = build_chain()
    store = VersionStore()
    for version in versions:
        store.commit(version)
    result = benchmark(lambda: store.checkout(0))
    assert trees_isomorphic(result, versions[0])


if __name__ == "__main__":
    report(measure(build_chain()))
