"""Ablation: the matching thresholds t (Criterion 2) and f (Criterion 1).

LaDiff exposes t as its tunable parameter; f bounds how dissimilar two
matched sentences may be. This bench sweeps both on a fixed mutated-document
workload and reports the resulting script cost and matching size:

* raising **t** makes internal matches harder — fewer matched containers,
  more structural inserts/deletes, higher cost;
* lowering **f** refuses to pair edited sentences — updates turn into
  delete/insert pairs, raising cost (the §3.2 cost-model consistency
  argument made measurable).
"""

from __future__ import annotations

from repro.diff import tree_diff
from repro.ladiff.pipeline import default_match_config
from repro.workload import DocumentSpec, MutationEngine, generate_document

from conftest import print_table


def build_pairs():
    pairs = []
    for seed in range(6):
        base = generate_document(
            700 + seed,
            DocumentSpec(sections=5, paragraphs_per_section=5,
                         sentences_per_paragraph=5),
        )
        edited = MutationEngine(800 + seed).mutate(base, 15).tree
        pairs.append((base, edited))
    return pairs


def sweep_t(pairs):
    rows = []
    for t in (0.5, 0.6, 0.7, 0.8, 0.9, 1.0):
        cost = matched = 0.0
        for base, edited in pairs:
            config = default_match_config(t=t)
            result = tree_diff(base, edited, config=config)
            assert result.verify(base, edited)
            cost += result.cost()
            matched += len(result.matching)
        rows.append({"t": t, "cost": cost, "matched": matched})
    return rows


def sweep_f(pairs):
    rows = []
    for f in (0.1, 0.3, 0.6, 0.9):
        cost = updates = 0.0
        for base, edited in pairs:
            config = default_match_config(f=f)
            result = tree_diff(base, edited, config=config)
            assert result.verify(base, edited)
            cost += result.cost()
            updates += result.script.summary()["update"]
        rows.append({"f": f, "cost": cost, "updates": updates})
    return rows


def report(t_rows, f_rows):
    print_table(
        "Ablation: match threshold t (Criterion 2)",
        ["t", "total script cost", "matched pairs"],
        [(f"{r['t']:.1f}", f"{r['cost']:.1f}", f"{r['matched']:.0f}")
         for r in t_rows],
    )
    print_table(
        "Ablation: leaf threshold f (Criterion 1)",
        ["f", "total script cost", "updates emitted"],
        [(f"{r['f']:.1f}", f"{r['cost']:.1f}", f"{r['updates']:.0f}")
         for r in f_rows],
    )


def test_threshold_ablation(benchmark):
    pairs = build_pairs()

    def run():
        return sweep_t(pairs), sweep_f(pairs)

    t_rows, f_rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(t_rows, f_rows)

    # tightening t can only shrink the matching (strictly fewer pairs pass)
    matched = [r["matched"] for r in t_rows]
    assert matched == sorted(matched, reverse=True)
    # and cost is monotonically non-decreasing within measurement noise
    assert t_rows[-1]["cost"] >= t_rows[0]["cost"]

    # a permissive f preserves updates; a near-zero f forbids most of them
    assert f_rows[-1]["updates"] > f_rows[0]["updates"]
    # and scripts get cheaper as f admits the cheap update pairs
    assert f_rows[-1]["cost"] <= f_rows[0]["cost"]

    benchmark.extra_info["cost_t05"] = round(t_rows[0]["cost"], 1)
    benchmark.extra_info["cost_t10"] = round(t_rows[-1]["cost"], 1)


if __name__ == "__main__":
    report(sweep_t(build_pairs()), sweep_f(build_pairs()))
