"""Three-way merge behavior under growing edit overlap (§1 CAD scenario).

"Periodic consistent configurations of the entire design must be produced
... by computing the deltas with respect to the last configuration and
highlighting any conflicts that have arisen."

Two editors apply the same number of edits to a shared base; a knob moves
their edits from disjoint document regions (first vs second half of the
sections) to fully overlapping ones. The bench reports how much of the
right delta survives the merge and how many conflicts surface.
"""

from __future__ import annotations

import random

from repro.merge import three_way_merge
from repro.workload import DocumentSpec, MutationEngine, generate_document

from conftest import print_table

EDITS_PER_SIDE = 8


def split_document(seed):
    """A base document plus views of its first/second half section sets."""
    base = generate_document(
        seed, DocumentSpec(sections=8, paragraphs_per_section=4,
                           sentences_per_paragraph=4)
    )
    return base


def edit_region(base, seed, region):
    """Mutate only one region: 'left-half', 'right-half', or 'all'."""
    work = base.copy()
    rng = random.Random(seed)
    sections = work.root.children
    half = len(sections) // 2
    if region == "left-half":
        allowed = {s.id for s in sections[:half]}
    elif region == "right-half":
        allowed = {s.id for s in sections[half:]}
    else:
        allowed = {s.id for s in sections}
    allowed_subtree = set()
    for section in sections:
        if section.id in allowed:
            for node in section.preorder():
                allowed_subtree.add(node.id)

    engine = MutationEngine(rng)
    applied = 0
    attempts = 0
    while applied < EDITS_PER_SIDE and attempts < 500:
        attempts += 1
        leaves = [n for n in work.leaves() if n.id in allowed_subtree
                  and n.parent is not None]
        if not leaves:
            break
        leaf = rng.choice(leaves)
        kind = rng.choice(["update", "delete", "insert"])
        if kind == "update":
            work.update(leaf.id, engine._perturb_sentence(str(leaf.value)))
        elif kind == "delete":
            work.delete(leaf.id)
            allowed_subtree.discard(leaf.id)
        else:
            parent = leaf.parent
            node = work.create_node(
                "S", engine._fresh_sentence(), parent=parent,
                position=rng.randint(1, len(parent.children) + 1),
            )
            allowed_subtree.add(node.id)
        applied += 1
    return work


def measure():
    rows = []
    for scenario, left_region, right_region in (
        ("disjoint regions", "left-half", "right-half"),
        ("right overlaps all", "left-half", "all"),
        ("full overlap", "all", "all"),
    ):
        conflicts = applied = skipped = 0
        for seed in range(5):
            base = split_document(3000 + seed)
            left = edit_region(base, 4000 + seed, left_region)
            right = edit_region(base, 5000 + seed, right_region)
            result = three_way_merge(base, left, right)
            conflicts += len(result.conflicts)
            applied += result.applied_right_ops
            skipped += result.skipped_right_ops
        rows.append(
            {
                "scenario": scenario,
                "applied": applied,
                "skipped": skipped,
                "conflicts": conflicts,
            }
        )
    return rows


def report(rows):
    print_table(
        f"Three-way merge: overlap vs conflicts ({EDITS_PER_SIDE} edits/side, 5 trials)",
        ["scenario", "right ops applied", "right ops skipped", "conflicts"],
        [
            (r["scenario"], r["applied"], r["skipped"], r["conflicts"])
            for r in rows
        ],
    )


def test_merge_overlap_sweep(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(rows)
    # disjoint edits merge (almost) cleanly
    assert rows[0]["conflicts"] <= 1
    # conflicts grow with overlap
    assert rows[-1]["conflicts"] >= rows[0]["conflicts"]
    # even under full overlap, most of the right delta still lands
    total = rows[-1]["applied"] + rows[-1]["skipped"]
    assert rows[-1]["applied"] > total * 0.5
    for r in rows:
        benchmark.extra_info[f"conflicts::{r['scenario']}"] = r["conflicts"]


if __name__ == "__main__":
    report(measure())
