"""Serving-layer economics: cache warmth, digests, and worker scaling.

The §1 warehouse ingests periodic snapshot dumps, most of them repeats or
near-repeats of content already seen. This bench measures what the
:mod:`repro.service` layer buys on that workload:

* **warm vs cold cache** — re-diffing a repeated-snapshot batch must be at
  least 1.5× faster once the digest-keyed cache is warm (it is typically
  orders of magnitude faster);
* **digest short-circuits** — identical snapshots complete without running
  any matching;
* **multi-worker scaling** — ≥100 independent pairs fanned over a process
  pool. The speedup assertion is gated on the machine actually having more
  than one usable core (single-core boxes still print the table).

Run directly with ``python benchmarks/bench_service.py`` for the tables, or
``--smoke`` for the tiny correctness-only configuration CI uses.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.service import DiffEngine
from repro.workload import DocumentSpec, MutationEngine, generate_document

from conftest import print_table

SPEC = DocumentSpec(sections=4, paragraphs_per_section=4, sentences_per_paragraph=3)
REPEATED_BATCH = 32      # jobs per batch in the warm/cold measurement
DISTINCT_PAIRS = 8       # distinct contents behind the repeated batch
SCALING_PAIRS = 120      # independent pairs for the worker-scaling table
WORKER_LADDER = (1, 2, 4, 8)


def effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def repeated_snapshot_pairs(batch=REPEATED_BATCH, distinct=DISTINCT_PAIRS, seed=1234):
    """A batch where the same few (old, new) contents recur — the warehouse
    receiving overlapping dumps."""
    base = generate_document(seed, SPEC)
    pool = []
    for i in range(distinct):
        old = MutationEngine(seed + i).mutate(base, 4).tree if i else base
        new = MutationEngine(seed + 100 + i).mutate(old, 8).tree
        pool.append((old, new))
    return [pool[i % distinct] for i in range(batch)]


def independent_pairs(count=SCALING_PAIRS, seed=99):
    """Fully independent pairs (distinct digests): no cache help possible."""
    pairs = []
    for i in range(count):
        base = generate_document(seed + i, SPEC)
        new = MutationEngine(seed * 2 + i).mutate(base, 6).tree
        pairs.append((base, new))
    return pairs


def run_batch(engine, pairs):
    started = time.perf_counter()
    results = engine.map_pairs(pairs)
    elapsed = time.perf_counter() - started
    assert all(r.ok for r in results), [r.error for r in results if not r.ok]
    return elapsed, results


# ---------------------------------------------------------------------------
# Measurements
# ---------------------------------------------------------------------------
def measure_warm_vs_cold(batch=REPEATED_BATCH, distinct=DISTINCT_PAIRS):
    pairs = repeated_snapshot_pairs(batch=batch, distinct=distinct)
    engine = DiffEngine(workers=2)
    try:
        cold_s, _ = run_batch(engine, pairs)    # first sight of each content
        warm_s, results = run_batch(engine, pairs)  # everything cached
    finally:
        engine.close()
    assert all(r.source in ("cache", "digest") for r in results)
    return {
        "batch": batch,
        "distinct": distinct,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "cold_throughput": batch / cold_s,
        "warm_throughput": batch / warm_s,
        "speedup": cold_s / warm_s,
        "metrics": engine.metrics.snapshot(),
    }


def measure_digest_short_circuit(batch=REPEATED_BATCH):
    base = generate_document(77, SPEC)
    identical = [(base, base.copy()) for _ in range(batch)]
    changed = [
        (base, MutationEngine(500 + i).mutate(base, 6).tree) for i in range(batch)
    ]
    engine = DiffEngine(workers=2, cache=None)
    try:
        short_s, results = run_batch(engine, identical)
        full_s, _ = run_batch(engine, changed)
    finally:
        engine.close()
    assert all(r.source == "digest" for r in results)
    return {"short_s": short_s, "full_s": full_s, "speedup": full_s / short_s}


def measure_worker_scaling(count=SCALING_PAIRS, ladder=WORKER_LADDER):
    pairs = independent_pairs(count=count)
    timings = {}
    for workers in ladder:
        engine = DiffEngine(workers=workers, cache=None, executor="process")
        try:
            elapsed, _ = run_batch(engine, pairs)
        finally:
            engine.close()
        timings[workers] = elapsed
    base = timings[ladder[0]]
    return {
        "pairs": count,
        "timings": timings,
        "speedups": {w: base / t for w, t in timings.items()},
        "cores": effective_cores(),
    }


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------
def report_warm_cold(stats):
    print_table(
        f"Service cache: {stats['batch']} jobs, {stats['distinct']} distinct contents",
        ["cache state", "seconds", "pairs/s"],
        [
            ("cold", f"{stats['cold_s']:.3f}", f"{stats['cold_throughput']:.0f}"),
            ("warm", f"{stats['warm_s']:.3f}", f"{stats['warm_throughput']:.0f}"),
            ("speedup", f"{stats['speedup']:.1f}x", ""),
        ],
    )


def report_scaling(stats):
    rows = [
        (w, f"{stats['timings'][w]:.3f}", f"{stats['speedups'][w]:.2f}x")
        for w in sorted(stats["timings"])
    ]
    print_table(
        f"Process-pool scaling: {stats['pairs']} independent pairs "
        f"({stats['cores']} usable cores)",
        ["workers", "seconds", "speedup"],
        rows,
    )


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------
def test_service_warm_cache_throughput(benchmark):
    stats = benchmark.pedantic(measure_warm_vs_cold, rounds=1, iterations=1)
    report_warm_cold(stats)
    benchmark.extra_info["warm_speedup"] = round(stats["speedup"], 1)
    counters = stats["metrics"]["counters"]
    assert counters["cache_hits"] > 0
    # a warm cache must beat recomputation by a wide margin
    assert stats["speedup"] >= 1.5


def test_service_digest_short_circuit(benchmark):
    stats = benchmark.pedantic(measure_digest_short_circuit, rounds=1, iterations=1)
    print_table(
        "Digest short-circuit vs full diff (identical vs mutated snapshots)",
        ["workload", "seconds"],
        [
            ("identical (digest)", f"{stats['short_s']:.3f}"),
            ("mutated (full diff)", f"{stats['full_s']:.3f}"),
            ("speedup", f"{stats['speedup']:.1f}x"),
        ],
    )
    assert stats["speedup"] > 1.0


def test_service_worker_scaling(benchmark):
    stats = benchmark.pedantic(measure_worker_scaling, rounds=1, iterations=1)
    report_scaling(stats)
    best = max(stats["speedups"].values())
    benchmark.extra_info["best_speedup"] = round(best, 2)
    benchmark.extra_info["cores"] = stats["cores"]
    if stats["cores"] >= 2:
        # with real cores available, fanning out must pay
        assert best >= 1.15, f"no multi-worker speedup: {stats['speedups']}"
    else:
        # single-core box: only require that fan-out is not pathological
        assert best > 0.3, f"pathological fan-out overhead: {stats['speedups']}"


# ---------------------------------------------------------------------------
# Direct / CI-smoke execution
# ---------------------------------------------------------------------------
def smoke() -> int:
    """Tiny configuration for CI: exercises every path, asserts correctness
    only (no perf thresholds), finishes in a few seconds."""
    warm = measure_warm_vs_cold(batch=6, distinct=3)
    report_warm_cold(warm)
    assert warm["metrics"]["counters"]["cache_hits"] >= 3

    scaling = measure_worker_scaling(count=8, ladder=(1, 2))
    report_scaling(scaling)
    assert set(scaling["timings"]) == {1, 2}
    print("service benchmark smoke: OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny correctness-only configuration (used by CI)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()
    report_warm_cold(measure_warm_vs_cold())
    report_scaling(measure_worker_scaling())
    return 0


if __name__ == "__main__":
    sys.exit(main())
