"""End-to-end LaDiff over materialized .tex files (the paper's §8 setup).

The paper's experiments ran LaDiff over *files* — "three sets of files
[containing] different versions of a document". This bench recreates that
setup literally: synthetic documents are serialized to LaTeX files on disk,
and the measured pipeline includes reading, parsing, matching, script
generation, and mark-up rendering, i.e. the complete LaDiff program as a
user would run it.
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.ladiff import ladiff_files, write_latex
from repro.workload import DocumentSpec, MutationEngine, generate_document

from conftest import print_table

SETS = [
    ("small", DocumentSpec(sections=4, paragraphs_per_section=4,
                           sentences_per_paragraph=4)),
    ("medium", DocumentSpec(sections=6, paragraphs_per_section=6,
                            sentences_per_paragraph=5)),
    ("large", DocumentSpec(sections=9, paragraphs_per_section=8,
                           sentences_per_paragraph=6)),
]
EDITS = 10


def materialize(directory):
    """Write version pairs of each size to .tex files; return their paths."""
    cases = []
    for index, (name, spec) in enumerate(SETS):
        base = generate_document(2000 + index, spec)
        edited = MutationEngine(2100 + index).mutate(base, EDITS).tree
        old_path = os.path.join(directory, f"{name}_old.tex")
        new_path = os.path.join(directory, f"{name}_new.tex")
        with open(old_path, "w", encoding="utf-8") as handle:
            handle.write(write_latex(base, full_document=True))
        with open(new_path, "w", encoding="utf-8") as handle:
            handle.write(write_latex(edited, full_document=True))
        cases.append((name, old_path, new_path))
    return cases


def measure(cases):
    rows = []
    for name, old_path, new_path in cases:
        start = time.perf_counter()
        result = ladiff_files(old_path, new_path)
        elapsed = time.perf_counter() - start
        assert result.diff.verify(result.old_tree, result.new_tree)
        rows.append(
            {
                "set": name,
                "bytes": os.path.getsize(old_path) + os.path.getsize(new_path),
                "sentences": sum(1 for _ in result.old_tree.leaves()),
                "ops": len(result.script),
                "ms": elapsed * 1e3,
            }
        )
    return rows


def report(rows):
    print_table(
        f"LaDiff end-to-end over .tex files ({EDITS} edits per pair)",
        ["set", "input bytes", "sentences", "script ops", "total ms"],
        [
            (r["set"], r["bytes"], r["sentences"], r["ops"], f"{r['ms']:.1f}")
            for r in rows
        ],
    )


def test_file_corpus_end_to_end(benchmark):
    with tempfile.TemporaryDirectory() as directory:
        cases = materialize(directory)
        rows = benchmark.pedantic(measure, args=(cases,), rounds=1, iterations=1)
    report(rows)
    for r in rows:
        benchmark.extra_info[f"ms_{r['set']}"] = round(r["ms"], 1)
        # deltas stay proportional to the edits, not the document size
        assert r["ops"] < r["sentences"]
    # near-linear end-to-end scaling: 4x content should not cost 40x time
    assert rows[-1]["ms"] < rows[0]["ms"] * 40


def test_single_file_pair_latency(benchmark):
    with tempfile.TemporaryDirectory() as directory:
        cases = materialize(directory)
        _, old_path, new_path = cases[1]
        result = benchmark(lambda: ladiff_files(old_path, new_path))
        assert not result.script.is_empty()


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as directory:
        report(measure(materialize(directory)))
