"""CI perf-regression gate: compare fresh BENCH payloads against a baseline.

The serve/cluster benchmarks print a one-line ``BENCH {json}`` payload and
(with ``--json-out``) write it to a file.  CI used to only upload those
files as artifacts — nobody looked at them until something was already
slow.  This script turns them into a gate:

    python benchmarks/check_regression.py bench-serve.json bench-cluster.json

Each payload is matched to the committed baseline entry by its
``payload["benchmark"]`` name and checked metric-by-metric with a
direction-aware tolerance (default ±30%):

* ``higher`` metrics (speedups) may not drop below ``baseline * (1 - tol)``;
* ``lower`` metrics (latencies) may not rise above ``baseline * (1 + tol)``;
* ``equals`` metrics (invariants: clean drain, zero failed requests) must
  match the baseline exactly — no tolerance.

Only dimensionless ratios and invariants are gated by default; raw
req/s and wall-seconds are machine-bound and recorded for context only.
Re-baseline intentionally with ``--update`` after a justified change.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "baselines", "BENCH_baseline.json"
)
DEFAULT_TOLERANCE = 0.30

#: metric -> (direction, tolerance override or None).  Metrics absent here
#: are informational: recorded in the baseline, never gated.
POLICIES = {
    "bench_serve": {
        # cache-warmth ratios swing with scheduler noise on shared runners;
        # a 50% band still catches a cache that stopped paying at all
        "warm_speedup": ("higher", 0.5),
        # smoke runs have few samples, so p99 is jumpy: 100% band
        "job_p99_ms": ("lower", 1.0),
        "drained_clean": ("equals", None),
    },
    "bench_arena": {
        # wall-clock ratio between the two in-process cores; far less noisy
        # than absolute times but still machine-sensitive on shared runners
        "parse_index_speedup": ("higher", 0.5),
        # allocation shape is deterministic, so the default band suffices
        "mem_ratio": ("lower", None),
    },
    "bench_cluster": {
        "cluster_speedup": ("higher", None),
        "warm_speedup": ("higher", 0.5),
        # restart time is dominated by health-interval + backoff + interpreter
        # start; give it extra slack so a slow runner does not flake the gate
        "restart_s": ("lower", 1.0),
        "kill_failures": ("equals", None),
        "drained_clean": ("equals", None),
    },
    "bench_obs": {
        # overhead ratios vs the same-run untraced baseline; the bench also
        # enforces the hard 1.05x (off) / 1.15x (sampled) gates internally,
        # so these bands only track drift against the committed numbers
        "off_ratio": ("lower", 0.10),
        "sampled_ratio": ("lower", 0.25),
        # every sampled job must land its engine + stage spans, none open
        "spans_ok": ("equals", None),
    },
}


class RegressionError(Exception):
    pass


def load_payload(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    name = payload.get("benchmark")
    if not name:
        raise RegressionError(f"{path}: payload has no 'benchmark' field")
    return payload


def load_baseline(path: str) -> dict:
    if not os.path.exists(path):
        raise RegressionError(
            f"baseline {path} not found; generate with --update"
        )
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check_metric(direction: str, tolerance: float, baseline, current):
    """Return (ok, human-readable limit description)."""
    if direction == "equals":
        return current == baseline, f"== {baseline!r}"
    base = float(baseline)
    cur = float(current)
    if direction == "higher":
        limit = base * (1.0 - tolerance)
        return cur >= limit, f">= {limit:.3f}"
    if direction == "lower":
        limit = base * (1.0 + tolerance)
        return cur <= limit, f"<= {limit:.3f}"
    raise RegressionError(f"unknown direction {direction!r}")


def check_payload(payload: dict, baseline_entry: dict, tolerance: float):
    """Check one payload against its baseline; return a list of result rows."""
    name = payload["benchmark"]
    rows = []
    for metric, (direction, override) in sorted(POLICIES[name].items()):
        if metric not in baseline_entry:
            raise RegressionError(f"{name}: baseline lacks gated metric {metric!r}")
        if metric not in payload:
            raise RegressionError(f"{name}: fresh payload lacks gated metric {metric!r}")
        tol = tolerance if override is None else override
        ok, limit = check_metric(
            direction, tol, baseline_entry[metric], payload[metric]
        )
        rows.append((name, metric, baseline_entry[metric], payload[metric], limit, ok))
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "payloads", nargs="+", metavar="BENCH_JSON",
        help="fresh BENCH payload files written with --json-out",
    )
    parser.add_argument("--baseline", default=DEFAULT_BASELINE, metavar="PATH")
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="fractional tolerance for higher/lower metrics (default 0.30)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline entries from the given payloads instead of gating",
    )
    args = parser.parse_args(argv)

    try:
        payloads = [load_payload(path) for path in args.payloads]

        if args.update:
            baseline = load_baseline(args.baseline) if os.path.exists(args.baseline) else {}
            for payload in payloads:
                baseline[payload["benchmark"]] = payload
            os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
            with open(args.baseline, "w", encoding="utf-8") as handle:
                json.dump(baseline, handle, sort_keys=True, indent=2)
                handle.write("\n")
            print(f"baseline updated: {args.baseline}")
            return 0

        baseline = load_baseline(args.baseline)
        rows = []
        for payload in payloads:
            name = payload["benchmark"]
            if name not in POLICIES:
                raise RegressionError(f"no gate policy for benchmark {name!r}")
            if name not in baseline:
                raise RegressionError(
                    f"baseline has no entry for {name!r}; run with --update first"
                )
            rows.extend(check_payload(payload, baseline[name], args.tolerance))
    except RegressionError as exc:
        print(f"check_regression: error: {exc}", file=sys.stderr)
        return 2

    width = max(len(f"{r[0]}.{r[1]}") for r in rows)
    failed = [r for r in rows if not r[5]]
    for name, metric, base, cur, limit, ok in rows:
        verdict = "ok" if ok else "REGRESSION"
        print(
            f"{name + '.' + metric:<{width}}  baseline={base!r:<8} "
            f"current={cur!r:<8} required {limit:<12} {verdict}"
        )
    if failed:
        print(f"\n{len(failed)} metric(s) regressed beyond tolerance", file=sys.stderr)
        return 1
    print(f"\nall {len(rows)} gated metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
