"""HTTP service economics: overload behavior, drain, and cache warmth.

This bench drives a **real** ``repro-diff serve`` subprocess on an
ephemeral port through real sockets — it is both the load generator for
the acceptance criteria and the perf trajectory for the serving layer:

* **overload** — a burst of 4× the queue capacity must come back as a mix
  of 200s and 429s (never a hang, never a 500), with every accepted
  request completing within its deadline;
* **graceful drain** — SIGTERM must stop the listener, flush in-flight
  work, print the final ``METRICS`` line, and exit 0;
* **cache warmth** — repeating identical pairs against a warm digest-keyed
  cache must be ≥ :data:`MIN_WARM_SPEEDUP`× the cold-compute throughput.

Run directly for the full tables, ``--smoke`` for the CI configuration,
``--json-out PATH`` to also write the ``BENCH`` payload to a file (CI
uploads it as an artifact).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import threading
import time

from repro.serve.client import DiffServiceClient
from repro.workload import MutationEngine, random_tree

from conftest import print_table

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

MIN_WARM_SPEEDUP = 1.5   # warm-cache throughput vs cold, repeated pairs
QUEUE_CAPACITY = 4       # small on purpose: overload must be reachable
BURST_FACTOR = 4         # the acceptance burst is 4x queue capacity
DEADLINE_MS = 20_000.0


# ---------------------------------------------------------------------------
# Server subprocess management
# ---------------------------------------------------------------------------
def _server_env() -> dict:
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def start_server(workers: int = 2, queue_capacity: int = QUEUE_CAPACITY):
    """Launch ``repro-diff serve`` on an ephemeral port; return (proc, port)."""
    cmd = [
        sys.executable, "-m", "repro.cli", "serve",
        "--port", "0",
        "--threads", str(workers),
        "--queue-depth", str(queue_capacity),
        "--deadline-ms", str(DEADLINE_MS),
    ]
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=_server_env(),
    )
    banner: list = []

    def read_banner():
        banner.append(proc.stdout.readline())

    reader = threading.Thread(target=read_banner, daemon=True)
    reader.start()
    reader.join(timeout=30)
    if not banner or "listening on" not in banner[0]:
        proc.kill()
        raise RuntimeError(f"server did not start: {banner or proc.stderr.read()}")
    port = int(banner[0].rsplit(":", 1)[1])
    client = DiffServiceClient(port=port, retries=0)
    assert client.wait_ready(timeout=10), "server bound but /healthz never answered"
    client.close()
    return proc, port


def sigterm_and_collect(proc) -> dict:
    """SIGTERM the server; assert clean drain; return the final METRICS."""
    proc.send_signal(signal.SIGTERM)
    try:
        stdout, stderr = proc.communicate(timeout=15)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise AssertionError("server did not drain within 15s of SIGTERM")
    assert proc.returncode == 0, (
        f"unclean drain: exit={proc.returncode} stderr={stderr[-500:]}"
    )
    metrics_lines = [line for line in stdout.splitlines() if line.startswith("METRICS ")]
    assert metrics_lines, f"no final METRICS dump in stdout: {stdout[-500:]}"
    return json.loads(metrics_lines[-1][len("METRICS "):])


# ---------------------------------------------------------------------------
# Workload
# ---------------------------------------------------------------------------
def snapshot_pairs(count: int, seed: int = 1996):
    """Distinct (old, new) snapshot pairs with realistic mutation deltas."""
    pairs = []
    for i in range(count):
        old = random_tree(seed + i)
        new = MutationEngine(seed + 1000 + i).mutate(old, 6).tree
        pairs.append((old, new))
    return pairs


# ---------------------------------------------------------------------------
# Measurements
# ---------------------------------------------------------------------------
def measure_overload(port: int, queue_capacity: int) -> dict:
    """Fire a 4x-capacity concurrent burst of raw (non-retrying) requests."""
    burst = BURST_FACTOR * queue_capacity
    pairs = snapshot_pairs(1, seed=777)
    old, new = pairs[0]
    outcomes: list = []
    lock = threading.Lock()
    barrier = threading.Barrier(burst)

    def fire(n: int) -> None:
        client = DiffServiceClient(port=port, retries=0, client_id=f"burst-{n}")
        barrier.wait()
        started = time.perf_counter()
        try:
            status, payload, _ = client.request_once(
                "POST",
                "/v1/diff",
                {
                    "old": client._wire_tree(old),
                    "new": client._wire_tree(new),
                    "include_script": False,
                },
            )
        except Exception as exc:  # a hang/reset would surface here
            status, payload = -1, {"error": f"{type(exc).__name__}: {exc}"}
        elapsed = time.perf_counter() - started
        client.close()
        with lock:
            outcomes.append((status, elapsed, payload))

    threads = [threading.Thread(target=fire, args=(n,)) for n in range(burst)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not any(t.is_alive() for t in threads), "burst request hung"

    statuses = sorted({status for status, _, _ in outcomes})
    accepted = [e for s, e, _ in outcomes if s == 200]
    rejected = [p for s, _, p in outcomes if s == 429]
    assert set(statuses) <= {200, 429}, f"unexpected statuses under burst: {statuses}"
    assert rejected, f"burst of {burst} never saw a 429 (capacity {queue_capacity})"
    assert accepted, "burst starved completely; expected some accepted requests"
    assert all(e < DEADLINE_MS / 1000.0 for e in accepted), (
        "an accepted request blew its deadline"
    )
    assert all("retry_after_s" in p for p in rejected), "429 without Retry-After"
    return {
        "burst": burst,
        "queue_capacity": queue_capacity,
        "accepted": len(accepted),
        "rejected_429": len(rejected),
        "accepted_max_s": round(max(accepted), 3),
    }


def measure_warm_vs_cold(port: int, distinct: int) -> dict:
    """Cold pass computes *distinct* pairs; warm pass repeats them (cache)."""
    pairs = snapshot_pairs(distinct)
    client = DiffServiceClient(port=port, retries=2)
    wired = [
        (client._wire_tree(old), client._wire_tree(new)) for old, new in pairs
    ]

    def one_pass() -> float:
        started = time.perf_counter()
        for old, new in wired:
            out = client.request(
                "POST",
                "/v1/diff",
                {"old": old, "new": new, "include_script": False},
            )
            assert out["status"] == "ok"
        return time.perf_counter() - started

    cold_s = one_pass()   # every pair computed for the first time
    warm_s = one_pass()   # identical pairs: digest-keyed cache hits
    metrics = client.metrics()
    client.close()
    assert metrics["counters"]["cache_hits"] >= distinct, (
        f"warm pass did not hit the cache: {metrics['counters']}"
    )
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    return {
        "distinct_pairs": distinct,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "warm_speedup": round(speedup, 3),
        "p99_ms": metrics["wall_time"]["p99_ms"],
    }


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------
def run(distinct: int, json_out: str = None) -> dict:
    proc, port = start_server(workers=2, queue_capacity=QUEUE_CAPACITY)
    try:
        warm = measure_warm_vs_cold(port, distinct=distinct)
        overload = measure_overload(port, QUEUE_CAPACITY)
    except BaseException:
        proc.kill()
        raise
    final = sigterm_and_collect(proc)

    print_table(
        "warm vs cold throughput (repeated identical pairs)",
        ["distinct pairs", "cold s", "warm s", "speedup", "job p99 ms"],
        [[
            warm["distinct_pairs"], warm["cold_s"], warm["warm_s"],
            f"{warm['warm_speedup']:.2f}x", warm["p99_ms"],
        ]],
    )
    print_table(
        f"overload burst ({BURST_FACTOR}x queue capacity)",
        ["burst", "capacity", "accepted", "429s", "max accepted s"],
        [[
            overload["burst"], overload["queue_capacity"], overload["accepted"],
            overload["rejected_429"], overload["accepted_max_s"],
        ]],
    )
    assert warm["warm_speedup"] >= MIN_WARM_SPEEDUP, (
        f"warm cache did not pay: {warm['warm_speedup']:.2f}x "
        f"< required {MIN_WARM_SPEEDUP}x"
    )
    assert final["counters"]["rejected_queue_full"] >= 1

    payload = {
        "benchmark": "bench_serve",
        "warm_speedup": warm["warm_speedup"],
        "cold_s": warm["cold_s"],
        "warm_s": warm["warm_s"],
        "job_p99_ms": warm["p99_ms"],
        "burst": overload["burst"],
        "accepted": overload["accepted"],
        "rejected_429": overload["rejected_429"],
        "drained_clean": True,
        "final_jobs_succeeded": final["counters"]["jobs_succeeded"],
    }
    print("BENCH " + json.dumps(payload, sort_keys=True))
    if json_out:
        with open(json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
        print(f"wrote {json_out}")
    return payload


# ---------------------------------------------------------------------------
# pytest-benchmark entry point
# ---------------------------------------------------------------------------
def test_serve_warm_cache_pays(benchmark):
    payload = benchmark.pedantic(lambda: run(distinct=6), rounds=1, iterations=1)
    benchmark.extra_info["warm_speedup"] = payload["warm_speedup"]
    benchmark.extra_info["rejected_429"] = payload["rejected_429"]
    assert payload["warm_speedup"] >= MIN_WARM_SPEEDUP
    assert payload["rejected_429"] >= 1


# ---------------------------------------------------------------------------
# Direct / CI-smoke execution
# ---------------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small configuration exercising every assertion (used by CI)",
    )
    parser.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="also write the BENCH payload to PATH (CI artifact)",
    )
    args = parser.parse_args(argv)
    run(distinct=6 if args.smoke else 24, json_out=args.json_out)
    print("serve benchmark: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
