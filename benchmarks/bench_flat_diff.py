"""Flat diff drawbacks (§2): moves reported as delete+insert pairs.

"Furthermore, these utilities do not detect moves of data — moves are
always reported as deletions and insertions."

We build documents where k paragraphs are moved (content otherwise
untouched) and compare: the tree differ reports k unit-cost moves; the flat
line differ reports one delete and one insert per moved *line*. The flat
delta therefore grows with the amount of moved text while the tree delta
stays equal to the number of moves.
"""

from __future__ import annotations


from repro.baselines import flat_diff, undetected_moves
from repro.diff import tree_diff
from repro.ladiff.pipeline import default_match_config
from repro.workload import DocumentSpec, MutationMix, MutationEngine, generate_document

from conftest import print_table

MOVE_ONLY_MIX = MutationMix(
    insert_leaf=0, delete_leaf=0, update_leaf=0, move_leaf=0,
    move_subtree=1.0, insert_subtree=0, delete_subtree=0,
)


def build_cases():
    cases = []
    for moves in (1, 3, 6, 10):
        base = generate_document(
            500 + moves,
            DocumentSpec(sections=5, paragraphs_per_section=5,
                         sentences_per_paragraph=5),
        )
        engine = MutationEngine(600 + moves, mix=MOVE_ONLY_MIX)
        mutated = engine.mutate(base, moves)
        cases.append((moves, base, mutated.tree))
    return cases


def measure(cases):
    rows = []
    for moves, base, edited in cases:
        tree_result = tree_diff(base, edited, config=default_match_config())
        assert tree_result.verify(base, edited)
        flat_result = flat_diff(base, edited)
        rows.append(
            {
                "moves": moves,
                "tree_ops": len(tree_result.script),
                "tree_cost": tree_result.cost(),
                "flat_changes": flat_result.total_changes,
                "missed_moves": undetected_moves(base, edited),
            }
        )
    return rows


def report(rows):
    print_table(
        "Flat line diff vs tree diff on paragraph-move workloads",
        ["paragraph moves", "tree-diff ops", "tree-diff cost",
         "flat changed lines", "flat missed moves"],
        [
            (r["moves"], r["tree_ops"], f"{r['tree_cost']:.0f}",
             r["flat_changes"], r["missed_moves"])
            for r in rows
        ],
    )


def test_flat_diff_misses_moves(benchmark):
    cases = build_cases()
    rows = benchmark.pedantic(measure, args=(cases,), rounds=1, iterations=1)
    report(rows)
    for r in rows:
        # the tree differ represents each subtree move with ~1 op, so its
        # script stays at (or near) the true move count...
        assert r["tree_ops"] <= 3 * r["moves"]
        # ...while the flat diff pays one delete + one insert per moved line.
        assert r["flat_changes"] >= 2 * r["missed_moves"]
        assert r["missed_moves"] >= 1
        benchmark.extra_info[f"flat_lines_at_{r['moves']}_moves"] = r["flat_changes"]
    # the flat delta grows much faster than the tree delta
    assert rows[-1]["flat_changes"] > rows[-1]["tree_ops"] * 3


def test_flat_diff_wallclock(benchmark):
    _, base, edited = build_cases()[-1]
    benchmark(lambda: flat_diff(base, edited))


if __name__ == "__main__":
    report(measure(build_cases()))
