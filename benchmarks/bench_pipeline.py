"""Pipeline index payoff: Criterion-2 and FindPos, indexed vs unindexed.

The :class:`repro.core.index.TreeIndex` the pipeline shares across stages
replaces two hot ad-hoc walks:

* **Criterion-2** (Section 5.2): ``common(x, y)`` iterated ``x.leaves()``
  and climbed parent chains per leaf; the index iterates a flat leaf span
  and answers containment with one interval comparison.
* **FindPos** (Figure 9): the legacy scan walks every left sibling from
  slot 1; the index locates the node in O(1) and scans backwards to the
  nearest in-order sibling.

Both are measured on the Figure 13(a) document workload (move-heavy
mutation mix over synthetic papers) by running the *same* production code
paths with and without indexes. The combined speedup must be >= 1.3x —
the refactor's headline claim. A ``BENCH {json}`` line is emitted for CI
to scrape.

Run directly with ``python benchmarks/bench_pipeline.py`` for the table,
or ``--smoke`` for the fast correctness-only configuration CI uses.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.index import TreeIndex
from repro.editscript.generator import _Generator
from repro.matching.criteria import CriteriaContext
from repro.matching.fastmatch import fast_match
from repro.workload import MutationMix, generate_document
from repro.workload.documents import DocumentSpec

from conftest import print_table

#: Same document-editing mix as bench_fig13a: whole-paragraph moves dominate.
MOVE_HEAVY_MIX = MutationMix(
    insert_leaf=1.0,
    delete_leaf=1.0,
    update_leaf=1.0,
    move_leaf=0.5,
    move_subtree=2.0,
    insert_subtree=0.2,
    delete_subtree=0.2,
)

#: Fig. 13(a) set-C shape: the largest of the paper's three document sets.
SPEC = DocumentSpec(sections=8, paragraphs_per_section=8,
                    sentences_per_paragraph=6)
MIN_SPEEDUP = 1.3


def document_pair(seed=47, edits=32, spec=SPEC):
    from repro.workload import MutationEngine

    old = generate_document(seed, spec)
    new = MutationEngine(seed + 1, mix=MOVE_HEAVY_MIX).mutate(old, edits).tree
    return old, new


def _time(fn, rounds):
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


# ---------------------------------------------------------------------------
# Criterion 2: common(x, y) / internals_equal over internal-node pairs
# ---------------------------------------------------------------------------
def measure_criterion2(old, new, matching, rounds=3):
    """Evaluate Criterion 2 for every same-label internal pair, both ways."""
    internals1 = [n for n in old.preorder() if not n.is_leaf]
    internals2 = {}
    for node in new.preorder():
        if not node.is_leaf:
            internals2.setdefault(node.label, []).append(node)
    pairs = [
        (x, y) for x in internals1 for y in internals2.get(x.label, ())
    ]

    def evaluate(context):
        hits = 0
        for x, y in pairs:
            if context.internals_equal(x, y, matching):
                hits += 1
        return hits

    indexed_context = CriteriaContext(
        old, new, index1=TreeIndex(old), index2=TreeIndex(new)
    )
    unindexed_context = CriteriaContext(old, new)
    # Same verdicts through both code paths, or the speedup is meaningless.
    assert evaluate(indexed_context) == evaluate(unindexed_context)
    indexed_s = _time(lambda: evaluate(indexed_context), rounds)
    unindexed_s = _time(lambda: evaluate(unindexed_context), rounds)
    return {
        "pairs": len(pairs),
        "indexed_s": indexed_s,
        "unindexed_s": unindexed_s,
        "speedup": unindexed_s / indexed_s,
    }


# ---------------------------------------------------------------------------
# FindPos: sibling-anchor search after a full generator run
# ---------------------------------------------------------------------------
def measure_findpos(old, new, matching, rounds=3):
    """Call the real ``_find_pos`` on every T2 node, both code paths.

    The generator is run to completion first so the in-order marks and the
    total matching M' are exactly the algorithm's end state; FindPos is
    then re-evaluated for every placed node — the worst (and common) case
    where every left sibling is marked in order.
    """
    index2 = TreeIndex(new)
    generators = {}
    for key, index in (("indexed", index2), ("unindexed", None)):
        generator = _Generator(old, new, matching, index2=index)
        generator.run()
        assert not generator.wrapped  # document roots always match
        generators[key] = generator
    targets = [n for n in new.preorder() if n.parent is not None]

    def evaluate(generator):
        total = 0
        for node in targets:
            total += generator._find_pos(node, None)
        return total

    assert evaluate(generators["indexed"]) == evaluate(generators["unindexed"])
    indexed_s = _time(lambda: evaluate(generators["indexed"]), rounds)
    unindexed_s = _time(lambda: evaluate(generators["unindexed"]), rounds)
    return {
        "calls": len(targets),
        "indexed_s": indexed_s,
        "unindexed_s": unindexed_s,
        "speedup": unindexed_s / indexed_s,
    }


def measure(seed=47, edits=32, spec=SPEC, rounds=3):
    old, new = document_pair(seed=seed, edits=edits, spec=spec)
    matching = fast_match(old, new)
    criterion2 = measure_criterion2(old, new, matching, rounds=rounds)
    findpos = measure_findpos(old, new, matching, rounds=rounds)
    combined_unindexed = criterion2["unindexed_s"] + findpos["unindexed_s"]
    combined_indexed = criterion2["indexed_s"] + findpos["indexed_s"]
    return {
        "nodes": len(old),
        "criterion2": criterion2,
        "findpos": findpos,
        "combined_speedup": combined_unindexed / combined_indexed,
    }


def report(stats):
    rows = [
        (
            name,
            results["pairs"] if "pairs" in results else results["calls"],
            f"{results['unindexed_s'] * 1e3:.2f}",
            f"{results['indexed_s'] * 1e3:.2f}",
            f"{results['speedup']:.2f}x",
        )
        for name, results in (
            ("criterion-2", stats["criterion2"]),
            ("findpos", stats["findpos"]),
        )
    ]
    print_table(
        f"TreeIndex payoff on the Fig. 13(a) document workload "
        f"({stats['nodes']} nodes)",
        ["hot path", "evaluations", "unindexed ms", "indexed ms", "speedup"],
        rows,
    )
    print(f"combined speedup = {stats['combined_speedup']:.2f}x "
          f"(required >= {MIN_SPEEDUP}x)")
    print("BENCH " + json.dumps({
        "benchmark": "bench_pipeline",
        "nodes": stats["nodes"],
        "criterion2_speedup": round(stats["criterion2"]["speedup"], 3),
        "findpos_speedup": round(stats["findpos"]["speedup"], 3),
        "combined_speedup": round(stats["combined_speedup"], 3),
    }))


# ---------------------------------------------------------------------------
# pytest-benchmark entry point
# ---------------------------------------------------------------------------
def test_pipeline_index_speedup(benchmark):
    stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(stats)
    benchmark.extra_info["criterion2_speedup"] = round(
        stats["criterion2"]["speedup"], 2
    )
    benchmark.extra_info["findpos_speedup"] = round(
        stats["findpos"]["speedup"], 2
    )
    assert stats["combined_speedup"] >= MIN_SPEEDUP
    assert stats["criterion2"]["speedup"] >= MIN_SPEEDUP


# ---------------------------------------------------------------------------
# Direct / CI-smoke execution
# ---------------------------------------------------------------------------
def smoke() -> int:
    """Small configuration for CI: both paths agree and indexing pays."""
    stats = measure(
        spec=DocumentSpec(sections=4, paragraphs_per_section=5,
                          sentences_per_paragraph=4),
        edits=16,
        rounds=2,
    )
    report(stats)
    assert stats["combined_speedup"] >= MIN_SPEEDUP
    print("pipeline benchmark smoke: OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fast configuration (used by CI)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()
    stats = measure()
    report(stats)
    if stats["combined_speedup"] < MIN_SPEEDUP:
        print(f"FAIL: combined speedup below {MIN_SPEEDUP}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
