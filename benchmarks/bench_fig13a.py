"""Figure 13(a): weighted edit distance e versus unweighted distance d.

Paper: "the relationship between e and d is close to linear ... the variance
with respect to the three document sets is not high ... The average value of
e/d is 3.4 for these documents."

We run FastMatch + EditScript on all version pairs within each of the three
synthetic document sets, measure (d, e) of the produced scripts, and report
the e/d series per set. Expected shape: near-linear growth of e with d and a
set-insensitive e/d ratio. The absolute ratio depends on how much of the
workload is subtree moves (which weigh |x|); the mutation mix used here is
paragraph-move heavy to mirror document editing.
"""

from __future__ import annotations

from repro.analysis import result_distances
from repro.diff import tree_diff
from repro.ladiff.pipeline import default_match_config
from repro.workload import MutationMix, make_document_set
from repro.workload.documents import DocumentSpec

from conftest import print_table

#: Document-editing mix: moves of whole paragraphs dominate, as in the
#: paper's "conference paper versions" (sections reshuffled, text edited).
MOVE_HEAVY_MIX = MutationMix(
    insert_leaf=1.0,
    delete_leaf=1.0,
    update_leaf=1.0,
    move_leaf=0.5,
    move_subtree=2.0,
    insert_subtree=0.2,
    delete_subtree=0.2,
)

SETS = [
    ("set-A (small)", 11, DocumentSpec(sections=4, paragraphs_per_section=5,
                                       sentences_per_paragraph=4)),
    ("set-B (medium)", 23, DocumentSpec(sections=6, paragraphs_per_section=6,
                                        sentences_per_paragraph=5)),
    ("set-C (large)", 47, DocumentSpec(sections=8, paragraphs_per_section=8,
                                       sentences_per_paragraph=6)),
]


def collect_points():
    """All (set, n, d, e) points across version pairs of the three sets."""
    points = []
    for name, seed, spec in SETS:
        document_set = make_document_set(
            name, seed=seed, spec=spec,
            edit_counts=(0, 4, 8, 16, 32), mix=MOVE_HEAVY_MIX,
        )
        for older, newer in document_set.pairs():
            config = default_match_config()
            result = tree_diff(older.tree, newer.tree, config=config)
            assert result.verify(older.tree, newer.tree)
            distances = result_distances(older.tree, result.edit)
            if distances.unweighted == 0:
                continue
            leaves = sum(1 for _ in older.tree.leaves())
            points.append(
                {
                    "set": name,
                    "n": leaves,
                    "d": distances.unweighted,
                    "e": distances.weighted,
                    "ratio": distances.ratio,
                }
            )
    return points


def report(points):
    rows = [
        (p["set"], p["n"], p["d"], f"{p['e']:.0f}", f"{p['ratio']:.2f}")
        for p in sorted(points, key=lambda p: (p["set"], p["d"]))
    ]
    print_table(
        "Figure 13(a): weighted (e) vs unweighted (d) edit distance",
        ["document set", "n (leaves)", "d", "e", "e/d"],
        rows,
    )
    ratios = [p["ratio"] for p in points]
    average = sum(ratios) / len(ratios)
    print(f"average e/d = {average:.2f}  (paper: 3.4 on its own corpus)")
    return average


def test_fig13a_e_vs_d(benchmark):
    points = benchmark.pedantic(collect_points, rounds=1, iterations=1)
    average = report(points)
    benchmark.extra_info["average_e_over_d"] = round(average, 3)
    benchmark.extra_info["pairs_measured"] = len(points)

    # --- Shape assertions (the reproduction claims) ---
    # e grows with d within each set: positive correlation.
    by_set = {}
    for p in points:
        by_set.setdefault(p["set"], []).append(p)
    for name, set_points in by_set.items():
        set_points.sort(key=lambda p: p["d"])
        low = sum(p["e"] for p in set_points[: len(set_points) // 2])
        high = sum(p["e"] for p in set_points[len(set_points) // 2 :])
        assert high > low, f"{name}: e does not grow with d"
    # e >= the non-update share of d, and e/d stays in a sane band.
    assert 1.0 <= average <= 6.0
    # Set-to-set variance of the mean ratio is low (paper: "not high").
    means = [
        sum(p["ratio"] for p in pts) / len(pts) for pts in by_set.values()
    ]
    assert max(means) - min(means) < 2.5


if __name__ == "__main__":
    report(collect_points())
