"""Tracing overhead: the observability layer must be close to free.

Three configurations of the same synchronous diff workload, interleaved
round-robin so machine drift hits all of them equally:

* **baseline** — no :class:`~repro.obs.Tracer` attached at all;
* **off** — a tracer attached with ``fraction=0.0`` and no inbound trace
  context: the per-request cost is one sampling decision;
* **sampled** — every job traced (``fraction=1.0``): an ``engine`` span,
  four synthesized ``stage.*`` children, and ring-buffer appends per job.

The gate is on the p50 ratios, not absolute times:

* ``off_ratio``      = off p50 / baseline p50      must stay ≤ 1.05;
* ``sampled_ratio``  = sampled p50 / baseline p50  must stay ≤ 1.15.

Run directly for the full measurement, ``--smoke`` for the CI
configuration, ``--json-out PATH`` to write the ``BENCH`` payload that
``check_regression.py`` gates against the committed baseline.
"""

from __future__ import annotations

import argparse
import json
import statistics
import time

from repro.obs.trace import Tracer
from repro.service.engine import DiffEngine
from repro.workload import MutationEngine, random_tree

from conftest import print_table

MAX_OFF_RATIO = 1.05      # tracing installed but idle: ≤ 5% over baseline
MAX_SAMPLED_RATIO = 1.15  # 100% sampling: ≤ 15% over baseline


def snapshot_pairs(count: int, seed: int = 2024):
    pairs = []
    for i in range(count):
        old = random_tree(seed + i)
        new = MutationEngine(seed + 500 + i).mutate(old, 6).tree
        pairs.append((old, new))
    return pairs


def make_engine(mode: str):
    """One single-worker engine per mode; caching off so every job computes."""
    if mode == "baseline":
        return DiffEngine(workers=1, cache=None)
    fraction = 0.0 if mode == "off" else 1.0
    return DiffEngine(
        workers=1, cache=None, tracer=Tracer(fraction=fraction, capacity=65536)
    )


def one_pass(engine, pairs, traced: bool):
    """Diff every pair once; return the per-job wall times in seconds."""
    times = []
    for index, (old, new) in enumerate(pairs):
        trace = None
        if traced:
            trace_id = engine.tracer.maybe_trace()
            trace = (trace_id, None)
        started = time.perf_counter()
        result = engine.diff(old, new, job_id=f"job-{index}", trace=trace)
        times.append(time.perf_counter() - started)
        assert result.status == "ok", result.error
    return times


def measure(pairs, repeats: int) -> dict:
    engines = {mode: make_engine(mode) for mode in ("baseline", "off", "sampled")}
    samples = {mode: [] for mode in engines}
    try:
        for mode, engine in engines.items():  # warmup: JIT-less, but warms allocators
            one_pass(engine, pairs[:2], traced=(mode == "sampled"))
        for _ in range(repeats):
            for mode, engine in engines.items():
                samples[mode].extend(
                    one_pass(engine, pairs, traced=(mode == "sampled"))
                )
    finally:
        for engine in engines.values():
            engine.close()

    p50 = {mode: statistics.median(ts) for mode, ts in samples.items()}
    stats = engines["sampled"].tracer.stats()
    jobs = repeats * len(pairs)
    # Every sampled job must have produced its engine span + 4 stage spans.
    spans_ok = stats["spans_recorded"] >= jobs * 5 and stats["spans_open"] == 0
    return {
        "benchmark": "bench_obs",
        "jobs_per_mode": jobs,
        "baseline_p50_ms": round(p50["baseline"] * 1000.0, 4),
        "off_p50_ms": round(p50["off"] * 1000.0, 4),
        "sampled_p50_ms": round(p50["sampled"] * 1000.0, 4),
        "off_ratio": round(p50["off"] / p50["baseline"], 4),
        "sampled_ratio": round(p50["sampled"] / p50["baseline"], 4),
        "spans_recorded": stats["spans_recorded"],
        "spans_ok": spans_ok,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI configuration")
    parser.add_argument("--json-out", metavar="PATH",
                        help="also write the BENCH payload to a file")
    args = parser.parse_args()

    pairs = snapshot_pairs(8 if args.smoke else 24)
    payload = measure(pairs, repeats=3 if args.smoke else 8)

    print_table(
        "tracing overhead (per-job p50 over identical workloads)",
        ["mode", "p50 ms", "ratio vs baseline"],
        [
            ["baseline", payload["baseline_p50_ms"], "1.0000"],
            ["off", payload["off_p50_ms"], f"{payload['off_ratio']:.4f}"],
            ["sampled", payload["sampled_p50_ms"],
             f"{payload['sampled_ratio']:.4f}"],
        ],
    )

    print("BENCH " + json.dumps(payload, sort_keys=True))
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
            handle.write("\n")

    assert payload["spans_ok"], (
        f"sampled pass lost spans: {payload['spans_recorded']} recorded "
        f"for {payload['jobs_per_mode']} jobs"
    )
    assert payload["off_ratio"] <= MAX_OFF_RATIO, (
        f"idle tracer costs {payload['off_ratio']:.3f}x "
        f"(gate {MAX_OFF_RATIO}x)"
    )
    assert payload["sampled_ratio"] <= MAX_SAMPLED_RATIO, (
        f"full sampling costs {payload['sampled_ratio']:.3f}x "
        f"(gate {MAX_SAMPLED_RATIO}x)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
