"""Simulation-harness economics: virtual seconds replayed per wall second.

The point of :mod:`repro.simtest` is that failure timelines which take
minutes of wall-clock in the real cluster replay in milliseconds under
``SimClock``. This bench quantifies that and guards the properties CI
relies on:

* **determinism** — every scenario's event log is byte-identical across
  two runs at the same seed (the ``repro-diff simtest --seed S`` contract);
* **coverage** — the full matrix passes across a band of seeds;
* **speed** — the whole matrix, every seed, finishes well inside the CI
  smoke budget (a wall-clock regression here means a real sleep leaked
  back into the simulated stack).

Run directly for the table, ``--smoke`` for the CI configuration,
``--json-out PATH`` to also write the ``BENCH`` payload to a file.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.simtest import SCENARIOS, build_scenario, run_scenario  # noqa: E402

from conftest import print_table  # noqa: E402

#: CI budget for the whole smoke run, seconds (the ISSUE gate is < 30).
SMOKE_BUDGET_S = 30.0


def run_band(seeds) -> dict:
    """Run the full matrix for each seed; return per-scenario aggregates."""
    rows = {}
    failures = []
    for name in sorted(SCENARIOS):
        wall = virtual = events = requests = 0.0
        logs_match = True
        for seed in seeds:
            started = time.perf_counter()
            result = run_scenario(build_scenario(name, seed=seed))
            wall += time.perf_counter() - started
            if not result.ok:
                failures.append((name, seed, result.violations))
            virtual += result.stats["virtual_elapsed_s"]
            events += len(result.log)
            requests += len(result.records)
            if seed == seeds[0]:
                rerun = run_scenario(build_scenario(name, seed=seed))
                logs_match &= rerun.event_jsonl() == result.event_jsonl()
        rows[name] = {
            "wall_s": round(wall, 4),
            "virtual_s": round(virtual, 3),
            "speedup": round(virtual / wall, 1) if wall else 0.0,
            "events": int(events),
            "requests": int(requests),
            "deterministic": logs_match,
        }
    return {"rows": rows, "failures": failures}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI configuration: fewer seeds, hard budget")
    parser.add_argument("--seeds", type=int, default=None,
                        help="seeds per scenario (default: 10, smoke: 3)")
    parser.add_argument("--json-out", metavar="PATH", default=None,
                        help="also write the BENCH payload to this file")
    args = parser.parse_args()

    seed_count = args.seeds if args.seeds is not None else (3 if args.smoke else 10)
    seeds = list(range(seed_count))

    started = time.perf_counter()
    band = run_band(seeds)
    total_wall = time.perf_counter() - started

    header = ["scenario", "wall_s", "virtual_s", "speedup",
              "events", "deterministic"]
    table = [
        [name, row["wall_s"], row["virtual_s"], f'{row["speedup"]}x',
         row["events"], "yes" if row["deterministic"] else "NO"]
        for name, row in sorted(band["rows"].items())
    ]
    print_table("simtest scenario matrix", header, table)
    print(f"total: {len(SCENARIOS)} scenarios x {seed_count} seeds "
          f"in {total_wall:.2f}s wall")

    ok = not band["failures"] and all(
        row["deterministic"] for row in band["rows"].values()
    )
    for name, seed, violations in band["failures"]:
        print(f"FAIL {name} seed {seed}: {violations}", file=sys.stderr)
    if args.smoke and total_wall > SMOKE_BUDGET_S:
        print(f"FAIL smoke budget: {total_wall:.2f}s > {SMOKE_BUDGET_S}s",
              file=sys.stderr)
        ok = False

    payload = {
        "bench": "simtest",
        "mode": "smoke" if args.smoke else "full",
        "seeds": seed_count,
        "total_wall_s": round(total_wall, 3),
        "total_virtual_s": round(
            sum(row["virtual_s"] for row in band["rows"].values()), 3
        ),
        "ok": ok,
        "scenarios": band["rows"],
    }
    print("BENCH " + json.dumps(payload, sort_keys=True))
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
