"""Ablation: the §8 post-processing pass under Criterion-3 violations.

DESIGN.md calls out the repair pass as a design choice; this bench measures
what it buys. We inject duplicate sentences (violating Criterion 3), run
FastMatch with and without post-processing, and compare the resulting edit
script costs. Expectation: post-processing never hurts and reduces the cost
whenever a duplicate got cross-matched; with no duplicates it is a no-op.
"""

from __future__ import annotations

from repro.diff import tree_diff
from repro.ladiff.pipeline import default_match_config
from repro.workload import DocumentGenerator, DocumentSpec, MutationEngine, MutationMix

from conftest import print_table

#: Deletes and moves are what make duplicate sentences dangerous: the LCS
#: sweep then pairs surviving copies across paragraphs.
CHURN_MIX = MutationMix(
    insert_leaf=0.5, delete_leaf=1.5, update_leaf=0.5, move_leaf=2.0,
    move_subtree=2.0, insert_subtree=0.1, delete_subtree=0.5,
)


def measure(duplicate_rate, seeds=range(12), edits=20):
    total_with = total_without = repairs = 0.0
    for seed in seeds:
        spec = DocumentSpec(
            sections=5,
            paragraphs_per_section=5,
            sentences_per_paragraph=5,
            duplicate_sentence_rate=duplicate_rate,
        )
        base = DocumentGenerator(seed).document(spec)
        edited = MutationEngine(seed + 50, mix=CHURN_MIX).mutate(base, edits).tree
        config = default_match_config()
        with_pp = tree_diff(base, edited, config=config, postprocess=True)
        without_pp = tree_diff(base, edited, config=config, postprocess=False)
        assert with_pp.verify(base, edited)
        assert without_pp.verify(base, edited)
        total_with += with_pp.cost()
        total_without += without_pp.cost()
        repairs += with_pp.postprocess_repairs
    return {
        "duplicate_rate": duplicate_rate,
        "cost_with": total_with,
        "cost_without": total_without,
        "repairs": repairs,
    }


def collect():
    return [measure(rate) for rate in (0.0, 0.1, 0.25)]


def report(rows):
    print_table(
        "Ablation: §8 post-processing pass (edit-script cost, 12 documents)",
        ["duplicate rate", "cost w/o postprocess", "cost w/ postprocess",
         "repairs made"],
        [
            (
                f"{r['duplicate_rate']:.2f}", f"{r['cost_without']:.1f}",
                f"{r['cost_with']:.1f}", f"{r['repairs']:.0f}",
            )
            for r in rows
        ],
    )


def test_postprocess_ablation(benchmark):
    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    report(rows)
    for r in rows:
        benchmark.extra_info[
            f"repairs_at_{r['duplicate_rate']}"
        ] = r["repairs"]
        # never worse than skipping the pass (allow float jitter)
        assert r["cost_with"] <= r["cost_without"] + 1e-6
    # with no duplicates the pass is (nearly) inert
    assert rows[0]["repairs"] <= 2
    # with duplicates it fires and shortens the scripts
    assert rows[-1]["repairs"] > 5
    assert rows[-1]["cost_with"] < rows[-1]["cost_without"]


if __name__ == "__main__":
    report(collect())
