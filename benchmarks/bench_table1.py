"""Table 1: upper bound on mismatched paragraphs vs match threshold t.

Paper (for its document corpus):

    t:            0.5  0.6  0.7  0.8  0.9  1.0
    mismatch %:    -    1    3    7    9   10

The estimator counts paragraphs satisfying the *necessary* condition for a
mismatch: more than ``(1 - t) * |x|`` of their leaves violate Matching
Criterion 3 (see ``repro.analysis.mismatch``). The reproduction claims are
the shape: monotone non-decreasing in t, near zero at t = 0.5, and bounded
by a small percentage at t = 1.0 when documents have few near-duplicate
sentences.
"""

from __future__ import annotations

from repro.analysis import mismatch_upper_bound
from repro.workload import DocumentGenerator, DocumentSpec, MutationEngine

from conftest import print_table

THRESHOLDS = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

#: A duplicate rate chosen so some Criterion-3 violations exist (as in real
#: documents: "legal documents may have many sentences that are almost
#: identical"), without dominating the corpus.
DUPLICATE_RATE = 0.015


def collect_estimates():
    """Average the flagged-paragraph percentage across several documents."""
    totals = {t: [0, 0] for t in THRESHOLDS}  # t -> [flagged, total]
    for seed in range(6):
        generator = DocumentGenerator(seed)
        spec = DocumentSpec(
            sections=6,
            paragraphs_per_section=6,
            sentences_per_paragraph=5,
            duplicate_sentence_rate=DUPLICATE_RATE,
        )
        old = generator.document(spec)
        new = MutationEngine(seed + 100).mutate(old, 12).tree
        for estimate in mismatch_upper_bound(old, new, thresholds=THRESHOLDS):
            totals[estimate.t][0] += estimate.flagged
            totals[estimate.t][1] += estimate.total
    return {
        t: (100.0 * flagged / total if total else 0.0)
        for t, (flagged, total) in totals.items()
    }


def report(percentages):
    rows = [
        tuple(f"{t:.1f}" for t in THRESHOLDS),
        tuple(f"{percentages[t]:.1f}" for t in THRESHOLDS),
    ]
    print_table(
        "Table 1: upper bound on mismatched paragraphs (%)",
        ["t=" + f"{t:.1f}" for t in THRESHOLDS],
        [rows[1]],
    )
    print("paper's corpus:  -   1    3    7    9    10   (same monotone shape)")


def test_table1_mismatch_bound(benchmark):
    percentages = benchmark.pedantic(collect_estimates, rounds=1, iterations=1)
    report(percentages)
    for t in THRESHOLDS:
        benchmark.extra_info[f"pct_at_t{t}"] = round(percentages[t], 2)

    values = [percentages[t] for t in THRESHOLDS]
    # --- Shape assertions ---
    # 1. Monotone non-decreasing in t (Table 1's defining property).
    assert values == sorted(values)
    # 2. Near zero at t = 0.5 (a mismatch needs a majority of ambiguous
    #    leaves there).
    assert values[0] <= 2.0
    # 3. Bounded: even at t = 1.0 only a small fraction is at risk.
    assert values[-1] <= 30.0
    # 4. Something is flagged at t = 1.0 (the duplicates are detectable).
    assert values[-1] > 0.0


def test_table1_no_duplicates_all_zero():
    """Without near-duplicate sentences, the bound vanishes entirely."""
    generator = DocumentGenerator(3)
    old = generator.document(DocumentSpec(sections=4, duplicate_sentence_rate=0.0))
    new = MutationEngine(7).mutate(old, 8).tree
    estimates = mismatch_upper_bound(old, new, thresholds=THRESHOLDS)
    # the synthetic vocabulary can still produce rare accidental closeness;
    # require near-zero rather than exactly zero
    assert all(estimate.percent <= 5.0 for estimate in estimates)


if __name__ == "__main__":
    report(collect_estimates())
