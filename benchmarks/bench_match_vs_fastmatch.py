"""Match vs FastMatch: the §5.3 comparison-count claim.

"A comparison of Formula (2) with Formula (1) shows that Algorithm FastMatch
is substantially faster than Algorithm Match when e is small compared to n,
as is typically the case."

We measure actual leaf comparisons (r1) and wall-clock time of both
algorithms over growing documents with a fixed, small number of edits, and
check that FastMatch's advantage grows with n.
"""

from __future__ import annotations

import time

from repro.ladiff.pipeline import default_match_config
from repro.matching import MatchingStats, fast_match, match
from repro.workload import DocumentSpec, MutationEngine, generate_document

from conftest import print_table

SIZES = [
    ("small", DocumentSpec(sections=3, paragraphs_per_section=4,
                           sentences_per_paragraph=4)),
    ("medium", DocumentSpec(sections=6, paragraphs_per_section=6,
                            sentences_per_paragraph=5)),
    ("large", DocumentSpec(sections=10, paragraphs_per_section=8,
                           sentences_per_paragraph=6)),
]
EDITS = 8


def build_pairs():
    pairs = []
    for index, (name, spec) in enumerate(SIZES):
        base = generate_document(100 + index, spec)
        edited = MutationEngine(200 + index).mutate(base, EDITS).tree
        pairs.append((name, base, edited))
    return pairs


def measure(pairs):
    rows = []
    for name, base, edited in pairs:
        config = default_match_config()
        n = sum(1 for _ in base.leaves()) + sum(1 for _ in edited.leaves())

        slow_stats = MatchingStats()
        start = time.perf_counter()
        slow = match(base, edited, config, stats=slow_stats)
        slow_time = time.perf_counter() - start

        fast_stats = MatchingStats()
        start = time.perf_counter()
        fast = fast_match(base, edited, config, stats=fast_stats)
        fast_time = time.perf_counter() - start

        rows.append(
            {
                "workload": name,
                "n": n,
                "match_r1": slow_stats.leaf_compares,
                "fast_r1": fast_stats.leaf_compares,
                "r1_ratio": slow_stats.leaf_compares / max(1, fast_stats.leaf_compares),
                "match_ms": slow_time * 1e3,
                "fast_ms": fast_time * 1e3,
                "same_pairs": set(slow.pairs()) == set(fast.pairs()),
            }
        )
    return rows


def report(rows):
    print_table(
        f"Match vs FastMatch ({EDITS} edits, growing n)",
        ["workload", "n", "Match r1", "FastMatch r1", "r1 ratio",
         "Match ms", "FastMatch ms", "same matching"],
        [
            (
                r["workload"], r["n"], r["match_r1"], r["fast_r1"],
                f"{r['r1_ratio']:.1f}x", f"{r['match_ms']:.1f}",
                f"{r['fast_ms']:.1f}", "yes" if r["same_pairs"] else "no",
            )
            for r in rows
        ],
    )


def test_match_vs_fastmatch_comparisons(benchmark):
    pairs = build_pairs()
    rows = benchmark.pedantic(measure, args=(pairs,), rounds=1, iterations=1)
    report(rows)
    for r in rows:
        benchmark.extra_info[f"r1_ratio_{r['workload']}"] = round(r["r1_ratio"], 2)
        # FastMatch never does more comparisons than Match here
        assert r["fast_r1"] <= r["match_r1"]
    # the advantage grows with n (e fixed): the paper's asymptotic claim
    ratios = [r["r1_ratio"] for r in rows]
    assert ratios[-1] > ratios[0]


def test_fastmatch_wallclock_large(benchmark):
    _, base, edited = build_pairs()[-1]
    config = default_match_config()
    benchmark(lambda: fast_match(base, edited, config))


def test_match_wallclock_large(benchmark):
    _, base, edited = build_pairs()[-1]
    config = default_match_config()
    benchmark(lambda: match(base, edited, config))


if __name__ == "__main__":
    report(measure(build_pairs()))
