"""Figure 13(b): FastMatch running time (comparisons) versus e.

Paper: the vertical axis is "the running time as measured by the number of
comparisons made by FastMatch"; "on the average, FastMatch makes
approximately 20 times fewer comparisons than those predicted by the
analytical bound"; the relation to e is "approximately linear ... although
there is a high variance."

We instrument FastMatch's two comparison kinds (r1 = leaf compares, r2 =
partner checks), compute the weighted edit distance e of the resulting
script, and compare the measured total against the Appendix B bound
``(ne + e^2) c + 2lne``.
"""

from __future__ import annotations

from repro.analysis import fastmatch_bound, result_distances, tree_pair_sizes
from repro.editscript import generate_edit_script
from repro.ladiff.pipeline import default_match_config
from repro.matching import MatchingStats, fast_match

from conftest import print_table

from bench_fig13a import MOVE_HEAVY_MIX, SETS


def collect_points():
    points = []
    for name, seed, spec in SETS:
        document_set = make_document_set(
            name, seed=seed, spec=spec,
            edit_counts=(0, 4, 8, 16, 32), mix=MOVE_HEAVY_MIX,
        )
        for older, newer in document_set.pairs():
            config = default_match_config()
            stats = MatchingStats()
            matching = fast_match(older.tree, newer.tree, config, stats=stats)
            result = generate_edit_script(older.tree, newer.tree, matching)
            distances = result_distances(older.tree, result)
            if distances.weighted == 0:
                continue
            sizes = tree_pair_sizes(older.tree, newer.tree)
            measured = stats.leaf_compares + stats.partner_checks
            bound = fastmatch_bound(sizes, distances.weighted, c=1.0)
            points.append(
                {
                    "set": name,
                    "e": distances.weighted,
                    "r1": stats.leaf_compares,
                    "r2": stats.partner_checks,
                    "measured": measured,
                    "bound": bound,
                    "slack": bound / measured,
                }
            )
    return points


def report(points):
    rows = [
        (
            p["set"], f"{p['e']:.0f}", p["r1"], p["r2"], p["measured"],
            f"{p['bound']:.0f}", f"{p['slack']:.1f}x",
        )
        for p in sorted(points, key=lambda p: (p["set"], p["e"]))
    ]
    print_table(
        "Figure 13(b): FastMatch comparisons vs weighted edit distance e",
        ["document set", "e", "r1 (compares)", "r2 (partner)", "measured",
         "analytical bound", "bound/measured"],
        rows,
    )
    average_slack = sum(p["slack"] for p in points) / len(points)
    print(
        f"average bound/measured = {average_slack:.1f}x "
        f"(paper: ~20x — the bound is loose)"
    )
    return average_slack


def test_fig13b_comparisons_vs_e(benchmark):
    points = benchmark.pedantic(collect_points, rounds=1, iterations=1)
    average_slack = report(points)
    benchmark.extra_info["average_bound_over_measured"] = round(average_slack, 2)

    # --- Shape assertions ---
    # 1. Measured work is always below the analytical bound,
    for p in points:
        assert p["measured"] < p["bound"]
    # 2. and far below on average (the paper's ~20x looseness claim).
    assert average_slack > 5.0
    # 3. Measured comparisons grow with e (roughly linear trend).
    ordered = sorted(points, key=lambda p: p["e"])
    low = ordered[: len(ordered) // 3]
    high = ordered[-len(ordered) // 3 :]
    mean = lambda pts: sum(p["measured"] for p in pts) / len(pts)  # noqa: E731
    assert mean(high) > mean(low)


if __name__ == "__main__":
    report(collect_points())
