"""Cluster economics: sharded throughput, cache affinity, and failover.

This bench drives real ``repro-diff serve --workers N`` clusters (front
router + N worker subprocesses) through real sockets and gates the three
properties the cluster exists for:

* **throughput scaling** — a 4-worker cluster must beat the single-process
  server by ``min(2.0, 0.55 x cores)`` on distinct-pair load. On the >= 4
  vCPU CI runners that is the acceptance gate of >= 2.0x (each worker is
  its own interpreter, so matching escapes the single GIL); on smaller
  machines the gate degrades honestly — a 1-core box cannot double
  CPU-bound throughput no matter how it is sharded, so there the gate only
  bounds the router's overhead;
* **cache affinity** — repeating identical pairs must keep the warm >=
  :data:`MIN_WARM_SPEEDUP` x cold gate *through the router*: consistent
  hashing sends a repeated body to the worker that already holds the
  cached script, so per-worker caches compound instead of diluting;
* **failover** — SIGKILLing a worker mid-burst must be invisible: every
  client request still succeeds (router replays onto ring successors,
  clients ride out the restart window), and the supervisor must restart
  the worker afterwards.

Run directly for the full tables, ``--smoke`` for the CI configuration,
``--json-out PATH`` to write the ``BENCH`` payload for
``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import threading
import time

from repro.serve.client import DiffServiceClient
from repro.workload import MutationEngine, random_tree
from repro.workload.random_trees import RandomTreeSpec

from conftest import print_table

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

MIN_WARM_SPEEDUP = 1.5      # warm-cache throughput vs cold, via the router
CLUSTER_WORKERS = 4         # the acceptance topology
PER_CORE_SPEEDUP = 0.55     # conservative per-extra-core scaling expectation
SINGLE_CORE_FLOOR = 0.45    # 1 core: no parallelism to win, only overhead to bound
DEADLINE_MS = 30_000.0


def throughput_gate(cores: int) -> float:
    """The required cluster/single speedup on a machine with *cores* cores.

    >= 2.0 on the 4-vCPU CI runners (the acceptance criterion); on smaller
    machines the gate shrinks to what the hardware permits.  On a single
    core four worker processes cannot beat one process — the gate there
    only bounds router+proxy+scheduling overhead (cluster >= 0.45x single).
    """
    if cores <= 1:
        return SINGLE_CORE_FLOOR
    return min(2.0, PER_CORE_SPEEDUP * cores)


# ---------------------------------------------------------------------------
# Server subprocess management
# ---------------------------------------------------------------------------
def _server_env() -> dict:
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def start_cluster(
    workers: int,
    threads: int = 1,
    queue_capacity: int = 64,
    cache_size: int = 256,
):
    """Launch ``repro-diff serve --workers N``; return (proc, port)."""
    cmd = [
        sys.executable, "-m", "repro.cli", "serve",
        "--port", "0",
        "--workers", str(workers),
        "--threads", str(threads),
        "--queue-depth", str(queue_capacity),
        "--cache-size", str(cache_size),
        "--deadline-ms", str(DEADLINE_MS),
    ]
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=_server_env(),
    )
    banner: list = []

    def read_banner():
        banner.append(proc.stdout.readline())

    reader = threading.Thread(target=read_banner, daemon=True)
    reader.start()
    reader.join(timeout=120)
    if not banner or "listening on" not in banner[0]:
        proc.kill()
        raise RuntimeError(f"server did not start: {banner or proc.stderr.read()}")
    port = int(banner[0].rsplit(":", 1)[1])
    client = DiffServiceClient(port=port, retries=0)
    assert client.wait_ready(timeout=30), "front bound but /healthz never answered"
    client.close()
    return proc, port


def sigterm_and_collect(proc) -> dict:
    """SIGTERM the cluster; assert clean drain; return the final METRICS."""
    proc.send_signal(signal.SIGTERM)
    try:
        stdout, stderr = proc.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise AssertionError("cluster did not drain within 60s of SIGTERM")
    assert proc.returncode == 0, (
        f"unclean drain: exit={proc.returncode} stderr={stderr[-500:]}"
    )
    metrics_lines = [line for line in stdout.splitlines() if line.startswith("METRICS ")]
    assert metrics_lines, f"no final METRICS dump in stdout: {stdout[-500:]}"
    return json.loads(metrics_lines[-1][len("METRICS "):])


# ---------------------------------------------------------------------------
# Workload
# ---------------------------------------------------------------------------
#: Heavy snapshots (several hundred nodes, ~tens of ms per diff): compute
#: must dominate the proxy hop or the throughput gate measures HTTP framing.
HEAVY_SPEC = RandomTreeSpec(max_depth=6, min_children=4, max_children=7)


def snapshot_pairs(count: int, seed: int = 1996):
    """Distinct (old, new) snapshot pairs with realistic mutation deltas."""
    pairs = []
    for i in range(count):
        old = random_tree(seed + i, HEAVY_SPEC)
        new = MutationEngine(seed + 1000 + i).mutate(old, 10).tree
        pairs.append((old, new))
    return pairs


def wire_pairs(pairs):
    client = DiffServiceClient(port=1)  # only used for serialization
    return [(client._wire_tree(old), client._wire_tree(new)) for old, new in pairs]


# ---------------------------------------------------------------------------
# Measurements
# ---------------------------------------------------------------------------
def measure_throughput(port: int, wired, clients: int, requests: int) -> dict:
    """Requests/second of *clients* concurrent threads firing diffs."""
    outcomes: list = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def worker(n: int) -> None:
        client = DiffServiceClient(
            port=port, retries=4, client_id=f"tput-{n}", timeout=60.0
        )
        barrier.wait()
        ok = 0
        for i in range(requests):
            old, new = wired[(n * requests + i) % len(wired)]
            out = client.request(
                "POST", "/v1/diff",
                {"old": old, "new": new, "include_script": False},
            )
            if out.get("status") == "ok":
                ok += 1
        client.close()
        with lock:
            outcomes.append(ok)

    threads = [threading.Thread(target=worker, args=(n,)) for n in range(clients)]
    for t in threads:
        t.start()
    barrier.wait()
    started = time.perf_counter()
    for t in threads:
        t.join(timeout=600)
    elapsed = time.perf_counter() - started
    assert not any(t.is_alive() for t in threads), "throughput worker hung"
    total = clients * requests
    assert sum(outcomes) == total, f"failed requests: {total - sum(outcomes)}"
    return {
        "clients": clients,
        "requests": total,
        "elapsed_s": round(elapsed, 4),
        "rps": round(total / elapsed, 3),
    }


def measure_affinity_warmth(port: int, wired) -> dict:
    """Warm vs cold through the router: affinity must keep caches hot."""
    client = DiffServiceClient(port=port, retries=4, timeout=60.0)

    def one_pass() -> float:
        started = time.perf_counter()
        for old, new in wired:
            out = client.request(
                "POST", "/v1/diff",
                {"old": old, "new": new, "include_script": False},
            )
            assert out["status"] == "ok"
        return time.perf_counter() - started

    cold_s = one_pass()   # every pair computed for the first time
    warm_s = one_pass()   # identical bodies hash to the same warm shard
    metrics = client.metrics()
    client.close()
    merged_hits = metrics["counters"].get("cache_hits", 0)
    assert merged_hits >= len(wired), (
        f"affinity routing missed the warm shards: merged cache_hits="
        f"{merged_hits} < {len(wired)} repeats: {metrics['counters']}"
    )
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    return {
        "distinct_pairs": len(wired),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "warm_speedup": round(speedup, 3),
        "merged_cache_hits": merged_hits,
        "shards_hit": sum(
            1
            for snap in metrics["workers"].values()
            if snap["counters"].get("jobs_submitted", 0) > 0
        ),
    }


def measure_kill_under_load(port: int, wired, clients: int, requests: int) -> dict:
    """SIGKILL one worker mid-burst; every client request must succeed."""
    probe = DiffServiceClient(port=port, retries=2)
    health = probe.healthz()
    victim_id, victim = sorted(health["workers"].items())[0]
    victim_pid = victim["pid"]
    outcomes: list = []
    failures: list = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def worker(n: int) -> None:
        client = DiffServiceClient(
            port=port, retries=6, connect_retries=10,
            client_id=f"kill-{n}", timeout=60.0,
        )
        barrier.wait()
        for i in range(requests):
            old, new = wired[(n * requests + i) % len(wired)]
            try:
                out = client.request(
                    "POST", "/v1/diff",
                    {"old": old, "new": new, "include_script": False},
                )
                ok = out.get("status") == "ok"
            except Exception as exc:  # any surfaced error is a gate failure
                ok = False
                with lock:
                    failures.append(f"{type(exc).__name__}: {exc}")
            with lock:
                outcomes.append(ok)
        client.close()

    threads = [threading.Thread(target=worker, args=(n,)) for n in range(clients)]
    for t in threads:
        t.start()
    barrier.wait()
    # Let the burst get airborne, then kill a worker under it.
    time.sleep(0.2)
    os.kill(victim_pid, signal.SIGKILL)
    killed_at = time.monotonic()
    for t in threads:
        t.join(timeout=600)
    assert not any(t.is_alive() for t in threads), "kill-burst request hung"
    total = clients * requests
    succeeded = sum(outcomes)

    # The supervisor must bring the worker back (fresh pid, restart count).
    restart_s = None
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        health = probe.healthz()
        info = health["workers"][victim_id]
        if (
            health["workers_up"] == len(health["workers"])
            and info["restarts"] >= 1
            and info["pid"] != victim_pid
        ):
            restart_s = time.monotonic() - killed_at
            break
        time.sleep(0.2)
    probe.close()
    assert succeeded == total, (
        f"{total - succeeded} of {total} requests failed during worker kill: "
        f"{failures[:5]}"
    )
    assert restart_s is not None, "killed worker was never restarted"
    return {
        "requests": total,
        "failed": total - succeeded,
        "killed_worker": victim_id,
        "restart_s": round(restart_s, 3),
    }


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------
def run(
    distinct: int,
    clients: int,
    requests: int,
    json_out: str = None,
) -> dict:
    cores = os.cpu_count() or 1
    gate = throughput_gate(cores)
    wired = wire_pairs(snapshot_pairs(distinct))

    # Throughput runs disable the result cache: with it, the repeated-pair
    # workload degenerates to cache-hit serving, which measures proxy
    # overhead rather than the compute scaling the gate is about.
    # -- single-process baseline ------------------------------------------
    proc, port = start_cluster(workers=1, threads=2, cache_size=0)
    try:
        single = measure_throughput(port, wired, clients, requests)
    finally:
        proc.send_signal(signal.SIGTERM)
        proc.communicate(timeout=60)

    # -- the 4-worker cluster ---------------------------------------------
    proc, port = start_cluster(workers=CLUSTER_WORKERS, threads=1, cache_size=0)
    try:
        cluster = measure_throughput(port, wired, clients, requests)
    except BaseException:
        proc.kill()
        raise
    final = sigterm_and_collect(proc)

    # -- cache affinity (caches on, fresh cluster) ------------------------
    proc, port = start_cluster(workers=CLUSTER_WORKERS, threads=1)
    try:
        warm = measure_affinity_warmth(port, wired)
    except BaseException:
        proc.kill()
        raise
    sigterm_and_collect(proc)

    # -- kill a worker under load -----------------------------------------
    proc, port = start_cluster(workers=2, threads=1)
    try:
        kill = measure_kill_under_load(port, wired, clients, requests)
    except BaseException:
        proc.kill()
        raise
    sigterm_and_collect(proc)

    speedup = cluster["rps"] / single["rps"] if single["rps"] else float("inf")
    print_table(
        f"throughput: {CLUSTER_WORKERS}-worker cluster vs single process "
        f"({cores} cores, gate {gate:.2f}x)",
        ["topology", "clients", "requests", "elapsed s", "req/s"],
        [
            ["single", single["clients"], single["requests"],
             single["elapsed_s"], single["rps"]],
            [f"{CLUSTER_WORKERS} workers", cluster["clients"],
             cluster["requests"], cluster["elapsed_s"], cluster["rps"]],
        ],
    )
    print_table(
        "cache affinity through the router (repeated identical pairs)",
        ["distinct", "cold s", "warm s", "speedup", "merged hits", "shards hit"],
        [[
            warm["distinct_pairs"], warm["cold_s"], warm["warm_s"],
            f"{warm['warm_speedup']:.2f}x", warm["merged_cache_hits"],
            warm["shards_hit"],
        ]],
    )
    print_table(
        "worker SIGKILL under load",
        ["requests", "failed", "killed", "restart s"],
        [[kill["requests"], kill["failed"], kill["killed_worker"],
          kill["restart_s"]]],
    )

    assert speedup >= gate, (
        f"cluster did not pay: {speedup:.2f}x < required {gate:.2f}x "
        f"({cores} cores)"
    )
    assert warm["warm_speedup"] >= MIN_WARM_SPEEDUP, (
        f"affinity-routed warm cache did not pay: {warm['warm_speedup']:.2f}x "
        f"< required {MIN_WARM_SPEEDUP}x"
    )
    assert kill["failed"] == 0
    assert final["counters"]["jobs_submitted"] >= clients * requests

    payload = {
        "benchmark": "bench_cluster",
        "cores": cores,
        "workers": CLUSTER_WORKERS,
        "single_rps": single["rps"],
        "cluster_rps": cluster["rps"],
        "cluster_speedup": round(speedup, 3),
        "throughput_gate": gate,
        "warm_speedup": warm["warm_speedup"],
        "merged_cache_hits": warm["merged_cache_hits"],
        "kill_requests": kill["requests"],
        "kill_failures": kill["failed"],
        "restart_s": kill["restart_s"],
        "drained_clean": True,
    }
    print("BENCH " + json.dumps(payload, sort_keys=True))
    if json_out:
        with open(json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
        print(f"wrote {json_out}")
    return payload


# ---------------------------------------------------------------------------
# pytest-benchmark entry point
# ---------------------------------------------------------------------------
def test_cluster_pays(benchmark):
    payload = benchmark.pedantic(
        lambda: run(distinct=6, clients=2, requests=4), rounds=1, iterations=1
    )
    benchmark.extra_info["cluster_speedup"] = payload["cluster_speedup"]
    benchmark.extra_info["kill_failures"] = payload["kill_failures"]
    assert payload["kill_failures"] == 0
    assert payload["cluster_speedup"] >= payload["throughput_gate"]


# ---------------------------------------------------------------------------
# Direct / CI-smoke execution
# ---------------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small configuration exercising every gate (used by CI)",
    )
    parser.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="write the BENCH payload to PATH (check_regression.py input)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        run(distinct=6, clients=2, requests=4, json_out=args.json_out)
    else:
        run(distinct=16, clients=4, requests=12, json_out=args.json_out)
    print("cluster benchmark: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
