"""Our pipeline vs the Zhang-Shasha [ZS89] baseline (§2 comparison).

The paper: "[ZS89] runs in time O(n^2 log^2 n) for balanced trees ... our
algorithm runs in time O(ne + e^2)". The practical consequence: with a fixed
number of edits, ZS's cost explodes with document size while FastMatch +
EditScript stays near-linear. We time both on growing documents and check
that the speedup grows with n.

(ZS sizes are kept modest — that is the point of the comparison.)
"""

from __future__ import annotations

import time

from repro.baselines import zhang_shasha_distance
from repro.diff import tree_diff
from repro.ladiff.pipeline import default_match_config
from repro.workload import DocumentSpec, MutationEngine, generate_document

from conftest import print_table

SIZES = [
    ("small", DocumentSpec(sections=4, paragraphs_per_section=4,
                           sentences_per_paragraph=4)),
    ("medium", DocumentSpec(sections=6, paragraphs_per_section=6,
                            sentences_per_paragraph=5)),
    ("large", DocumentSpec(sections=8, paragraphs_per_section=8,
                           sentences_per_paragraph=5)),
]
EDITS = 4


def build_pairs():
    pairs = []
    for index, (name, spec) in enumerate(SIZES):
        base = generate_document(300 + index, spec)
        edited = MutationEngine(400 + index).mutate(base, EDITS).tree
        pairs.append((name, base, edited))
    return pairs


def measure(pairs):
    rows = []
    for name, base, edited in pairs:
        n = len(base) + len(edited)

        start = time.perf_counter()
        result = tree_diff(base, edited, config=default_match_config())
        ours_time = time.perf_counter() - start
        assert result.verify(base, edited)

        start = time.perf_counter()
        zs = zhang_shasha_distance(base, edited)
        zs_time = time.perf_counter() - start

        rows.append(
            {
                "workload": name,
                "n": n,
                "ours_ms": ours_time * 1e3,
                "ours_cost": result.cost(),
                "zs_ms": zs_time * 1e3,
                "zs_cost": zs,
                "speedup": zs_time / max(ours_time, 1e-9),
            }
        )
    return rows


def report(rows):
    print_table(
        f"FastMatch+EditScript vs Zhang-Shasha ({EDITS} edits)",
        ["workload", "n (nodes)", "ours ms", "ours cost", "ZS ms", "ZS cost",
         "speedup"],
        [
            (
                r["workload"], r["n"], f"{r['ours_ms']:.1f}",
                f"{r['ours_cost']:.1f}", f"{r['zs_ms']:.1f}",
                f"{r['zs_cost']:.0f}", f"{r['speedup']:.0f}x",
            )
            for r in rows
        ],
    )


def test_ours_vs_zhangshasha_scaling(benchmark):
    pairs = build_pairs()
    rows = benchmark.pedantic(measure, args=(pairs,), rounds=1, iterations=1)
    report(rows)
    for r in rows:
        benchmark.extra_info[f"speedup_{r['workload']}"] = round(r["speedup"], 1)
    # the gap widens as n grows with e fixed (quadratic vs ~linear)
    speedups = [r["speedup"] for r in rows]
    assert speedups[-1] > speedups[0]
    # on the largest workload the speedup is large
    assert speedups[-1] > 5


def test_zhangshasha_wallclock_small(benchmark):
    _, base, edited = build_pairs()[0]
    benchmark(lambda: zhang_shasha_distance(base, edited))


def test_ours_wallclock_medium(benchmark):
    _, base, edited = build_pairs()[-1]
    config = default_match_config()
    benchmark(lambda: tree_diff(base, edited, config=config))


if __name__ == "__main__":
    report(measure(build_pairs()))
