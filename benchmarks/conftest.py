"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module reproduces one table or figure from the paper's
evaluation (see DESIGN.md §3). Benchmarks print their paper-style table to
stdout (run ``pytest benchmarks/ --benchmark-only -s`` to see them live;
summary rows are also attached to pytest-benchmark's ``extra_info``) and
append it to ``benchmarks/paper_tables.txt`` so captured runs keep the
artifacts.
"""

from __future__ import annotations

import os

import pytest

from repro.workload import paper_document_sets

_TABLES_PATH = os.path.join(os.path.dirname(__file__), "paper_tables.txt")


@pytest.fixture(scope="session")
def document_sets():
    """The three synthetic version sets standing in for the paper's data."""
    return paper_document_sets(edit_counts=(0, 4, 8, 16, 32))


def print_table(title, headers, rows):
    """Render an aligned text table (used by every bench module)."""
    widths = [len(h) for h in headers]
    text_rows = [[str(cell) for cell in row] for row in rows]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["", f"=== {title} ==="]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    output = "\n".join(lines)
    print(output)
    try:
        with open(_TABLES_PATH, "a", encoding="utf-8") as handle:
            handle.write(output + "\n")
    except OSError:
        pass  # read-only checkouts still get the stdout copy
    return output
