"""Algorithm EditScript scaling: the §4.3 O(ND) claim.

"the running time of Algorithm EditScript is O(ND), where N is the total
number of nodes ... and D is the total number of misaligned nodes. (Note D
is typically much smaller than N.)"

Two sweeps:

* **n-sweep** — trees grow, number of misalignments fixed: per-node work
  should stay roughly constant (linear total growth).
* **d-sweep** — tree size fixed, misaligned children grow: work grows with
  D, and the emitted intra-parent moves equal the true shuffle size minus
  the LCS (Lemma C.1).
"""

from __future__ import annotations

import random
import time

from repro.editscript import generate_edit_script
from repro.matching import Matching
from repro.workload import random_flat_tree

from conftest import print_table


def shuffled_pair(leaves, misaligned, seed):
    """A flat tree and a copy with `misaligned` children displaced."""
    base = random_flat_tree(seed, leaves=leaves)
    shuffled = base.copy()
    rng = random.Random(seed + 1)
    children = shuffled.root.children
    indices = list(range(len(children)))
    chosen = rng.sample(indices, min(misaligned, len(indices)))
    # rotate the chosen positions among themselves
    values = [children[i] for i in chosen]
    rotated = values[1:] + values[:1]
    for index, node in zip(chosen, rotated):
        children[index] = node
    matching = Matching(
        [(base.root.id, shuffled.root.id)]
        + [
            (leaf.id, leaf.id)
            for leaf in base.root.children
        ]
    )
    return base, shuffled, matching


def run_n_sweep():
    rows = []
    for leaves in (100, 200, 400, 800, 1600):
        base, shuffled, matching = shuffled_pair(leaves, misaligned=8, seed=leaves)
        start = time.perf_counter()
        result = generate_edit_script(base, shuffled, matching)
        elapsed = time.perf_counter() - start
        assert result.verify(base, shuffled)
        rows.append(
            {
                "n": leaves,
                "moves": len(result.script.moves),
                "ms": elapsed * 1e3,
                "us_per_node": elapsed * 1e6 / leaves,
            }
        )
    return rows


def run_d_sweep():
    rows = []
    leaves = 600
    for misaligned in (2, 8, 32, 128):
        base, shuffled, matching = shuffled_pair(leaves, misaligned, seed=7)
        start = time.perf_counter()
        result = generate_edit_script(base, shuffled, matching)
        elapsed = time.perf_counter() - start
        assert result.verify(base, shuffled)
        rows.append(
            {
                "D_target": misaligned,
                "intra_moves": result.stats.intra_parent_moves,
                "ms": elapsed * 1e3,
            }
        )
    return rows


def report(n_rows, d_rows):
    print_table(
        "EditScript n-sweep (D fixed at 8 misaligned children)",
        ["n (leaves)", "moves", "ms", "us/node"],
        [(r["n"], r["moves"], f"{r['ms']:.1f}", f"{r['us_per_node']:.1f}")
         for r in n_rows],
    )
    print_table(
        "EditScript d-sweep (n fixed at 600 leaves)",
        ["target D", "intra-parent moves", "ms"],
        [(r["D_target"], r["intra_moves"], f"{r['ms']:.1f}") for r in d_rows],
    )


def test_editscript_scaling_in_n(benchmark):
    n_rows = benchmark.pedantic(run_n_sweep, rounds=1, iterations=1)
    d_rows = run_d_sweep()
    report(n_rows, d_rows)
    # per-node cost stays bounded as n grows 16x (linear-in-n behavior);
    # allow generous constant-factor noise.
    per_node = [r["us_per_node"] for r in n_rows]
    assert per_node[-1] < per_node[0] * 6
    # the number of emitted moves tracks the misalignment target
    for r in d_rows:
        assert r["intra_moves"] <= r["D_target"]
    benchmark.extra_info["us_per_node_smallest"] = round(per_node[0], 2)
    benchmark.extra_info["us_per_node_largest"] = round(per_node[-1], 2)


def test_editscript_wallclock_large(benchmark):
    base, shuffled, matching = shuffled_pair(1600, misaligned=8, seed=1600)
    benchmark(lambda: generate_edit_script(base, shuffled, matching))


if __name__ == "__main__":
    report(run_n_sweep(), run_d_sweep())
