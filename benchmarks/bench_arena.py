"""Arena core payoff: parse + index build, struct-of-arrays vs node objects.

The arena refactor's claim is that the hot ingest path — parse a serialized
tree, build its :class:`~repro.core.index.TreeIndex` — should not pay one
Python object and one children list per node. This benchmark measures the
whole ingest pipeline on a ~10k-node document corpus through both cores:

* **object**: the pre-refactor path, kept verbatim as
  ``serialization._tree_from_dict_objects`` + ``index.LegacyTreeIndex``
  (node-graph parse, dict-table index build);
* **arena**: ``tree_from_dict`` (parses straight into a
  :class:`~repro.core.arena.TreeArena`; no ``Node`` is ever built) +
  ``TreeIndex`` (reads the arrays directly).

Two gates, both enforced here and by ``check_regression.py`` against the
committed baseline:

* wall-clock speedup ``>= 1.5x`` (``parse_index_speedup``);
* peak ``tracemalloc`` memory ratio arena/object ``<= 0.6``
  (``mem_ratio``).

Run directly for the table, ``--smoke`` for the fast CI configuration,
``--json-out PATH`` to also write the ``BENCH`` payload to a file.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc

from repro.core.index import LegacyTreeIndex, TreeIndex
from repro.core.isomorphism import trees_isomorphic
from repro.core.serialization import _tree_from_dict_objects, tree_from_dict

from conftest import print_table

MIN_SPEEDUP = 1.5
MAX_MEM_RATIO = 0.6

#: words recycled across sentence values so value interning sees realistic
#: repetition (documents reuse vocabulary; so do database dumps)
_WORDS = (
    "change detection hierarchical structured information ordered tree "
    "matching edit script minimum cost delta snapshot warehouse"
).split()


def build_corpus(sections: int, paragraphs: int, sentences: int) -> dict:
    """A deterministic D/SEC/P/S document as a serialized dict."""

    def sentence(i: int) -> dict:
        words = [_WORDS[(i + k) % len(_WORDS)] for k in range(4)]
        return {"label": "S", "value": " ".join(words)}

    count = 0
    section_nodes = []
    for s in range(sections):
        paragraph_nodes = []
        for p in range(paragraphs):
            leaves = []
            for _ in range(sentences):
                leaves.append(sentence(count))
                count += 1
            paragraph_nodes.append(
                {"label": "P", "value": None, "children": leaves}
            )
        section_nodes.append(
            {"label": "SEC", "value": f"section {s}", "children": paragraph_nodes}
        )
    return {"label": "D", "value": None, "children": section_nodes}


def parse_index_object(data: dict):
    tree = _tree_from_dict_objects(data)
    return tree, LegacyTreeIndex(tree)


def parse_index_arena(data: dict):
    tree = tree_from_dict(data)  # lazy arena view: no Node objects
    return tree, TreeIndex(tree)


def _time(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _peak_bytes(fn) -> int:
    tracemalloc.start()
    try:
        fn()
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def measure(sections: int = 24, paragraphs: int = 20, sentences: int = 20,
            rounds: int = 3) -> dict:
    data = build_corpus(sections, paragraphs, sentences)

    # Both cores must agree before the timings mean anything.
    object_tree, object_index = parse_index_object(data)
    arena_tree, arena_index = parse_index_arena(data)
    assert trees_isomorphic(object_tree, arena_tree)
    assert len(object_index) == len(arena_index)
    root_id = next(iter(arena_tree.node_ids()))
    assert arena_index.subtree_size(root_id) == object_index.subtree_size(root_id)
    assert arena_index.leaf_count(root_id) == object_index.leaf_count(root_id)
    nodes = len(arena_tree)

    object_s = _time(lambda: parse_index_object(data), rounds)
    arena_s = _time(lambda: parse_index_arena(data), rounds)
    object_peak = _peak_bytes(lambda: parse_index_object(data))
    arena_peak = _peak_bytes(lambda: parse_index_arena(data))
    return {
        "nodes": nodes,
        "object_s": object_s,
        "arena_s": arena_s,
        "parse_index_speedup": object_s / arena_s,
        "object_peak_kb": object_peak / 1024.0,
        "arena_peak_kb": arena_peak / 1024.0,
        "mem_ratio": arena_peak / object_peak,
    }


def report(stats: dict) -> dict:
    print_table(
        f"parse + index build on a {stats['nodes']}-node document corpus",
        ["core", "wall ms", "peak KiB"],
        [
            ("object (Node graph)", f"{stats['object_s'] * 1e3:.2f}",
             f"{stats['object_peak_kb']:.0f}"),
            ("arena (struct-of-arrays)", f"{stats['arena_s'] * 1e3:.2f}",
             f"{stats['arena_peak_kb']:.0f}"),
        ],
    )
    print(f"speedup   = {stats['parse_index_speedup']:.2f}x "
          f"(required >= {MIN_SPEEDUP}x)")
    print(f"mem ratio = {stats['mem_ratio']:.2f} "
          f"(required <= {MAX_MEM_RATIO})")
    payload = {
        "benchmark": "bench_arena",
        "nodes": stats["nodes"],
        "parse_index_speedup": round(stats["parse_index_speedup"], 3),
        "mem_ratio": round(stats["mem_ratio"], 3),
        "object_ms": round(stats["object_s"] * 1e3, 3),
        "arena_ms": round(stats["arena_s"] * 1e3, 3),
        "object_peak_kb": round(stats["object_peak_kb"], 1),
        "arena_peak_kb": round(stats["arena_peak_kb"], 1),
    }
    print("BENCH " + json.dumps(payload))
    return payload


def _check(stats: dict) -> int:
    status = 0
    if stats["parse_index_speedup"] < MIN_SPEEDUP:
        print(f"FAIL: speedup below {MIN_SPEEDUP}x", file=sys.stderr)
        status = 1
    if stats["mem_ratio"] > MAX_MEM_RATIO:
        print(f"FAIL: memory ratio above {MAX_MEM_RATIO}", file=sys.stderr)
        status = 1
    return status


# ---------------------------------------------------------------------------
# pytest-benchmark entry point
# ---------------------------------------------------------------------------
def test_arena_parse_index_speedup(benchmark):
    stats = benchmark.pedantic(
        lambda: measure(rounds=2), rounds=1, iterations=1,
    )
    benchmark.extra_info["parse_index_speedup"] = round(
        stats["parse_index_speedup"], 2
    )
    benchmark.extra_info["mem_ratio"] = round(stats["mem_ratio"], 2)
    assert stats["parse_index_speedup"] >= MIN_SPEEDUP
    assert stats["mem_ratio"] <= MAX_MEM_RATIO


# ---------------------------------------------------------------------------
# Direct / CI-smoke execution
# ---------------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fewer timing rounds (used by CI; the corpus itself is cheap "
             "enough to keep at full size, and the gates are calibrated "
             "on it)",
    )
    parser.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="also write the BENCH payload to this file",
    )
    args = parser.parse_args(argv)
    stats = measure(rounds=2 if args.smoke else 3)
    payload = report(stats)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json_out}")
    status = _check(stats)
    if status == 0 and args.smoke:
        print("arena benchmark smoke: OK")
    return status


if __name__ == "__main__":
    sys.exit(main())
