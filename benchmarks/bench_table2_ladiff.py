"""Table 2 / Appendix A: the LaDiff sample run and mark-up conventions.

Runs the full LaDiff pipeline on the paper's TeXbook excerpt (Figures 14 and
15) and checks that the output realizes every mark-up convention of Table 2
that the document exercises, reproducing the Figure 16 sample run:

* moved + updated sentences in italic with "Moved from S<n>" footnotes and
  small-font labeled tombstones,
* the inserted Greek paragraph in bold,
* the deleted "later chapters" sentence in small font,
* paragraph move marked with a marginal note and a P1 label,
* section headings annotated (ins)/(upd).
"""

from __future__ import annotations

from repro.ladiff import ladiff
from repro.ladiff.fixtures import NEW_TEXBOOK, OLD_TEXBOOK

from conftest import print_table


def run_ladiff():
    return ladiff(OLD_TEXBOOK, NEW_TEXBOOK)


def report(result):
    summary = result.script.summary()
    rows = [
        ("insert", summary["insert"]),
        ("delete", summary["delete"]),
        ("update", summary["update"]),
        ("move", summary["move"]),
        ("total", summary["total"]),
    ]
    print_table("Appendix A sample run: edit script profile", ["op", "count"], rows)
    conventions = [
        ("Sentence/Insert -> bold", r"\textbf{" in result.output),
        ("Sentence/Delete -> small", r"{\small " in result.output),
        ("Sentence/Update -> italic", r"\textit{" in result.output),
        ("Sentence/Move -> footnote+label",
         r"\footnote{Moved from S" in result.output and "S1:[" in result.output),
        ("Paragraph/Move -> marginal note+label",
         r"\marginpar{Moved from P" in result.output and "P1:[" in result.output),
        ("Paragraph/Insert -> marginal note",
         r"\marginpar{Inserted para}" in result.output),
        ("Heading annotations", "\\section{(" in result.output),
    ]
    print_table(
        "Table 2 mark-up conventions exercised",
        ["convention", "present"],
        [(name, "yes" if ok else "NO") for name, ok in conventions],
    )
    return conventions


def test_table2_appendix_a_sample_run(benchmark):
    result = benchmark(run_ladiff)
    conventions = report(result)
    assert result.diff.verify(result.old_tree, result.new_tree)
    for name, present in conventions:
        assert present, f"missing mark-up convention: {name}"
    summary = result.script.summary()
    # Figure 16's change profile: moves and updates detected, not just
    # inserts/deletes (which is all GNU diff would report).
    assert summary["move"] >= 2
    assert summary["update"] >= 2
    assert summary["insert"] >= 1
    assert summary["delete"] >= 1


def test_ladiff_latency_on_sample(benchmark):
    """End-to-end latency of the pipeline on the Appendix A documents."""
    result = benchmark(run_ladiff)
    assert not result.script.is_empty()


if __name__ == "__main__":
    report(run_ladiff())
