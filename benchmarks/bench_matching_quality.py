"""Matching accuracy against ground truth (precision / recall / F1).

The paper could only bound mismatches indirectly (Table 1); our synthetic
workloads preserve node identity through mutation, so matcher accuracy is
directly measurable. This bench scores FastMatch across the threshold
sweep and A(k) across k, giving the quality numbers behind the cost-only
ablations.
"""

from __future__ import annotations

import pytest

from repro.analysis import matching_quality
from repro.ladiff.pipeline import default_match_config
from repro.matching import fast_match, parameterized_match
from repro.workload import DocumentSpec, MutationEngine, MutationMix, generate_document

from conftest import print_table

CHURN = MutationMix(
    insert_leaf=1.0, delete_leaf=1.0, update_leaf=1.0,
    move_leaf=1.5, move_subtree=1.0, insert_subtree=0.2, delete_subtree=0.2,
)


def build_pairs(count=6, edits=15):
    pairs = []
    for seed in range(count):
        base = generate_document(
            1300 + seed,
            DocumentSpec(sections=5, paragraphs_per_section=5,
                         sentences_per_paragraph=5),
        )
        mutated = MutationEngine(1400 + seed, mix=CHURN).mutate(base, edits).tree
        pairs.append((base, mutated))
    return pairs


def score(pairs, matcher):
    precision = recall = f1 = 0.0
    for base, mutated in pairs:
        quality = matching_quality(base, mutated, matcher(base, mutated))
        precision += quality.precision
        recall += quality.recall
        f1 += quality.f1
    n = len(pairs)
    return precision / n, recall / n, f1 / n


def sweep(pairs):
    rows = []
    for t in (0.5, 0.7, 0.9):
        config = default_match_config(t=t)
        p, r, f = score(pairs, lambda a, b: fast_match(a, b, config))
        rows.append((f"FastMatch t={t:.1f}", p, r, f))
    for k in (0, 2, 8, None):
        config = default_match_config()
        p, r, f = score(
            pairs, lambda a, b: parameterized_match(a, b, k=k, config=config)
        )
        label = "A(unbounded)" if k is None else f"A(k={k})"
        rows.append((label, p, r, f))
    return rows


def report(rows):
    print_table(
        "Matching accuracy vs id-preserving ground truth",
        ["matcher", "precision", "recall", "F1"],
        [(name, f"{p:.3f}", f"{r:.3f}", f"{f:.3f}") for name, p, r, f in rows],
    )


def test_matching_quality_sweep(benchmark):
    pairs = build_pairs()
    rows = benchmark.pedantic(sweep, args=(pairs,), rounds=1, iterations=1)
    report(rows)
    by_name = {name: (p, r, f) for name, p, r, f in rows}

    # FastMatch at default thresholds is highly accurate
    p, r, f = by_name["FastMatch t=0.5"]
    assert p > 0.9 and r > 0.85

    # raising t trades recall away, never precision
    assert by_name["FastMatch t=0.9"][1] <= by_name["FastMatch t=0.5"][1]

    # A(k) recall is monotone in k; unbounded equals FastMatch
    recalls = [by_name[f"A(k={k})"][1] for k in (0, 2, 8)]
    recalls.append(by_name["A(unbounded)"][1])
    assert recalls == sorted(recalls)
    assert by_name["A(unbounded)"][2] == pytest.approx(
        by_name["FastMatch t=0.5"][2], abs=1e-9
    )

    for name, p, r, f in rows:
        benchmark.extra_info[f"f1::{name}"] = round(f, 3)


if __name__ == "__main__":
    report(sweep(build_pairs()))
