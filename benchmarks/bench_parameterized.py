"""Ablation: the A(k) optimality/efficiency tradeoff (§9 future work).

The paper plans "a parameterized algorithm A(k) where the parameter k
specifies the desired level of optimality"; ``repro.matching.
parameterized_match`` realizes it by bounding FastMatch's quadratic
fallback to a window of k chain positions. This bench sweeps k on a
move-heavy workload and reports the two sides of the trade:

* matching effort (leaf comparisons r1) — grows with k,
* edit-script cost — shrinks with k (missed moves degrade into
  delete/insert pairs, never into wrong output).
"""

from __future__ import annotations

from repro.editscript import generate_edit_script
from repro.ladiff.pipeline import default_match_config
from repro.matching import MatchingStats, parameterized_match
from repro.workload import DocumentSpec, MutationEngine, MutationMix, generate_document

from conftest import print_table

K_VALUES = (0, 1, 2, 4, 8, 16, None)

MOVE_HEAVY = MutationMix(
    insert_leaf=0.5, delete_leaf=0.5, update_leaf=0.5,
    move_leaf=3.0, move_subtree=1.5, insert_subtree=0.1, delete_subtree=0.1,
)


def build_pairs(count=5, edits=15):
    pairs = []
    for seed in range(count):
        base = generate_document(
            900 + seed,
            DocumentSpec(sections=5, paragraphs_per_section=5,
                         sentences_per_paragraph=5),
        )
        edited = MutationEngine(950 + seed, mix=MOVE_HEAVY).mutate(base, edits).tree
        pairs.append((base, edited))
    return pairs


def sweep(pairs):
    rows = []
    for k in K_VALUES:
        total_cost = total_compares = total_ops = 0.0
        for base, edited in pairs:
            stats = MatchingStats()
            matching = parameterized_match(
                base, edited, k=k, config=default_match_config(), stats=stats
            )
            result = generate_edit_script(base, edited, matching)
            assert result.verify(base, edited)
            total_cost += result.cost()
            total_compares += stats.leaf_compares
            total_ops += len(result.script)
        rows.append(
            {
                "k": "unbounded" if k is None else k,
                "compares": total_compares,
                "cost": total_cost,
                "ops": total_ops,
            }
        )
    return rows


def report(rows):
    print_table(
        "A(k): fallback window vs matching effort and script cost",
        ["k", "leaf compares (r1)", "script cost", "script ops"],
        [
            (r["k"], f"{r['compares']:.0f}", f"{r['cost']:.1f}", f"{r['ops']:.0f}")
            for r in rows
        ],
    )


def test_parameterized_tradeoff(benchmark):
    pairs = build_pairs()
    rows = benchmark.pedantic(sweep, args=(pairs,), rounds=1, iterations=1)
    report(rows)
    costs = [r["cost"] for r in rows]
    compares = [r["compares"] for r in rows]
    # effort grows (weakly) with k; quality improves (cost shrinks weakly)
    assert compares[0] <= compares[-1]
    assert costs[-1] <= costs[0]
    # the extremes genuinely differ on this move-heavy workload
    assert costs[-1] < costs[0]
    benchmark.extra_info["cost_k0"] = round(costs[0], 1)
    benchmark.extra_info["cost_unbounded"] = round(costs[-1], 1)


if __name__ == "__main__":
    report(sweep(build_pairs()))
