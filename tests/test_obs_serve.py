"""End-to-end tracing tests: one request, one tree of spans.

Part one drives a single in-process :class:`ServerThread`; part two is the
acceptance path — a real 2-worker :class:`ClusterThread` where the trace
crosses the client, the router's proxy leg, and a worker subprocess, and is
reassembled shard-by-shard through ``GET /v1/trace/<id>``. The SIGKILL test
runs last: a replayed request must leave its failover attempt visible in
the span tree instead of pretending the first try succeeded.
"""

import http.client
import json
import os
import signal
import time

import pytest

from repro.obs.export import build_span_tree, load_spans_jsonl, merge_spans, validate_trace
from repro.serve.app import ServeConfig, ServerThread
from repro.serve.client import DiffServiceClient
from repro.serve.cluster import ClusterConfig, ClusterThread
from repro.workload import MutationEngine, random_tree

OLD_SEXPR = '(D (P (S "alpha one") (S "beta two")))'
NEW_SEXPR = '(D (P (S "beta two") (S "alpha one") (S "gamma three")))'

STAGE_NAMES = {"stage.index", "stage.match", "stage.postprocess", "stage.editscript"}


def fetch_json(port, path):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10.0)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()


def make_pairs(count, seed=42):
    pairs = []
    for i in range(count):
        old = random_tree(seed + i)
        new = MutationEngine(seed + 100 + i).mutate(old, 4).tree
        pairs.append((old, new))
    return pairs


# ---------------------------------------------------------------------------
# Single worker, real sockets
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced_server():
    config = ServeConfig(
        port=0, workers=2, queue_capacity=8,
        deadline_ms=10_000.0, trace_fraction=1.0,
    )
    with ServerThread(config) as handle:
        yield handle


class TestServerTracing:
    def test_client_originated_trace_spans_every_layer(self, traced_server):
        with DiffServiceClient(
            port=traced_server.port, retries=0, timeout=10.0, trace_fraction=1.0
        ) as client:
            out = client.diff(OLD_SEXPR, NEW_SEXPR)
            tid = client.last_trace_id
            assert tid is not None
            assert out["trace_id"] == tid
            client_spans = client.tracer.trace(tid)

        status, view = fetch_json(traced_server.port, f"/v1/trace/{tid}")
        assert status == 200
        assert view["trace_id"] == tid
        assert view["complete"] is True
        assert view["protocol"] == "repro-serve/1"

        merged = merge_spans(client_spans, view["spans"])
        assert validate_trace(merged) == []
        roots, children = build_span_tree(merged)
        assert [r["name"] for r in roots] == ["client.request"]

        names = {span["name"] for span in merged}
        assert {"client.request", "client.attempt", "worker",
                "admission", "engine"} <= names
        assert names & STAGE_NAMES  # per-stage child spans made it across

        # The worker bracket hangs off the client's attempt span.
        by_name = {span["name"]: span for span in merged}
        attempt = by_name["client.attempt"]
        worker = by_name["worker"]
        assert worker["parent"] == attempt["span"]
        assert by_name["engine"]["parent"] == worker["span"]

    def test_server_samples_headerless_requests(self, traced_server):
        # No client tracer at all: the server's own fraction=1.0 kicks in
        # and mints the trace, echoing the id back in the payload.
        with DiffServiceClient(port=traced_server.port, retries=0,
                               timeout=10.0) as client:
            out = client.diff(OLD_SEXPR, NEW_SEXPR)
        tid = out["trace_id"]
        status, view = fetch_json(traced_server.port, f"/v1/trace/{tid}")
        assert status == 200
        roots, _ = build_span_tree(view["spans"])
        assert [r["name"] for r in roots] == ["worker"]
        assert view["complete"] is True

    def test_metrics_expose_tracer_stats(self, traced_server):
        with DiffServiceClient(port=traced_server.port, retries=0,
                               timeout=10.0) as client:
            client.diff(OLD_SEXPR, NEW_SEXPR)
            snap = client.metrics()
        trace_stats = snap["trace"]
        assert trace_stats["spans_recorded"] >= 3
        assert trace_stats["spans_open"] == 0
        assert trace_stats["traces_started"] >= 1


def test_trace_export_flushes_on_drain(tmp_path):
    export = tmp_path / "spans.jsonl"
    config = ServeConfig(port=0, workers=1, queue_capacity=4,
                         trace_fraction=1.0, trace_export=str(export))
    with ServerThread(config) as handle:
        with DiffServiceClient(port=handle.port, retries=0,
                               timeout=10.0) as client:
            out = client.diff(OLD_SEXPR, NEW_SEXPR)
    spans = load_spans_jsonl(export.read_text())
    mine = [s for s in spans if s["trace"] == out["trace_id"]]
    assert {"worker", "admission", "engine"} <= {s["name"] for s in mine}
    assert all(s["end"] is not None for s in mine)


# ---------------------------------------------------------------------------
# The acceptance path: 2-worker cluster, merged trace via the router
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def cluster():
    config = ClusterConfig(
        port=0,
        workers=2,
        health_interval=0.2,
        backoff_base=0.1,
        serve=ServeConfig(port=0, workers=1, queue_capacity=16, cache_size=64),
    )
    thread = ClusterThread(config).start()
    yield thread
    thread.stop()


class TestClusterTracing:
    def test_trace_crosses_client_router_and_worker(self, cluster):
        old, new = make_pairs(1, seed=5100)[0]
        with DiffServiceClient(
            port=cluster.port, retries=2, timeout=30.0, trace_fraction=1.0
        ) as client:
            out = client.diff(old, new)
            assert out["status"] == "ok"
            tid = client.last_trace_id
            assert out["trace_id"] == tid
            client_spans = client.tracer.trace(tid)

        status, view = fetch_json(cluster.port, f"/v1/trace/{tid}")
        assert status == 200
        assert view["complete"] is True
        assert view["workers"]  # at least one shard contributed spans

        merged = merge_spans(client_spans, view["spans"])
        assert validate_trace(merged) == []
        roots, children = build_span_tree(merged)
        assert [r["name"] for r in roots] == ["client.request"]

        by_name = {}
        for span in merged:
            by_name.setdefault(span["name"], span)
        chain = ["client.request", "client.attempt", "router.proxy",
                 "worker", "engine"]
        for parent_name, child_name in zip(chain, chain[1:]):
            assert by_name[child_name]["parent"] == by_name[parent_name]["span"], (
                f"{child_name} should hang off {parent_name}"
            )
        names = {s["name"] for s in merged}
        assert "admission" in names and names & STAGE_NAMES
        stage_spans = [s for s in merged if s["kind"] == "stage"]
        assert stage_spans
        engine = by_name["engine"]
        assert all(s["parent"] == engine["span"] for s in stage_spans)

    def test_router_trace_endpoint_rejects_garbage(self, cluster):
        status, body = fetch_json(cluster.port, "/v1/trace/zzz!")
        assert status == 400
        assert body["error"] == "bad_trace_id"
        status, body = fetch_json(cluster.port, "/v1/trace/" + "66" * 8)
        assert status == 404

    def test_sigkill_leaves_failover_span_in_the_trace(self, cluster):
        """Kill a worker, then trace requests through the replay window.

        At least one replayed request must show its failed proxy attempt —
        a ``router.proxy`` span closed ``failover`` — next to the attempt
        that succeeded on the ring successor.
        """
        with DiffServiceClient(port=cluster.port, retries=2) as probe:
            health = probe.request("GET", "/healthz")
        victim_id, victim = sorted(health["workers"].items())[0]
        victim_pid = victim["pid"]
        os.kill(victim_pid, signal.SIGKILL)

        trace_ids = []
        with DiffServiceClient(
            port=cluster.port, retries=6, connect_retries=10,
            timeout=30.0, trace_fraction=1.0,
        ) as client:
            for old, new in make_pairs(8, seed=6200):
                out = client.diff(old, new)
                assert out["status"] == "ok"
                trace_ids.append(client.last_trace_id)

        failover_traces = []
        for tid in trace_ids:
            status, view = fetch_json(cluster.port, f"/v1/trace/{tid}")
            if status != 200:
                continue
            proxies = [s for s in view["spans"] if s["name"] == "router.proxy"]
            if any(s["status"] == "failover" for s in proxies):
                failover_traces.append((tid, view))
        assert failover_traces, (
            "no trace recorded a failover proxy attempt after SIGKILL"
        )
        # The replay chain is ordered: the failed attempt precedes the one
        # that answered, and both share the same parent attempt span.
        tid, view = failover_traces[0]
        proxies = sorted(
            (s for s in view["spans"] if s["name"] == "router.proxy"),
            key=lambda s: s["start"],
        )
        assert proxies[0]["status"] == "failover"
        assert proxies[-1]["status"] == "ok"
        assert len({s["parent"] for s in proxies}) == 1

        # Leave the module the way we found it: wait out the restart.
        deadline = time.time() + 60
        with DiffServiceClient(port=cluster.port, retries=2) as client:
            while time.time() < deadline:
                health = client.request("GET", "/healthz")
                info = health["workers"][victim_id]
                if info["state"] == "up" and info["pid"] != victim_pid:
                    break
                time.sleep(0.05)
            else:
                pytest.fail(f"{victim_id} never restarted: {health['workers']}")
