"""Hypothesis property tests for the library's core invariants (DESIGN §6)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Matching, Tree, tree_diff, trees_isomorphic
from repro.analysis import result_distances
from repro.editscript import generate_edit_script
from repro.workload import DocumentSpec, MutationEngine, generate_document


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
@st.composite
def document_trees(draw, max_leaves=14):
    """Small random D/P/S trees with short sentence values."""
    tree = Tree()
    root = tree.create_node("D", None)
    n_paragraphs = draw(st.integers(0, 4))
    counter = 0
    for _ in range(n_paragraphs):
        paragraph = tree.create_node("P", None, parent=root)
        n_sentences = draw(st.integers(0, 4))
        for _ in range(n_sentences):
            counter += 1
            if counter > max_leaves:
                break
            words = draw(st.lists(
                st.sampled_from(["aa", "bb", "cc", "dd", "ee"]),
                min_size=1, max_size=4,
            ))
            tree.create_node("S", " ".join(words), parent=paragraph)
    # a few bare sentences directly under the root
    for _ in range(draw(st.integers(0, 2))):
        tree.create_node("S", draw(st.sampled_from(["xx yy", "zz ww", "qq"])),
                         parent=root)
    return tree


@st.composite
def tree_pairs_with_matching(draw):
    """Two random trees plus an arbitrary label/kind-respecting matching."""
    t1 = draw(document_trees())
    t2 = draw(document_trees())
    seed = draw(st.integers(0, 2**16))
    rng = random.Random(seed)
    matching = Matching()
    buckets1, buckets2 = {}, {}
    for node in t1.preorder():
        buckets1.setdefault((node.label, node.is_leaf), []).append(node)
    for node in t2.preorder():
        buckets2.setdefault((node.label, node.is_leaf), []).append(node)
    for key, nodes1 in buckets1.items():
        nodes2 = buckets2.get(key, [])
        a, b = nodes1[:], nodes2[:]
        rng.shuffle(a)
        rng.shuffle(b)
        for x, y in zip(a, b):
            if rng.random() < 0.7:
                matching.add(x.id, y.id)
    return t1, t2, matching


# ---------------------------------------------------------------------------
# Invariant 1-3: the generator transforms, conforms, and is tight
# ---------------------------------------------------------------------------
class TestGeneratorInvariants:
    @given(tree_pairs_with_matching())
    @settings(max_examples=150, deadline=None)
    def test_transforms_to_isomorphic_tree(self, data):
        t1, t2, matching = data
        result = generate_edit_script(t1, t2, matching)
        assert result.verify(t1, t2)

    @given(tree_pairs_with_matching())
    @settings(max_examples=100, deadline=None)
    def test_conforms_to_matching(self, data):
        t1, t2, matching = data
        result = generate_edit_script(t1, t2, matching)
        matched1 = {x for x, _ in matching.pairs()}
        matched2 = {y for _, y in matching.pairs()}
        deleted = {op.node_id for op in result.script.deletes}
        assert not (matched1 & deleted)
        # inserted nodes pair with previously unmatched T2 nodes
        for op in result.script.inserts:
            partner = result.matching.partner1(op.node_id)
            assert partner not in matched2

    @given(tree_pairs_with_matching())
    @settings(max_examples=100, deadline=None)
    def test_exact_insert_delete_move_counts(self, data):
        """Theorem C.2: the script meets the structural lower bound."""
        t1, t2, matching = data
        result = generate_edit_script(t1, t2, matching)
        unmatched_t2 = sum(1 for n in t2.preorder() if not matching.has2(n.id))
        unmatched_t1 = sum(1 for n in t1.preorder() if not matching.has1(n.id))
        assert len(result.script.inserts) == unmatched_t2
        assert len(result.script.deletes) == unmatched_t1

    @given(tree_pairs_with_matching())
    @settings(max_examples=100, deadline=None)
    def test_updates_only_change_values(self, data):
        t1, t2, matching = data
        result = generate_edit_script(t1, t2, matching)
        for op in result.script.updates:
            assert op.old_value != op.value


# ---------------------------------------------------------------------------
# End-to-end invariants on realistic mutated documents
# ---------------------------------------------------------------------------
class TestEndToEndInvariants:
    @given(st.integers(0, 500), st.integers(0, 20))
    @settings(max_examples=40, deadline=None)
    def test_diff_of_mutated_document_verifies(self, seed, edits):
        base = generate_document(
            seed % 7, DocumentSpec(sections=2, paragraphs_per_section=3,
                                   sentences_per_paragraph=3)
        )
        mutated = MutationEngine(seed).mutate(base, edits).tree
        result = tree_diff(base, mutated)
        assert result.verify(base, mutated)

    @given(st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_self_diff_is_empty(self, seed):
        base = generate_document(
            seed % 5, DocumentSpec(sections=2, paragraphs_per_section=2)
        )
        result = tree_diff(base, base.copy())
        assert result.script.is_empty()

    @given(st.integers(0, 200), st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_cost_bounded_by_rebuild(self, seed, edits):
        """Any conforming script costs at most delete-everything +
        insert-everything (the empty-matching script), under unit costs."""
        base = generate_document(
            seed % 5, DocumentSpec(sections=2, paragraphs_per_section=2)
        )
        mutated = MutationEngine(seed + 999).mutate(base, edits).tree
        result = tree_diff(base, mutated)
        # updates cost <= 2 by the compare contract; bound loosely
        rebuild_cost = len(base) + len(mutated)
        assert result.cost() <= rebuild_cost + 2 * len(result.script.updates)

    @given(st.integers(0, 200), st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_weighted_distance_nonnegative_and_finite(self, seed, edits):
        base = generate_document(
            seed % 5, DocumentSpec(sections=2, paragraphs_per_section=2)
        )
        mutated = MutationEngine(seed + 5).mutate(base, edits).tree
        result = tree_diff(base, mutated)
        distances = result_distances(base, result.edit)
        assert distances.weighted >= 0
        assert distances.unweighted == len(result.script)


# ---------------------------------------------------------------------------
# Round-trip invariants
# ---------------------------------------------------------------------------
class TestRoundTrips:
    @given(document_trees())
    @settings(max_examples=60, deadline=None)
    def test_serialization_round_trip(self, tree):
        from repro.core import tree_from_dict, tree_to_dict
        assert trees_isomorphic(tree_from_dict(tree_to_dict(tree)), tree)

    @given(document_trees())
    @settings(max_examples=60, deadline=None)
    def test_sexpr_round_trip(self, tree):
        from repro.core import tree_from_sexpr, tree_to_sexpr
        assert trees_isomorphic(tree_from_sexpr(tree_to_sexpr(tree)), tree)

    @given(document_trees())
    @settings(max_examples=60, deadline=None)
    def test_copy_is_isomorphic(self, tree):
        assert trees_isomorphic(tree, tree.copy())

    @given(document_trees())
    @settings(max_examples=50, deadline=None)
    def test_script_serialization_round_trip(self, t2):
        from repro.editscript import EditScript
        t1 = Tree.from_obj(("D", None, [("P", None, [("S", "seed origin")])]))
        result = tree_diff(t1, t2)
        rebuilt = EditScript.from_dicts(result.script.to_dicts())
        assert rebuilt == result.script
        replay = result.edit.replay(t1)
        assert trees_isomorphic(replay, t2)
