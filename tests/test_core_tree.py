"""Unit tests for the ordered-tree substrate (repro.core.tree)."""

import random

import pytest

from repro.core import (
    CyclicMoveError,
    DuplicateNodeError,
    InvalidPositionError,
    NotALeafError,
    RootOperationError,
    Tree,
    TreeError,
    UnknownNodeError,
)
from repro.core.tree import map_tree


@pytest.fixture
def small_tree():
    return Tree.from_obj(
        ("D", None, [
            ("P", None, [("S", "a"), ("S", "b")]),
            ("P", None, [("S", "c")]),
        ])
    )


class TestConstruction:
    def test_from_obj_builds_structure(self, small_tree):
        assert small_tree.root.label == "D"
        assert [c.label for c in small_tree.root.children] == ["P", "P"]
        leaves = [leaf.value for leaf in small_tree.leaves()]
        assert leaves == ["a", "b", "c"]

    def test_from_obj_assigns_preorder_ids(self, small_tree):
        ids = [node.id for node in small_tree.preorder()]
        assert ids == [1, 2, 3, 4, 5, 6]

    def test_from_obj_label_only_shorthand(self):
        tree = Tree.from_obj(("D", None, ["S", ("S", "x")]))
        values = [leaf.value for leaf in tree.leaves()]
        assert values == [None, "x"]

    def test_from_obj_children_without_value_slot(self):
        tree = Tree.from_obj(("D", [("S", "x")]))
        assert tree.root.value is None
        assert tree.root.children[0].value == "x"

    def test_bad_spec_raises(self):
        with pytest.raises(TreeError):
            Tree.from_obj(())

    def test_create_node_requires_empty_tree_for_root(self, small_tree):
        with pytest.raises(TreeError):
            small_tree.create_node("D2", None)

    def test_create_node_duplicate_id(self, small_tree):
        with pytest.raises(DuplicateNodeError):
            small_tree.create_node("S", "x", parent=small_tree.root, node_id=1)

    def test_create_node_at_position(self, small_tree):
        parent = small_tree.root.children[0]
        small_tree.create_node("S", "new", parent=parent, position=1)
        assert [c.value for c in parent.children] == ["new", "a", "b"]

    def test_generated_ids_skip_existing(self):
        tree = Tree()
        tree.create_node("D", None, node_id=1)
        tree.create_node("S", "x", parent=tree.root, node_id=2)
        fresh = tree.create_node("S", "y", parent=tree.root)
        assert fresh.id not in (1, 2)


class TestLookup:
    def test_get_and_contains(self, small_tree):
        assert small_tree.get(1) is small_tree.root
        assert 1 in small_tree
        assert 99 not in small_tree

    def test_get_unknown_raises(self, small_tree):
        with pytest.raises(UnknownNodeError):
            small_tree.get(99)

    def test_len_counts_nodes(self, small_tree):
        assert len(small_tree) == 6


class TestTraversal:
    def test_preorder_order(self, small_tree):
        labels = [n.label for n in small_tree.preorder()]
        assert labels == ["D", "P", "S", "S", "P", "S"]

    def test_postorder_children_before_parents(self, small_tree):
        order = [n.id for n in small_tree.postorder()]
        for node in small_tree.preorder():
            for child in node.children:
                assert order.index(child.id) < order.index(node.id)

    def test_bfs_level_order(self, small_tree):
        labels = [n.label for n in small_tree.bfs()]
        assert labels == ["D", "P", "P", "S", "S", "S"]

    def test_leaves_left_to_right(self, small_tree):
        assert [n.value for n in small_tree.leaves()] == ["a", "b", "c"]

    def test_nodes_with_label_chain_order(self, small_tree):
        chain = [n.id for n in small_tree.nodes_with_label("S")]
        assert chain == sorted(chain)

    def test_labels_counts(self, small_tree):
        assert small_tree.labels() == {"D": 1, "P": 2, "S": 3}

    def test_leaf_and_internal_labels(self, small_tree):
        assert small_tree.leaf_labels() == ["S"]
        assert set(small_tree.internal_labels()) == {"D", "P"}

    def test_height(self, small_tree):
        assert small_tree.height() == 2
        assert Tree().height() == -1

    def test_empty_tree_traversals(self):
        tree = Tree()
        assert list(tree.preorder()) == []
        assert list(tree.postorder()) == []
        assert list(tree.bfs()) == []
        assert list(tree.leaves()) == []


class TestInsert:
    def test_insert_leaf_at_position(self, small_tree):
        small_tree.insert(100, "S", "x", 2, 2)
        parent = small_tree.get(2)
        assert [c.value for c in parent.children] == ["a", "x", "b"]

    def test_insert_position_bounds(self, small_tree):
        with pytest.raises(InvalidPositionError):
            small_tree.insert(100, "S", "x", 2, 4)
        with pytest.raises(InvalidPositionError):
            small_tree.insert(101, "S", "x", 2, 0)

    def test_insert_append_position(self, small_tree):
        small_tree.insert(100, "S", "x", 2, 3)
        assert small_tree.get(2).children[-1].value == "x"

    def test_insert_duplicate_id(self, small_tree):
        with pytest.raises(DuplicateNodeError):
            small_tree.insert(1, "S", "x", 2, 1)

    def test_insert_unknown_parent(self, small_tree):
        with pytest.raises(UnknownNodeError):
            small_tree.insert(100, "S", "x", 999, 1)


class TestDelete:
    def test_delete_leaf(self, small_tree):
        small_tree.delete(3)
        assert 3 not in small_tree
        assert [c.value for c in small_tree.get(2).children] == ["b"]

    def test_delete_preserves_sibling_order(self, small_tree):
        small_tree.insert(100, "S", "x", 2, 2)
        small_tree.delete(100)
        assert [c.value for c in small_tree.get(2).children] == ["a", "b"]

    def test_delete_interior_raises(self, small_tree):
        with pytest.raises(NotALeafError):
            small_tree.delete(2)

    def test_delete_root_raises(self):
        tree = Tree.from_obj(("D", None))
        with pytest.raises(RootOperationError):
            tree.delete(tree.root.id)


class TestUpdate:
    def test_update_value(self, small_tree):
        small_tree.update(3, "new value")
        assert small_tree.get(3).value == "new value"

    def test_update_interior_node(self, small_tree):
        small_tree.update(2, "para-value")
        assert small_tree.get(2).value == "para-value"


class TestMove:
    def test_move_between_parents(self, small_tree):
        small_tree.move(3, 5, 1)
        assert [c.value for c in small_tree.get(5).children] == ["a", "c"]
        assert [c.value for c in small_tree.get(2).children] == ["b"]

    def test_move_subtree_carries_children(self, small_tree):
        small_tree.move(2, 5, 2)
        moved = small_tree.get(2)
        assert moved.parent is small_tree.get(5)
        assert [c.value for c in moved.children] == ["a", "b"]

    def test_move_within_parent(self, small_tree):
        parent = small_tree.get(2)
        small_tree.move(3, 2, 2)  # "a" after "b"
        assert [c.value for c in parent.children] == ["b", "a"]

    def test_move_into_own_subtree_raises(self, small_tree):
        with pytest.raises(CyclicMoveError):
            small_tree.move(2, 3, 1)

    def test_move_onto_itself_raises(self, small_tree):
        with pytest.raises(CyclicMoveError):
            small_tree.move(2, 2, 1)

    def test_move_root_raises(self, small_tree):
        with pytest.raises(RootOperationError):
            small_tree.move(1, 2, 1)

    def test_move_position_checked_after_detach(self, small_tree):
        parent = small_tree.get(2)
        # "a" to the last slot of its own parent: rank 2 of 2 post-detach.
        small_tree.move(3, 2, 2)
        assert [c.value for c in parent.children] == ["b", "a"]
        with pytest.raises(InvalidPositionError):
            small_tree.move(3, 2, 3)


class TestCopy:
    def test_copy_preserves_ids_and_structure(self, small_tree):
        clone = small_tree.copy()
        assert [n.id for n in clone.preorder()] == [
            n.id for n in small_tree.preorder()
        ]
        assert [n.value for n in clone.leaves()] == ["a", "b", "c"]

    def test_copy_is_independent(self, small_tree):
        clone = small_tree.copy()
        clone.update(3, "changed")
        assert small_tree.get(3).value == "a"

    def test_copy_fresh_ids_do_not_collide(self, small_tree):
        clone = small_tree.copy()
        node = clone.create_node("S", "x", parent=clone.root)
        assert node.id > max(n.id for n in small_tree.preorder())

    def test_copy_empty_tree(self):
        assert Tree().copy().root is None


class TestRoundTripsAndUtilities:
    def test_to_obj_round_trip(self, small_tree):
        rebuilt = Tree.from_obj(small_tree.to_obj())
        assert rebuilt.to_obj() == small_tree.to_obj()

    def test_to_obj_empty(self):
        assert Tree().to_obj() is None

    def test_pretty_contains_labels_and_values(self, small_tree):
        text = small_tree.pretty()
        assert "D" in text and "(a)" in text

    def test_pretty_empty(self):
        assert Tree().pretty() == "<empty tree>"

    def test_map_tree_transforms_values(self, small_tree):
        upper = map_tree(
            small_tree,
            lambda n: (n.label, n.value.upper() if n.value else None),
        )
        assert [n.value for n in upper.leaves()] == ["A", "B", "C"]
        # original untouched
        assert [n.value for n in small_tree.leaves()] == ["a", "b", "c"]


class TestNodeApi:
    def test_child_index_is_one_based(self, small_tree):
        assert small_tree.get(2).child_index() == 1
        assert small_tree.get(5).child_index() == 2

    def test_child_index_of_root_raises(self, small_tree):
        with pytest.raises(ValueError):
            small_tree.root.child_index()

    def test_depth_and_ancestors(self, small_tree):
        leaf = small_tree.get(3)
        assert leaf.depth() == 2
        assert [a.label for a in leaf.ancestors()] == ["P", "D"]

    def test_is_ancestor_of(self, small_tree):
        assert small_tree.root.is_ancestor_of(small_tree.get(3))
        assert not small_tree.get(3).is_ancestor_of(small_tree.root)
        assert not small_tree.get(2).is_ancestor_of(small_tree.get(2))

    def test_leaf_count_and_subtree_size(self, small_tree):
        assert small_tree.root.leaf_count() == 3
        assert small_tree.root.subtree_size() == 6
        assert small_tree.get(2).leaf_count() == 2


class TestWideSiblingDetach:
    """Bulk deletes among many siblings must not degrade to O(siblings).

    ``Tree._detach`` finds the node by its recorded slot hint (plus a tiny
    probe window and both ends); ``detach_fallback_scans`` counts the times
    it had to fall back to a full ``list.index`` scan.
    """

    WIDTH = 500

    def wide_tree(self):
        tree = Tree()
        root = tree.create_node("D", None)
        leaves = [
            tree.create_node("S", f"v{i}", parent=root)
            for i in range(self.WIDTH)
        ]
        return tree, root, leaves

    def test_back_to_front_bulk_delete_never_scans(self):
        tree, _, leaves = self.wide_tree()
        for leaf in reversed(leaves):
            tree.delete(leaf.id)
        assert tree.detach_fallback_scans == 0
        assert len(tree) == 1

    def test_front_to_back_bulk_delete_never_scans(self):
        tree, _, leaves = self.wide_tree()
        for leaf in leaves:
            tree.delete(leaf.id)
        assert tree.detach_fallback_scans == 0
        assert len(tree) == 1

    def test_bulk_move_out_never_scans(self):
        tree, root, leaves = self.wide_tree()
        target = tree.create_node("P", None, parent=root)
        for leaf in leaves:
            tree.move(leaf.id, target.id, len(target.children) + 1)
        assert tree.detach_fallback_scans == 0
        assert [c.value for c in target.children] == [
            f"v{i}" for i in range(self.WIDTH)
        ]

    def test_interleaved_ops_stay_correct_with_fallback(self):
        # Arbitrary interleavings may miss the probe window; correctness
        # (not the counter) is the contract then.
        rng = random.Random(96)
        tree, root, leaves = self.wide_tree()
        alive = list(leaves)
        for _ in range(300):
            victim = alive.pop(rng.randrange(len(alive)))
            tree.delete(victim.id)
        assert len(tree) == 1 + len(alive)
        assert [c.id for c in root.children] == [n.id for n in alive]
