"""Tests for the LCS package: Myers O(ND), DP reference, diff opcodes."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lcs import (
    OpCode,
    diff_opcodes,
    dp_lcs,
    dp_lcs_indices,
    dp_lcs_length,
    lcs_length,
    myers_lcs,
    myers_lcs_indices,
    shortest_edit_distance,
    unified_hunks,
)


def is_common_subsequence(pairs, s1, s2):
    """Pairs must be strictly increasing in both indices and pair equal items."""
    last_i = last_j = -1
    for i, j in pairs:
        if i <= last_i or j <= last_j:
            return False
        if s1[i] != s2[j]:
            return False
        last_i, last_j = i, j
    return True


class TestMyersBasics:
    def test_identical_sequences(self):
        s = list("abcdef")
        assert lcs_length(s, s) == 6
        assert myers_lcs(s, s) == list(zip(s, s))

    def test_disjoint_sequences(self):
        assert myers_lcs("abc", "xyz") == []
        assert shortest_edit_distance("abc", "xyz") == 6

    def test_empty_inputs(self):
        assert myers_lcs("", "abc") == []
        assert myers_lcs("abc", "") == []
        assert myers_lcs("", "") == []

    def test_classic_example(self):
        # Myers' paper example: ABCABBA vs CBABAC has LCS length 4.
        assert lcs_length("ABCABBA", "CBABAC") == 4

    def test_single_element(self):
        assert myers_lcs("a", "a") == [("a", "a")]
        assert myers_lcs("a", "b") == []

    def test_prefix_suffix(self):
        assert lcs_length("abcdef", "abcxyz") == 3
        assert lcs_length("abcdef", "xyzdef") == 3

    def test_interleaved(self):
        pairs = myers_lcs_indices("axbycz", "abc")
        assert is_common_subsequence(pairs, "axbycz", "abc")
        assert len(pairs) == 3

    def test_custom_equality(self):
        equal = lambda a, b: a.lower() == b.lower()
        assert lcs_length("AbC", "abc", equal) == 3

    def test_result_is_valid_subsequence(self):
        s1, s2 = "abcabba", "cbabac"
        pairs = myers_lcs_indices(s1, s2)
        assert is_common_subsequence(pairs, s1, s2)


class TestDpReference:
    def test_matches_known_lengths(self):
        assert dp_lcs_length("ABCABBA", "CBABAC") == 4
        assert dp_lcs_length("", "x") == 0

    def test_dp_pairs_valid(self):
        s1, s2 = "abcabba", "cbabac"
        pairs = dp_lcs_indices(s1, s2)
        assert is_common_subsequence(pairs, s1, s2)
        assert len(pairs) == 4

    def test_dp_lcs_items(self):
        assert dp_lcs("abc", "abc") == [("a", "a"), ("b", "b"), ("c", "c")]

    def test_dp_length_asymmetric_sizes(self):
        # exercises the swap branch of the O(min) space version
        assert dp_lcs_length("ab", "xxxaxxxbxxx") == 2
        assert dp_lcs_length("xxxaxxxbxxx", "ab") == 2

    def test_dp_length_with_custom_equal(self):
        equal = lambda a, b: a % 3 == b % 3
        assert dp_lcs_length([1, 2, 3], [4, 5, 6], equal) == 3


class TestMyersAgainstDp:
    @given(
        st.lists(st.integers(0, 5), max_size=30),
        st.lists(st.integers(0, 5), max_size=30),
    )
    @settings(max_examples=200, deadline=None)
    def test_lengths_agree_with_dp(self, s1, s2):
        assert lcs_length(s1, s2) == dp_lcs_length(s1, s2)

    @given(
        st.lists(st.integers(0, 3), max_size=20),
        st.lists(st.integers(0, 3), max_size=20),
    )
    @settings(max_examples=200, deadline=None)
    def test_myers_pairs_are_valid_subsequences(self, s1, s2):
        pairs = myers_lcs_indices(s1, s2)
        assert is_common_subsequence(pairs, s1, s2)

    def test_random_long_sequences(self):
        rng = random.Random(7)
        for _ in range(25):
            s1 = [rng.randint(0, 9) for _ in range(rng.randint(0, 120))]
            s2 = [rng.randint(0, 9) for _ in range(rng.randint(0, 120))]
            assert lcs_length(s1, s2) == dp_lcs_length(s1, s2)


class TestDiffOpcodes:
    def test_equal_only(self):
        ops = diff_opcodes("abc", "abc")
        assert [op.tag for op in ops] == ["equal"]

    def test_pure_insert(self):
        ops = diff_opcodes("", "abc")
        assert [op.tag for op in ops] == ["insert"]
        assert ops[0].j2 - ops[0].j1 == 3

    def test_pure_delete(self):
        ops = diff_opcodes("abc", "")
        assert [op.tag for op in ops] == ["delete"]

    def test_opcodes_cover_both_sequences(self):
        rng = random.Random(3)
        for _ in range(50):
            s1 = [rng.randint(0, 4) for _ in range(rng.randint(0, 40))]
            s2 = [rng.randint(0, 4) for _ in range(rng.randint(0, 40))]
            ops = diff_opcodes(s1, s2)
            covered1 = sum(op.i2 - op.i1 for op in ops if op.tag != "insert")
            covered2 = sum(op.j2 - op.j1 for op in ops if op.tag != "delete")
            assert covered1 == len(s1)
            assert covered2 == len(s2)

    def test_opcodes_reconstruct_target(self):
        rng = random.Random(4)
        for _ in range(50):
            s1 = [rng.randint(0, 4) for _ in range(rng.randint(0, 30))]
            s2 = [rng.randint(0, 4) for _ in range(rng.randint(0, 30))]
            ops = diff_opcodes(s1, s2)
            rebuilt = []
            for op in ops:
                if op.tag == "equal":
                    rebuilt.extend(s1[op.i1:op.i2])
                elif op.tag == "insert":
                    rebuilt.extend(s2[op.j1:op.j2])
            assert rebuilt == s2

    def test_opcode_is_frozen(self):
        op = OpCode("equal", 0, 1, 0, 1)
        with pytest.raises(AttributeError):
            op.tag = "delete"


class TestUnifiedHunks:
    def test_markers(self):
        lines = unified_hunks(["a", "b", "c"], ["a", "x", "c"])
        assert "-b" in lines and "+x" in lines and " a" in lines

    def test_long_equal_runs_elided(self):
        same = [f"line {i}" for i in range(20)]
        lines = unified_hunks(same + ["old"], same + ["new"], context=2)
        assert any(line.startswith("@@") for line in lines)
