"""Tests for the concurrent diff engine (repro.service.engine)."""

import time

import pytest

from repro import Tree
from repro.core.errors import ParseError
from repro.service import DiffEngine, ScriptCache, ServiceMetrics
from repro.workload import DocumentSpec, MutationEngine, generate_document


def doc(seed=1):
    return generate_document(
        seed, DocumentSpec(sections=3, paragraphs_per_section=3,
                           sentences_per_paragraph=3)
    )


def mutated(base, seed=0, edits=6):
    return MutationEngine(seed).mutate(base, edits).tree


@pytest.fixture
def engine():
    with DiffEngine(workers=2) as eng:
        yield eng


class TestSingleJobs:
    def test_computed_result_verifies(self, engine):
        base = doc()
        new = mutated(base)
        result = engine.diff(base, new)
        assert result.ok
        assert result.source == "computed"
        assert result.operations == len(result.script)
        assert result.operations > 0
        assert result.wall_ms > 0
        assert result.verify(base, new)

    def test_digest_short_circuit_on_identical_pair(self, engine):
        base = doc()
        twin = Tree.from_obj(base.to_obj())
        result = engine.diff(base, twin)
        assert result.ok
        assert result.source == "digest"
        assert result.operations == 0
        assert result.old_digest == result.new_digest
        assert result.verify(base, twin)
        assert engine.metrics.get("digest_short_circuits") == 1

    def test_result_carries_digests_and_summary(self, engine):
        base = doc()
        new = mutated(base)
        result = engine.diff(base, new)
        assert result.old_digest and result.new_digest
        assert result.old_digest != result.new_digest
        assert result.summary["total"] == result.operations


class TestCaching:
    def test_miss_then_hit_and_metrics(self):
        metrics = ServiceMetrics()
        engine = DiffEngine(workers=1, metrics=metrics)
        base = doc()
        new = mutated(base)

        first = engine.diff(base, new)
        second = engine.diff(base, new)
        assert first.source == "computed"
        assert second.source == "cache"
        snap = metrics.snapshot()["counters"]
        assert snap["cache_misses"] == 1
        assert snap["cache_hits"] == 1
        assert snap["jobs_succeeded"] == 2
        engine.close()

    def test_cached_script_rebinds_to_new_identifiers(self, engine):
        base = doc()
        new = mutated(base)
        engine.diff(base, new)
        # same content, disjoint id space: the cached script must still apply
        base2 = Tree.from_obj(base.to_obj())
        new2 = Tree.from_obj(new.to_obj())
        result = engine.diff(base2, new2)
        assert result.source == "cache"
        assert result.verify(base2, new2)

    def test_config_key_separates_algorithms(self):
        cache = ScriptCache(capacity=8)
        base = doc()
        new = mutated(base)
        fast = DiffEngine(workers=1, cache=cache, algorithm="fast")
        simple = DiffEngine(workers=1, cache=cache, algorithm="simple")
        fast.diff(base, new)
        result = simple.diff(base, new)
        assert result.source == "computed"  # no cross-config cache hit
        assert len(cache) == 2
        fast.close()
        simple.close()

    def test_cache_disabled(self):
        engine = DiffEngine(workers=1, cache=None)
        base = doc()
        new = mutated(base)
        assert engine.diff(base, new).source == "computed"
        assert engine.diff(base, new).source == "computed"
        assert engine.metrics.get("cache_hits") == 0
        engine.close()

    def test_eviction_accounting_through_engine(self):
        engine = DiffEngine(workers=1, cache=1)
        base = doc()
        pairs = [(base, mutated(base, seed=s)) for s in (1, 2)]
        engine.diff(*pairs[0])
        engine.diff(*pairs[1])  # evicts the first entry
        assert engine.cache.stats()["evictions"] == 1
        assert engine.diff(*pairs[0]).source == "computed"  # was evicted
        engine.close()


class TestBatches:
    def test_map_pairs_returns_one_result_per_pair_in_order(self, engine):
        base = doc()
        pairs = [(base, mutated(base, seed=s)) for s in range(5)]
        results = engine.map_pairs(pairs)
        assert len(results) == 5
        assert [r.job_id for r in results] == [f"pair-{i}" for i in range(5)]
        assert all(r.ok for r in results)
        for (old, new), r in zip(pairs, results):
            assert r.verify(old, new)

    def test_malformed_document_fails_only_its_job(self, engine):
        base = doc()
        new = mutated(base)

        def unparsable():
            raise ParseError("bad.sexpr: unbalanced parentheses")

        results = engine.map_pairs([
            (base, new, "good-1"),
            (unparsable, new, "broken"),
            (base, Tree.from_obj(base.to_obj()), "good-2"),
        ])
        assert [r.status for r in results] == ["ok", "error", "ok"]
        broken = results[1]
        assert broken.script is None
        assert "ParseError" in broken.error
        assert engine.metrics.get("jobs_failed") == 1
        assert engine.metrics.get("jobs_succeeded") == 2

    def test_empty_batch(self, engine):
        assert engine.map_pairs([]) == []

    def test_explicit_job_ids(self, engine):
        base = doc()
        results = engine.map_pairs([(base, mutated(base), "alpha")])
        assert results[0].job_id == "alpha"

    def test_diff_corpus_consecutive(self, engine):
        chain = [doc()]
        for i in range(3):
            chain.append(mutated(chain[-1], seed=10 + i))
        results = engine.diff_corpus(chain)
        assert len(results) == 3
        assert all(r.ok for r in results)
        assert results[0].job_id == "rev-0->1"

    def test_submit_future(self, engine):
        base = doc()
        new = mutated(base)
        future = engine.submit(base, new, job_id="async")
        result = future.result(timeout=30)
        assert result.job_id == "async"
        assert result.ok


class TestTimeoutsAndRetries:
    def test_slow_job_times_out_without_failing_batch(self):
        engine = DiffEngine(workers=2, timeout=0.05)
        base = doc()
        new = mutated(base)

        def slow():
            time.sleep(0.5)
            return base

        results = engine.map_pairs([(slow, new, "slow"), (base, new, "quick")])
        by_id = {r.job_id: r for r in results}
        assert by_id["slow"].status == "timeout"
        assert by_id["quick"].status == "ok"
        assert engine.metrics.get("jobs_timed_out") == 1
        engine.close()

    def test_transient_compute_failure_is_retried(self):
        engine = DiffEngine(workers=1, retries=2, cache=None)
        base = doc()
        new = mutated(base)
        calls = {"n": 0}
        original = engine._compute

        def flaky(old_tree, new_tree):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise RuntimeError("transient backend hiccup")
            return original(old_tree, new_tree)

        engine._compute = flaky
        result = engine.diff(base, new)
        assert result.ok
        assert result.attempts == 3
        assert engine.metrics.get("jobs_retried") == 2
        assert result.verify(base, new)
        engine.close()

    def test_exhausted_retries_report_error(self):
        engine = DiffEngine(workers=1, retries=1, cache=None)
        base = doc()
        new = mutated(base)

        def always_broken(old_tree, new_tree):
            raise RuntimeError("backend down")

        engine._compute = always_broken
        result = engine.diff(base, new)
        assert result.status == "error"
        assert result.attempts == 2
        assert "backend down" in result.error
        engine.close()


class TestProcessExecutor:
    def test_process_pool_results_verify(self):
        engine = DiffEngine(workers=2, executor="process")
        base = doc()
        pairs = [(base, mutated(base, seed=s)) for s in range(3)]
        try:
            results = engine.map_pairs(pairs)
            assert all(r.ok for r in results)
            for (old, new), r in zip(pairs, results):
                assert r.source == "computed"
                assert r.verify(old, new)
        finally:
            engine.close()

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError):
            DiffEngine(executor="carrier-pigeon")


class TestValidation:
    def test_bad_worker_count(self):
        with pytest.raises(ValueError):
            DiffEngine(workers=0)

    def test_non_tree_input_is_captured_per_job(self, engine):
        result = engine.diff("not a tree", doc())
        assert result.status == "error"
        assert "TypeError" in result.error
